//! Hunting the §5.2.4 hard-fault case with causality analysis.
//!
//! `AppNonResponsive` traces hide a subtle composition: `graphics.sys`
//! appears together with `fs.sys` and `se.sys`, although a graphics
//! driver "should not" touch files — the tell-tale of a hard fault whose
//! page read goes through the encrypted storage stack. This example runs
//! the causality analysis over an AppNonResponsive workload and scans the
//! ranked patterns for that suspicious composition, exactly as the
//! paper's analysts did.
//!
//! Run with: `cargo run --release -p tracelens --example hard_fault_hunt`

use tracelens::prelude::*;

fn main() {
    let scenario = ScenarioName::new("AppNonResponsive");
    let ds = DatasetBuilder::new(99)
        .traces(150)
        .mix(ScenarioMix::Only(vec![scenario.as_str().to_owned()]))
        .instances_per_trace(1, 2)
        .start_window_ms(400)
        .build();
    println!(
        "workload: {} AppNonResponsive instances over {} traces\n",
        ds.instances.len(),
        ds.streams.len()
    );

    let report = CausalityAnalysis::default()
        .analyze(&ds, &scenario)
        .expect("both contrast classes populated");
    println!(
        "{} contrast patterns ({} fast / {} slow instances)\n",
        report.patterns.len(),
        report.fast_instances,
        report.slow_instances
    );

    // The analyst's heuristic: a pattern joining a graphics signature
    // with file-system and storage-encryption signatures is "drivers
    // that should not interact" — flag it.
    let module_of = |sym| {
        ds.stacks
            .symbols()
            .resolve(sym)
            .and_then(tracelens::model::Signature::module_of)
    };
    let mut found = false;
    for (rank, p) in report.patterns.iter().enumerate() {
        let modules: std::collections::BTreeSet<&str> = p
            .tuple
            .all_symbols()
            .into_iter()
            .filter_map(module_of)
            .collect();
        let suspicious = modules.contains("graphics.sys")
            && modules.contains("fs.sys")
            && modules.contains("se.sys");
        if suspicious {
            found = true;
            println!(
                "rank #{}: graphics.sys × fs.sys × se.sys — hard-fault suspect",
                rank + 1
            );
            println!("  avg cost {} over {} occurrences", p.avg_cost(), p.n);
            println!(
                "  worst single execution: {} (T_slow = {})",
                p.c_max,
                report.thresholds.slow()
            );
            println!("{}\n", indent(&p.tuple.render(&ds.stacks)));
        }
    }
    if found {
        println!("diagnosis: graphics.sys took a hard fault under the GPU");
        println!("lock; the page read went through fs.sys and se.sys on");
        println!("encrypted storage, freezing the UI (paper: 4.7 s).");
        println!("remedy: drivers should minimize paged memory to avoid");
        println!("disk I/O (and its propagation) on their hot paths.");
    } else {
        println!("no graphics×fs×se pattern in this workload — try more traces");
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
