//! Catching a performance regression between two builds.
//!
//! Contrast data mining needs only two classes with a performance gap —
//! the paper contrasts fast vs. slow instances *within* one corpus, but
//! the same machinery compares corpora *across builds*: the baseline
//! plays the fast class, the candidate the slow class, and the mined
//! contrasts are the regressed behaviors.
//!
//! This example fakes a regression: the "new build" of MenuDisplay
//! additionally routes menu queries through the filesystem chains that
//! only BrowserTabCreate workloads exhibit. `find_regressions` must flag
//! those chains as NEW while leaving the pre-existing network stalls
//! alone.
//!
//! Run with: `cargo run --release -p tracelens --example regression_watch`

use tracelens::causality::{find_regressions, RegressionConfig};
use tracelens::prelude::*;

fn main() {
    let scenario = ScenarioName::new("MenuDisplay");

    // Baseline build: the normal MenuDisplay population.
    let baseline = DatasetBuilder::new(101)
        .traces(120)
        .mix(ScenarioMix::Only(vec!["MenuDisplay".into()]))
        .build();

    // Candidate build: menu work now also hits the File-Table/MDU
    // chains (emulated by relabeling a tab-create workload).
    let mut candidate = DatasetBuilder::new(202)
        .traces(120)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    for i in &mut candidate.instances {
        i.scenario = scenario;
    }
    candidate.scenarios[0].name = scenario;

    let regs = find_regressions(
        &baseline,
        &candidate,
        &scenario,
        &RegressionConfig::default(),
    );
    println!(
        "comparing builds: {} regressed behaviors detected\n",
        regs.len()
    );
    for r in regs.iter().take(4) {
        let growth = if r.is_new() {
            "NEW in candidate".to_owned()
        } else {
            format!("{:.1}x slower", r.factor())
        };
        println!(
            "avg {} over {} occurrences — {growth}",
            r.candidate_avg, r.candidate_n
        );
        for line in r.render().lines() {
            println!("  {line}");
        }
        println!();
    }

    // Baseline MenuDisplay occasionally hits filesystem chains too, so
    // shared shapes only count as regressed when drastically worse; the
    // *new* storage behaviors of the candidate must be flagged as NEW.
    let new_storage = regs
        .iter()
        .filter(|r| {
            r.is_new()
                && r.wait
                    .iter()
                    .chain(&r.unwait)
                    .chain(&r.running)
                    .any(|s| s.contains("fs.sys") || s.contains("se.sys"))
        })
        .count();
    assert!(new_storage > 0, "the injected regression must be flagged");
    println!(
        "{new_storage} of the regressions are NEW storage behaviors — the \
         injected regression, caught without any baseline-specific rules."
    );
}
