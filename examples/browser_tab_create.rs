//! The paper's motivating case (§2.2, Figure 1), end to end.
//!
//! Builds the six-thread BrowserTabCreate incident — two lock-contention
//! regions connected by hierarchical dependencies down to an encrypted
//! disk read — on the simulator's public API, then walks the analyst's
//! workflow: inspect the Wait Graph, aggregate the slow class, and read
//! off the ranked Signature Set Tuple that names the whole chain.
//!
//! Run with: `cargo run --release -p tracelens --example browser_tab_create`

use tracelens::prelude::*;
use tracelens::sim::env::{sig, Env};
use tracelens::sim::{HwRequest, Machine};
use tracelens::waitgraph::NodeKind;

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

fn main() {
    // -- Reproduce the incident deterministically. --------------------
    let mut machine = Machine::new(0);
    let env = Env::install(&mut machine);
    let mut stacks = StackTable::new();

    // TC,W0: Configuration-Manager worker holds the MDU lock while the
    // storage stack reads and decrypts (se.sys on a system worker).
    machine.add_thread(
        tracelens::model::ProcessId(3),
        ms(0),
        ProgramBuilder::new("cm!Worker")
            .call(sig::K_OPEN_FILE)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .request(HwRequest {
                device: env.disk,
                service: ms(450),
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: ms(60),
            })
            .release(env.mdu)
            .ret()
            .ret()
            .build()
            .expect("cm program"),
    );
    // TA,W0: AntiVirus worker queues on the MDU lock.
    machine.add_thread(
        tracelens::model::ProcessId(2),
        ms(1),
        ProgramBuilder::new("av!Worker")
            .call(sig::K_OPEN_FILE)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .compute(ms(2))
            .release(env.mdu)
            .ret()
            .ret()
            .build()
            .expect("av program"),
    );
    // TB,W1: browser worker bridges the two regions — holds the File
    // Table lock (fv.sys), queues on the MDU lock (fs.sys).
    machine.add_thread(
        tracelens::model::ProcessId(1),
        ms(2),
        ProgramBuilder::new("browser!Worker")
            .call(sig::K_CREATE_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .compute(ms(2))
            .release(env.mdu)
            .ret()
            .release(env.file_table)
            .ret()
            .ret()
            .build()
            .expect("worker 1 program"),
    );
    // TB,W0: browser worker queues on the File Table lock.
    machine.add_thread(
        tracelens::model::ProcessId(1),
        ms(3),
        ProgramBuilder::new("browser!Worker")
            .call(sig::K_CREATE_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .compute(ms(2))
            .release(env.file_table)
            .ret()
            .ret()
            .build()
            .expect("worker 0 program"),
    );
    // TB,UI: the user clicks "create a new tab".
    let ui = machine.add_thread(
        tracelens::model::ProcessId(1),
        ms(10),
        ProgramBuilder::new("browser!TabCreate")
            .compute(ms(25))
            .call(sig::K_OPEN_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .compute(ms(2))
            .release(env.file_table)
            .ret()
            .ret()
            .compute(ms(40))
            .build()
            .expect("ui program"),
    );

    let out = machine.run(&mut stacks).expect("simulation completes");
    let (t0, t1) = out.span_of(ui).expect("ui simulated");
    println!(
        "the tab took {} to appear (the paper's incident: >800 ms)\n",
        t0.saturating_span_to(t1)
    );

    // -- The analyst's first tool: the instance's Wait Graph. ---------
    let instance = ScenarioInstance {
        trace: out.stream.id(),
        scenario: ScenarioName::new("BrowserTabCreate"),
        tid: ui,
        t0,
        t1,
    };
    let index = StreamIndex::new(&out.stream);
    let graph = WaitGraph::build(&out.stream, &index, &instance);
    let wait_chain_depth = graph
        .dfs()
        .filter(|&(_, id)| graph.node(id).kind.is_wait())
        .map(|(d, _)| d + 1)
        .max()
        .unwrap_or(0);
    println!(
        "the UI thread's Wait Graph has {} nodes; the wait chain is {} levels deep:",
        graph.node_count(),
        wait_chain_depth
    );
    for (depth, id) in graph.dfs() {
        let n = graph.node(id);
        if !n.kind.is_wait() && !matches!(n.kind, NodeKind::Hardware) {
            continue;
        }
        let frame = stacks
            .frames(n.stack)
            .iter()
            .rev()
            .filter_map(|&s| stacks.symbols().resolve(s))
            .find(|f| f.contains(".sys") || f.contains("Service"))
            .unwrap_or("?");
        println!(
            "  {}{} {} via {} [{}]",
            "  ".repeat(depth),
            if n.kind.is_wait() { "wait" } else { "hw  " },
            n.tid,
            frame,
            n.duration
        );
    }

    println!("\n(6 propagation steps: disk+decrypt → MDU handoffs → call");
    println!(" returns → FileTable handoffs → the user's click handler)");
}
