//! Quickstart: generate a synthetic trace data set, measure driver
//! impact, and mine contrast patterns for one scenario.
//!
//! Run with: `cargo run --release -p tracelens --example quickstart`

use tracelens::prelude::*;

fn main() {
    // 1. A data set of 80 simulated machine traces (ETW-shaped streams
    //    with running / wait / unwait / hardware-service events). In a
    //    real deployment this would come from your tracing
    //    infrastructure; the schema is `tracelens::model::TraceStream`.
    let ds = DatasetBuilder::new(42).traces(80).build();
    println!(
        "data set: {} traces, {} scenario instances, {} events\n",
        ds.streams.len(),
        ds.instances.len(),
        ds.total_events()
    );

    // 2. Impact analysis: how much of overall scenario time do device
    //    drivers (*.sys) spend running vs. keeping others waiting?
    let impact = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    println!("impact analysis over all instances:\n{impact}\n");
    println!(
        "→ drivers block {:.1}% of scenario time but compute only {:.1}%, and {:.1}% \
         of scenario time is waiting amplified by cost propagation.\n",
        impact.ia_wait() * 100.0,
        impact.ia_run() * 100.0,
        impact.ia_opt() * 100.0,
    );

    // 3. Causality analysis on a high-impact scenario: contrast the
    //    fast class against the slow class and rank the behavioral
    //    patterns that explain the difference.
    let scenario = ScenarioName::new("BrowserTabCreate");
    match CausalityAnalysis::default().analyze(&ds, &scenario) {
        Ok(report) => {
            println!(
                "causality analysis of {scenario}: {} fast / {} slow instances, \
                 {} contrast patterns\n",
                report.fast_instances,
                report.slow_instances,
                report.patterns.len()
            );
            for (i, p) in report.top(3).iter().enumerate() {
                println!(
                    "#{}  avg cost {}  (total {}, N={}):",
                    i + 1,
                    p.avg_cost(),
                    p.c,
                    p.n
                );
                println!("{}\n", p.tuple.render(&ds.stacks));
            }
        }
        Err(e) => println!("causality analysis unavailable: {e}"),
    }
}
