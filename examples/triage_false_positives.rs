//! Triaging by-design behaviors out of the pattern ranking (§5.2.5).
//!
//! The paper's false-positive discussion: the Disk Protection driver
//! (`dp.sys`) *intentionally* halts disk I/O when the machine is in
//! motion, so its high-impact patterns are by-design, not bugs —
//! "the appearance of such driver patterns suggests that we need to
//! incorporate such knowledge to filter out some known and exceptional
//! cases". This example mines MenuDisplay, shows the raw ranking with
//! the dp.sys false positives, then applies a [`Triage`] knowledge base
//! and shows the actionable remainder.
//!
//! Run with: `cargo run --release -p tracelens --example triage_false_positives`

use tracelens::prelude::*;

fn main() {
    let scenario = ScenarioName::new("MenuDisplay");
    let ds = DatasetBuilder::new(77)
        .traces(160)
        .mix(ScenarioMix::Only(vec![scenario.as_str().to_owned()]))
        .build();
    let report = CausalityAnalysis::default()
        .analyze(&ds, &scenario)
        .expect("classes populated");
    println!(
        "MenuDisplay: {} contrast patterns ({} fast / {} slow)\n",
        report.patterns.len(),
        report.fast_instances,
        report.slow_instances
    );

    println!("--- raw ranking (top 5) ---");
    show(&ds, report.top(5).iter().collect::<Vec<_>>().as_slice());

    // The analyst's knowledge base: dp.sys blocks by design.
    let triage = Triage::new().by_design_module("dp.sys");
    let (actionable, by_design) = triage.split(&report.patterns, &ds.stacks);
    println!(
        "--- after triage: {} actionable, {} by-design ---",
        actionable.len(),
        by_design.len()
    );
    println!("\nactionable (top 5):");
    show(&ds, &actionable[..actionable.len().min(5)]);
    println!("suppressed as by-design:");
    show(&ds, &by_design[..by_design.len().min(3)]);
    println!(
        "the remaining ranking points at real optimization targets \
         (network-queue serialization, encrypted metadata reads) instead \
         of the disk-protection driver doing its job."
    );
}

fn show(ds: &Dataset, patterns: &[&tracelens::causality::ContrastPattern]) {
    for (i, p) in patterns.iter().enumerate() {
        println!("#{} avg {} (N={})", i + 1, p.avg_cost(), p.n);
        for line in p.tuple.render(&ds.stacks).lines() {
            println!("    {line}");
        }
    }
    println!();
}
