//! Bring your own driver stack: model a custom ecosystem and analyze it.
//!
//! Everything in the eight built-in scenarios is ordinary public API.
//! This example models a *database server* whose storage path goes
//! through an I/O-cache driver and a backup driver, generates a small
//! data set of good and bad runs by hand, and runs both analyses over it
//! — showing how tracelens applies beyond the paper's browser workloads.
//!
//! Run with: `cargo run --release -p tracelens --example custom_driver_stack`

use tracelens::model::{Dataset, ProcessId};
use tracelens::prelude::*;
use tracelens::sim::env::sig;
use tracelens::sim::{DeviceSpec, HwRequest, Machine, SimRng};

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// Simulates one trace with a single `DbQuery` scenario instance.
/// `snapshot_storm` injects the problem: the backup driver pins the
/// cache lock behind a large snapshot while queries stack up behind it.
fn simulate_trace(trace_id: u32, rng: &mut SimRng, ds: &mut Dataset, snapshot_storm: bool) {
    let mut machine = Machine::new(trace_id);
    let cache_lock = machine.add_lock();
    let disk = machine.add_device(DeviceSpec::new("disk", "DiskService!Transfer"));

    if snapshot_storm {
        // bk.sys snapshots a region while holding the cache lock; the
        // snapshot reads cold blocks from disk.
        let service = rng.time_in(ms(250), ms(600));
        machine.add_thread(
            ProcessId(9),
            TimeNs::ZERO,
            ProgramBuilder::new("backup!Daemon")
                .call(sig::BK_SNAPSHOT)
                .call(sig::IOC_FLUSH)
                .acquire(cache_lock)
                .request(HwRequest {
                    device: disk,
                    service,
                    post_frames: vec![sig::IOC_FLUSH.to_owned()],
                    post_compute: ms(20),
                })
                .release(cache_lock)
                .ret()
                .ret()
                .build()
                .expect("backup program"),
        );
    }

    // The database query thread: parse, consult the block cache
    // (iocache.sys under the cache lock), read a block, produce rows.
    let query = machine.add_thread(
        ProcessId(1),
        ms(2),
        ProgramBuilder::new("db!ExecuteQuery")
            .compute(rng.time_in(ms(8), ms(20)))
            .call(sig::IOC_LOOKUP)
            .acquire(cache_lock)
            .compute(ms(1))
            .release(cache_lock)
            .ret()
            .call(sig::FS_READ)
            .request(HwRequest::plain(disk, rng.time_in(ms(3), ms(9))))
            .ret()
            .compute(rng.time_in(ms(8), ms(15)))
            .build()
            .expect("query program"),
    );

    let out = machine.run(&mut ds.stacks).expect("simulation completes");
    let (t0, t1) = out.span_of(query).expect("query simulated");
    ds.instances.push(ScenarioInstance {
        trace: out.stream.id(),
        scenario: ScenarioName::new("DbQuery"),
        tid: query,
        t0,
        t1,
    });
    ds.streams.push(out.stream);
}

fn main() {
    // Assemble the data set by hand: 120 traces, ~30% with the storm.
    let mut rng = SimRng::seed_from(7);
    let mut ds = Dataset::new();
    ds.scenarios.push(Scenario::new(
        ScenarioName::new("DbQuery"),
        Thresholds::new(ms(80), ms(200)), // our SLO: 80 ms, degraded at 200 ms
    ));
    for t in 0..120 {
        let storm = rng.chance(0.3);
        simulate_trace(t, &mut rng, &mut ds, storm);
    }
    println!(
        "data set: {} traces / {} DbQuery instances\n",
        ds.streams.len(),
        ds.instances.len()
    );

    // Impact of the storage drivers on query latency.
    let impact = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    println!("driver impact on DbQuery:\n{impact}\n");

    // Causality: what separates slow queries from fast ones?
    let report = CausalityAnalysis::default()
        .analyze(&ds, &ScenarioName::new("DbQuery"))
        .expect("classes populated");
    println!(
        "contrast mining: {} fast / {} slow → {} patterns; top pattern:\n",
        report.fast_instances,
        report.slow_instances,
        report.patterns.len()
    );
    let top = report.patterns.first().expect("at least one pattern");
    println!("{}", top.tuple.render(&ds.stacks));
    println!(
        "\navg cost {} (N = {}) — the backup snapshot holds the cache \
         lock through a cold disk read; queries inherit the whole delay.",
        top.avg_cost(),
        top.n
    );
}
