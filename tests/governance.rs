//! Resource-governed execution: every study runs under an explicit
//! memory budget. These tests pin the governance contract: an unlimited
//! budget is byte-identical to no governance at all, a finite budget
//! accounts for every unit (admitted + queued + degraded + shed), the
//! governor's decisions are deterministic at every job count, and the
//! cost estimator really is an upper bound of what the analyses retain.

use tracelens::prelude::*;

fn render(study: &Study, ds: &Dataset) -> String {
    tracelens::render_markdown(study, ds, &tracelens::ReportOptions::default())
}

fn dataset(seed: u64, traces: usize) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .build()
}

fn names_of(ds: &Dataset) -> Vec<ScenarioName> {
    ds.scenarios.iter().map(|s| s.name).collect()
}

/// An overload scenario: estimates inflated so a finite budget must
/// queue, degrade, or shed — without the corpus being huge.
fn pressured(jobs: usize, budget_mb: u64, action: OverBudgetAction) -> StudyConfig {
    StudyConfig {
        jobs,
        govern: GovernPolicy::with_budget_mb(budget_mb).on_over_budget(action),
        mem_faults: Some(MemFaultPlan::new(3).with_rate(0.5).with_factor(64)),
        ..StudyConfig::default()
    }
}

#[test]
fn unlimited_budget_is_byte_identical_to_ungoverned() {
    let ds = dataset(71, 24);
    let names = names_of(&ds);
    let plain = Study::run(&ds, &StudyConfig::default(), &names);
    // Both spellings of "no budget": the default policy and an explicit
    // zero via the CLI's `--memory-budget-mb 0`.
    for govern in [GovernPolicy::unlimited(), GovernPolicy::with_budget_mb(0)] {
        let cfg = StudyConfig {
            govern,
            ..StudyConfig::default()
        };
        let governed = Study::run_governed(&ds, &cfg, &names).expect("governed run completes");
        assert!(!governed.governance.is_governed());
        assert_eq!(governed.governance.admitted, governed.governance.units);
        assert_eq!(
            render(&plain, &ds),
            render(&governed, &ds),
            "unlimited budget must not change a single byte"
        );
    }
}

#[test]
fn overload_accounts_for_every_unit_and_sheds_as_typed_failures() {
    let ds = dataset(72, 40);
    let names = names_of(&ds);
    let cfg = pressured(1, 1, OverBudgetAction::Shed);
    let study = Study::run_governed(&ds, &cfg, &names).expect("overloaded run still completes");
    let gov = &study.governance;
    assert!(gov.is_governed());
    assert_eq!(gov.units, names.len());
    assert_eq!(
        gov.admitted + gov.queued + gov.degraded + gov.shed,
        gov.units,
        "every unit must be accounted for exactly once"
    );
    assert!(
        gov.shed > 0,
        "64x inflation against a 1 MiB budget must shed something"
    );
    assert_eq!(gov.degraded, 0, "shed policy must never degrade");
    // Shed units are quarantined as typed failures, absent from the
    // results, and visible in coverage.
    let shed_failures = study
        .execution
        .failures
        .iter()
        .filter(|f| matches!(f.reason, FailureReason::OverBudget { .. }))
        .count();
    assert_eq!(shed_failures, gov.shed);
    assert_eq!(study.scenarios.len(), names.len() - gov.shed);
    assert_eq!(study.coverage.shed_units, gov.shed);
    assert_eq!(study.coverage.failed_units, study.execution.quarantined());
    for f in &study.execution.failures {
        assert_eq!(f.attempts, 0, "shed units must never have run");
        assert!(f.reason.to_string().contains("over budget"), "{f}");
    }
}

#[test]
fn degrade_mode_runs_every_unit_on_a_bounded_slice() {
    let ds = dataset(73, 40);
    let names = names_of(&ds);
    let cfg = pressured(1, 1, OverBudgetAction::Degrade);
    let study = Study::run_governed(&ds, &cfg, &names).expect("degraded run completes");
    let gov = &study.governance;
    assert!(gov.shed == 0, "degrade policy must never shed");
    assert!(
        gov.degraded > 0,
        "64x inflation against a 1 MiB budget must degrade something"
    );
    assert_eq!(
        gov.admitted + gov.queued + gov.degraded,
        gov.units,
        "every unit accounted for"
    );
    // Degraded units still produce results — nothing is lost outright.
    assert_eq!(study.scenarios.len(), names.len());
    assert!(study.execution.failures.is_empty());
    assert_eq!(study.coverage.degraded_units, gov.degraded);
    // Each degradation record is within the budget's arithmetic.
    for d in &gov.decisions {
        if let Admission::Degraded(deg) = &d.admission {
            assert!(deg.retain_per_mille >= 1 && deg.retain_per_mille < 1000);
            assert!(deg.estimated_bytes > deg.budget_bytes);
        }
    }
}

#[test]
fn governed_decisions_and_markdown_are_identical_at_every_job_count() {
    let ds = dataset(74, 32);
    let names = names_of(&ds);
    for action in [OverBudgetAction::Shed, OverBudgetAction::Degrade] {
        let base = Study::run_governed(&ds, &pressured(1, 1, action), &names)
            .expect("governed run completes");
        let base_md = render(&base, &ds);
        assert!(
            base.governance.constrained() > 0,
            "pressure must constrain something for the test to mean anything"
        );
        for jobs in [2, 8] {
            let par = Study::run_governed(&ds, &pressured(jobs, 1, action), &names)
                .expect("governed parallel run completes");
            assert_eq!(
                base.governance, par.governance,
                "jobs={jobs}: admission decisions diverged"
            );
            assert_eq!(base_md, render(&par, &ds), "jobs={jobs}: markdown diverged");
        }
    }
}

#[test]
fn governed_markdown_reports_the_budget_and_every_non_admitted_unit() {
    let ds = dataset(75, 32);
    let names = names_of(&ds);
    let study = Study::run_governed(&ds, &pressured(2, 1, OverBudgetAction::Shed), &names)
        .expect("governed run completes");
    let md = render(&study, &ds);
    assert!(md.contains("## Execution"));
    assert!(md.contains("Resource governance:"));
    assert!(md.contains("KiB budget"));
    for d in &study.governance.decisions {
        match d.admission {
            Admission::Admitted => {}
            _ => assert!(
                md.contains(&format!("| {} |", d.unit)),
                "non-admitted unit {} missing from the decision table",
                d.unit
            ),
        }
    }
}

#[test]
fn budget_sweep_never_loses_a_unit() {
    let ds = dataset(76, 24);
    let names = names_of(&ds);
    for budget_mb in [1u64, 2, 4, 16, 64, 1024] {
        let cfg = pressured(2, budget_mb, OverBudgetAction::Shed);
        let study = Study::run_governed(&ds, &cfg, &names).expect("sweep run completes");
        let gov = &study.governance;
        assert_eq!(
            gov.admitted + gov.queued + gov.degraded + gov.shed,
            names.len(),
            "budget {budget_mb} MiB: unit lost"
        );
        assert_eq!(
            study.scenarios.len() + gov.shed,
            names.len(),
            "budget {budget_mb} MiB: results and sheds must partition the units"
        );
        assert!(gov.peak_estimated_bytes > 0);
    }
}

#[test]
fn cost_estimator_is_an_upper_bound_of_retained_heap() {
    let ds = dataset(77, 24);
    let mut index_cache: std::collections::BTreeMap<u32, StreamIndex> =
        std::collections::BTreeMap::new();
    for scenario in &ds.scenarios {
        let est = tracelens::estimated_unit_bytes(&ds, &scenario.name);
        let mut actual = 0usize;
        let mut counted: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for instance in ds.instances.iter().filter(|i| i.scenario == scenario.name) {
            let stream = ds.stream_of(instance).expect("instance has a stream");
            let index = index_cache
                .entry(instance.trace.0)
                .or_insert_with(|| StreamIndex::new(stream));
            if counted.insert(instance.trace.0) {
                actual += index.heap_size();
            }
            actual += WaitGraph::build(stream, index, instance).heap_size();
        }
        assert!(
            est as usize >= actual,
            "{}: estimate {est} under-estimates retained heap {actual}",
            scenario.name
        );
    }
}
