//! Parallel/sequential equivalence: `Study::run` must produce
//! *identical* results at every job count — same impact metrics, same
//! ranked contrast patterns, same sanitize coverage, byte-identical
//! rendered report. The pool is an execution detail, never an output
//! detail.

use tracelens::prelude::*;

fn study_at(ds: &Dataset, names: &[ScenarioName], jobs: usize) -> Study {
    let config = StudyConfig {
        jobs,
        ..StudyConfig::default()
    };
    Study::run(ds, &config, names)
}

fn render(study: &Study, ds: &Dataset) -> String {
    tracelens::render_markdown(study, ds, &tracelens::ReportOptions::default())
}

/// Field-by-field comparison with labelled failures, so a divergence
/// names the scenario and stage rather than dumping two full studies.
fn assert_studies_equal(seq: &Study, par: &Study, label: &str) {
    assert_eq!(seq.impact, par.impact, "{label}: global impact");
    assert_eq!(seq.coverage, par.coverage, "{label}: coverage");
    assert_eq!(
        seq.scenarios.len(),
        par.scenarios.len(),
        "{label}: scenario count"
    );
    for ((name_a, a), (name_b, b)) in seq.scenarios.iter().zip(&par.scenarios) {
        assert_eq!(name_a, name_b, "{label}: scenario order");
        assert_eq!(a.impact, b.impact, "{label}/{name_a}: scenario impact");
        assert_eq!(
            a.slow_impact, b.slow_impact,
            "{label}/{name_a}: slow impact"
        );
        assert_eq!(a.causality, b.causality, "{label}/{name_a}: causality");
    }
}

#[test]
fn clean_dataset_is_identical_at_every_job_count() {
    let ds = DatasetBuilder::new(41)
        .traces(30)
        .mix(ScenarioMix::Selected)
        .build();
    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let seq = study_at(&ds, &names, 1);
    let seq_md = render(&seq, &ds);
    for jobs in [2, 4, 8] {
        let par = study_at(&ds, &names, jobs);
        assert_studies_equal(&seq, &par, &format!("jobs={jobs}"));
        assert_eq!(
            seq_md,
            render(&par, &ds),
            "jobs={jobs}: markdown must be byte-identical"
        );
    }
}

#[test]
fn sanitized_fault_injected_dataset_is_identical_at_every_job_count() {
    let ds = DatasetBuilder::new(42)
        .traces(24)
        .mix(ScenarioMix::Selected)
        .build();
    let (corrupt, log) = FaultInjector::new(7).with_all(0.04).inject(&ds);
    assert!(log.total() > 0, "injection must corrupt something");
    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let seq_cfg = StudyConfig {
        jobs: 1,
        ..StudyConfig::default()
    };
    let (seq, seq_report) = Study::run_sanitized(&corrupt, &seq_cfg, &names);
    let seq_md = render(&seq, &corrupt);
    for jobs in [2, 4] {
        let cfg = StudyConfig {
            jobs,
            ..StudyConfig::default()
        };
        let (par, par_report) = Study::run_sanitized(&corrupt, &cfg, &names);
        assert_eq!(
            seq_report, par_report,
            "jobs={jobs}: sanitize report (coverage) must not depend on jobs"
        );
        assert_studies_equal(&seq, &par, &format!("sanitized jobs={jobs}"));
        assert_eq!(
            seq_md,
            render(&par, &corrupt),
            "jobs={jobs}: sanitized markdown must be byte-identical"
        );
    }
}

#[test]
fn jobs_zero_honors_tracelens_jobs_env() {
    // `jobs: 0` resolves through TRACELENS_JOBS; whatever it resolves
    // to, the study must still match the sequential run.
    let ds = DatasetBuilder::new(43)
        .traces(12)
        .mix(ScenarioMix::Selected)
        .build();
    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let seq = study_at(&ds, &names, 1);
    let auto = study_at(&ds, &names, 0);
    assert_studies_equal(&seq, &auto, "jobs=0 (auto)");
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random workloads, clean and corrupted: sequential and
        /// parallel studies agree exactly.
        #[test]
        fn random_datasets_are_jobs_invariant(
            seed in 0u64..1_000,
            traces in 4usize..16,
            jobs in 2usize..6,
            eps_pct in 0u32..6,
        ) {
            let eps = eps_pct as f64 / 100.0;
            let clean = DatasetBuilder::new(seed)
                .traces(traces)
                .mix(ScenarioMix::Selected)
                .build();
            let (ds, _) = FaultInjector::new(seed ^ 0xA5).with_all(eps).inject(&clean);
            let names: Vec<ScenarioName> =
                ds.scenarios.iter().map(|s| s.name).collect();
            let seq_cfg = StudyConfig { jobs: 1, ..StudyConfig::default() };
            let par_cfg = StudyConfig { jobs, ..StudyConfig::default() };
            let (seq, seq_rep) = Study::run_sanitized(&ds, &seq_cfg, &names);
            let (par, par_rep) = Study::run_sanitized(&ds, &par_cfg, &names);
            prop_assert_eq!(seq_rep, par_rep);
            prop_assert_eq!(&seq.impact, &par.impact);
            prop_assert_eq!(&seq.coverage, &par.coverage);
            prop_assert_eq!(
                render(&seq, &ds),
                render(&par, &ds),
                "markdown diverged at jobs={}", jobs
            );
        }
    }
}
