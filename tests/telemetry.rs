//! Integration test: a full [`Study`] run observed through a
//! [`CollectingSink`] reports the expected pipeline stages and non-zero
//! work counters, the JSON report round-trips through the bundled
//! parser, and the whole layer stays silent when disabled.

use tracelens::obs::json;
use tracelens::prelude::*;

fn observed_study() -> (Study, RunReport) {
    let (telemetry, sink) = CollectingSink::telemetry();
    let ds = DatasetBuilder::new(11)
        .traces(50)
        .mix(ScenarioMix::Selected)
        .instances_per_trace(2, 4)
        .start_window_ms(350)
        .telemetry(telemetry.clone())
        .build();
    let names: Vec<ScenarioName> = ScenarioName::SELECTED
        .iter()
        .map(|&s| ScenarioName::new(s))
        .collect();
    let study = Study::run_traced(&ds, &StudyConfig::default(), &names, &telemetry);
    (study, sink.report())
}

#[test]
fn study_reports_every_pipeline_stage() {
    let (study, report) = observed_study();
    assert!(study.scenarios.values().any(|s| s.causality.is_ok()));

    let names = report.span_names();
    for stage in [
        stage::SIM,
        stage::STUDY,
        stage::IMPACT,
        stage::CLASSES,
        stage::WAITGRAPH,
        stage::AGGREGATE,
        stage::SEGMENTS,
        stage::CONTRAST,
    ] {
        assert!(names.contains(&stage), "missing stage {stage:?}: {names:?}");
        assert!(report.total_ns(stage) > 0, "zero time in stage {stage:?}");
    }
    // The pipeline stages run inside the study span.
    let study_span = report
        .spans
        .iter()
        .find(|s| s.name == stage::STUDY)
        .expect("study span present");
    assert!(study_span.children.iter().any(|c| c.name == stage::CLASSES));
}

#[test]
fn study_counters_reflect_the_work_done() {
    let (study, report) = observed_study();
    let counters = &report.metrics.counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);

    // Simulation emitted the data set the analyses consumed.
    assert_eq!(get("sim.traces"), 50);
    assert!(get("sim.instances") >= 100);
    assert!(get("sim.events") > get("sim.instances"));

    // Every classified instance went through a Wait Graph.
    assert!(get("waitgraph.graphs") > 0);
    assert!(get("waitgraph.nodes") >= get("waitgraph.graphs"));
    assert!(get("impact.instances") > 0);
    assert!(get("impact.nodes_visited") > 0);

    // Class counters cover every classified instance: the splits run
    // (and report) before the empty-class check, so the sum over all
    // eight scenarios is the full instance population.
    assert_eq!(
        get("classes.fast") + get("classes.slow") + get("classes.margin"),
        get("sim.instances"),
        "class counters must partition the instance population"
    );

    // Mining produced patterns and pruned zero-cost leaves somewhere.
    let patterns: u64 = study
        .scenarios
        .values()
        .filter_map(|s| s.causality.as_ref().ok())
        .map(|r| r.patterns.len() as u64)
        .sum();
    assert_eq!(get("contrast.patterns"), patterns);
    assert!(get("contrast.slow_paths") > 0, "AWG paths enumerated");
    assert!(get("segments.slow_metas") > 0);

    // Per-stream build times landed in the histograms.
    let hist = report
        .metrics
        .histograms
        .get("waitgraph.build_ns")
        .expect("build-time histogram recorded");
    assert_eq!(hist.n(), get("waitgraph.graphs"));
}

#[test]
fn report_json_parses_and_matches() {
    let (_, report) = observed_study();
    let text = report.to_json();
    let value = json::parse(&text).expect("report JSON is valid");
    assert_eq!(
        value
            .get("tracelens_telemetry")
            .and_then(json::Value::as_u64),
        Some(1)
    );
    let spans = value
        .get("spans")
        .and_then(json::Value::as_arr)
        .expect("spans array");
    assert!(!spans.is_empty());
    let counters = value.get("counters").expect("counters object");
    assert_eq!(
        counters.get("sim.traces").and_then(json::Value::as_u64),
        report.metrics.counters.get("sim.traces").copied()
    );
}

#[test]
fn class_counter_identity_holds_exactly() {
    // Focused variant of the sum check: one scenario, one analysis.
    let (telemetry, sink) = CollectingSink::telemetry();
    let ds = DatasetBuilder::new(3)
        .traces(40)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .telemetry(telemetry.clone())
        .build();
    let report = CausalityAnalysis::default()
        .with_telemetry(telemetry.clone())
        .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
        .expect("analysis succeeds");
    let metrics = sink.report().metrics;
    let get = |n: &str| metrics.counters.get(n).copied().unwrap_or(0);
    assert_eq!(get("classes.fast"), report.fast_instances as u64);
    assert_eq!(get("classes.slow"), report.slow_instances as u64);
    assert_eq!(get("classes.margin"), report.margin_instances as u64);
    assert_eq!(get("contrast.patterns"), report.patterns.len() as u64);
    assert_eq!(
        get("contrast.zero_cost_pruned"),
        report.stats.zero_cost_pruned as u64
    );
    assert_eq!(
        get("waitgraph.graphs"),
        (report.fast_instances + report.slow_instances) as u64
    );
}

#[test]
fn disabled_telemetry_changes_nothing_and_collects_nothing() {
    let names = vec![ScenarioName::new("BrowserTabCreate")];
    let ds = DatasetBuilder::new(5)
        .traces(30)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    let plain = Study::run(&ds, &StudyConfig::default(), &names);
    let traced = Study::run_traced(&ds, &StudyConfig::default(), &names, &Telemetry::noop());
    let (a, b) = (
        plain.scenarios[&names[0]].causality.as_ref().unwrap(),
        traced.scenarios[&names[0]].causality.as_ref().unwrap(),
    );
    assert_eq!(a.patterns.len(), b.patterns.len());
    assert_eq!(a.fast_instances, b.fast_instances);
    assert_eq!(a.slow_instances, b.slow_instances);
}
