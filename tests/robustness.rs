//! Differential robustness tests: every fault kind, injected at
//! ε = 0.05, must flow through sanitize and the full study without a
//! panic, with coverage and quarantine counts that line up with what
//! was actually injected — and a zero-rate injector must be a perfect
//! no-op.

use tracelens::prelude::*;

const EPS: f64 = 0.05;
const SEED: u64 = 9;

fn dataset() -> Dataset {
    DatasetBuilder::new(77)
        .traces(30)
        .mix(ScenarioMix::Selected)
        .build()
}

fn scenario_names(ds: &Dataset) -> Vec<ScenarioName> {
    ds.scenarios.iter().map(|s| s.name).collect()
}

fn bytes(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialize");
    buf
}

#[test]
fn zero_rate_injection_and_sanitize_are_byte_identical() {
    let ds = dataset();
    let original = bytes(&ds);
    let (injected, log) = FaultInjector::new(SEED).with_all(0.0).inject(&ds);
    assert_eq!(log.total(), 0);
    assert_eq!(
        bytes(&injected),
        original,
        "zero-rate injection is identity"
    );
    let (clean, report) = injected.sanitize();
    assert!(report.is_clean(), "clean input must sanitize cleanly");
    assert_eq!(
        bytes(&clean),
        original,
        "sanitize is a byte-identical no-op"
    );
}

#[test]
fn every_fault_kind_survives_the_full_pipeline() {
    let ds = dataset();
    let names = scenario_names(&ds);
    let config = StudyConfig::default();
    for kind in ALL_FAULT_KINDS {
        let (corrupt, log) = FaultInjector::new(SEED).with(kind, EPS).inject(&ds);
        assert!(
            log.total() > 0,
            "{} at ε={EPS} must inject something",
            kind.label()
        );
        let (study, report) = Study::run_sanitized(&corrupt, &config, &names);
        assert!(
            study.impact.ia_wait().is_finite(),
            "{}: IA_wait finite",
            kind.label()
        );
        assert!(study.coverage.fraction() > 0.0, "{}", kind.label());
        assert!(
            report.quarantined_instances <= report.input_instances,
            "{}",
            kind.label()
        );
        // Sanitize output is always fully valid.
        let (clean, _) = corrupt.sanitize();
        assert!(
            clean.validate().is_ok(),
            "{}: sanitize output validates",
            kind.label()
        );
    }
}

#[test]
fn dangling_instance_refs_quarantine_exactly_the_injected_instances() {
    let ds = dataset();
    let (corrupt, log) = FaultInjector::new(SEED)
        .with(FaultKind::DanglingInstanceRefs, EPS)
        .inject(&ds);
    let injected = log.injected(FaultKind::DanglingInstanceRefs);
    assert!(injected > 0);
    let names = scenario_names(&ds);
    let (study, report) = Study::run_sanitized(&corrupt, &StudyConfig::default(), &names);
    assert_eq!(
        report.quarantined_instances, injected,
        "each dangled reference quarantines exactly one instance"
    );
    assert!(study.coverage.fraction() < 1.0);
    assert_eq!(
        study.coverage.analyzed_instances,
        ds.instances.len() - injected
    );
}

#[test]
fn dangling_stacks_drop_exactly_the_injected_events() {
    let ds = dataset();
    let (corrupt, log) = FaultInjector::new(SEED)
        .with(FaultKind::DanglingStacks, EPS)
        .inject(&ds);
    let injected = log.injected(FaultKind::DanglingStacks);
    assert!(injected > 0);
    let (clean, report) = corrupt.sanitize();
    assert_eq!(
        report.dropped_events, injected,
        "each dangling stack drops exactly one event"
    );
    assert_eq!(clean.total_events(), ds.total_events() - injected);
}

#[test]
fn clock_skew_is_repaired_by_resorting() {
    let ds = dataset();
    let (corrupt, log) = FaultInjector::new(SEED)
        .with(FaultKind::ClockSkew, EPS)
        .inject(&ds);
    assert!(log.injected(FaultKind::ClockSkew) > 0);
    let (clean, report) = corrupt.sanitize();
    assert!(report.resorted_streams > 0, "skew must unsort some stream");
    assert_eq!(
        report.quarantined_traces, 0,
        "skew is repairable, not fatal"
    );
    assert_eq!(clean.total_events(), ds.total_events(), "no events lost");
    assert!(clean.validate().is_ok());
}

#[test]
fn dropped_and_orphaned_unwaits_surface_in_waitgraph_counters() {
    let ds = dataset();
    let orphans_of = |ds: &Dataset| -> (usize, usize) {
        ds.streams.iter().fold((0, 0), |(o, s), stream| {
            let idx = StreamIndex::new(stream);
            (o + idx.orphan_waits(), s + idx.stray_unwaits())
        })
    };
    let (baseline_orphans, _) = orphans_of(&ds);

    let (corrupt, log) = FaultInjector::new(SEED)
        .with(FaultKind::DropUnwaits, EPS)
        .inject(&ds);
    assert!(log.injected(FaultKind::DropUnwaits) > 0);
    let (sanitized, report) = corrupt.sanitize();
    assert_eq!(report.quarantined_traces, 0, "semantic corruption only");
    let (orphans, _) = orphans_of(&sanitized);
    assert!(
        orphans > baseline_orphans,
        "dropping unwaits must orphan waits ({orphans} vs {baseline_orphans})"
    );

    let (corrupt, log) = FaultInjector::new(SEED)
        .with(FaultKind::OrphanWaits, EPS)
        .inject(&ds);
    assert!(log.injected(FaultKind::OrphanWaits) > 0);
    let (sanitized, _) = corrupt.sanitize();
    let (orphans, _) = orphans_of(&sanitized);
    assert!(orphans > baseline_orphans, "ghost waits are never woken");
}

#[test]
fn sanitize_telemetry_counters_match_the_report() {
    let ds = dataset();
    let (corrupt, _) = FaultInjector::new(SEED).with_all(EPS).inject(&ds);
    let (telemetry, sink) = CollectingSink::telemetry();
    let names = scenario_names(&ds);
    let (_, report) =
        Study::run_sanitized_traced(&corrupt, &StudyConfig::default(), &names, &telemetry);
    let counters = sink.report().metrics.counters;
    let get = |n: &str| counters.get(n).copied().unwrap_or(0);
    assert_eq!(get("sanitize.repaired"), report.repaired() as u64);
    assert_eq!(
        get("sanitize.quarantined_traces"),
        report.quarantined_traces as u64
    );
    assert_eq!(
        get("sanitize.quarantined_instances"),
        report.quarantined_instances as u64
    );
    let run = sink.report();
    assert!(
        run.span_names().contains(&stage::SANITIZE),
        "sanitize span recorded"
    );
}
