//! Trace well-formedness: every data set the simulator emits must be a
//! valid input for the analyses — the invariants ETW-shaped consumers
//! rely on.

use std::collections::HashMap;
use tracelens::model::{EventKind, ThreadId, TraceId};
use tracelens::prelude::*;

fn dataset() -> Dataset {
    DatasetBuilder::new(555).traces(40).build()
}

#[test]
fn events_are_time_sorted() {
    let ds = dataset();
    for stream in &ds.streams {
        for w in stream.events().windows(2) {
            assert!(w[0].t <= w[1].t, "out-of-order events in {:?}", stream.id());
        }
    }
}

#[test]
fn unwait_events_are_well_targeted() {
    let ds = dataset();
    for stream in &ds.streams {
        for e in stream.events() {
            match e.kind {
                EventKind::Unwait => {
                    let w = e.wtid.expect("unwait has a target");
                    assert_ne!(w, e.tid, "self-unwait");
                }
                _ => assert!(e.wtid.is_none(), "non-unwait with target"),
            }
        }
    }
}

#[test]
fn every_wait_is_eventually_unwaited() {
    // The simulator never truncates: all lock and hardware waits resolve.
    let ds = dataset();
    for stream in &ds.streams {
        let index = StreamIndex::new(stream);
        for e in stream.events() {
            if e.kind == EventKind::Wait {
                // Zero-duration waits (handoff at the same timestamp) are
                // legal, so check the pairing itself rather than the span.
                assert!(
                    index.pair_unwait(stream, e.tid, e.t).is_some(),
                    "wait at {} in {:?} never unwaited",
                    e.t,
                    stream.id()
                );
            }
        }
    }
}

#[test]
fn per_thread_intervals_do_not_overlap() {
    // The Wait-Graph index relies on this: a thread's costed events are
    // sequential (a suspended or running thread cannot emit in parallel
    // with itself).
    let ds = dataset();
    for stream in &ds.streams {
        let index = StreamIndex::new(stream);
        let mut last_end: HashMap<ThreadId, tracelens::model::TimeNs> = HashMap::new();
        for (i, e) in stream.events().iter().enumerate() {
            if e.kind == EventKind::Unwait {
                continue; // instantaneous signals may interleave freely
            }
            let id = tracelens::model::EventId(i as u32);
            let end = index.effective_end(id);
            if let Some(&prev) = last_end.get(&e.tid) {
                assert!(
                    e.t >= prev,
                    "overlapping intervals on {:?} in {:?}: event at {} before {}",
                    e.tid,
                    stream.id(),
                    e.t,
                    prev
                );
            }
            last_end.insert(e.tid, end);
        }
    }
}

#[test]
fn running_samples_respect_the_sampling_interval() {
    let ds = dataset();
    for stream in &ds.streams {
        for e in stream.events() {
            if e.kind == EventKind::Running {
                assert!(
                    e.cost <= tracelens::model::SAMPLE_INTERVAL,
                    "oversized running sample: {}",
                    e.cost
                );
                assert!(e.cost > TimeNs::ZERO, "empty running sample");
            }
        }
    }
}

#[test]
fn instances_reference_their_streams() {
    let ds = dataset();
    for instance in &ds.instances {
        let stream = ds.stream_of(instance).expect("stream exists");
        assert_eq!(stream.id(), instance.trace);
        assert!(instance.t0 <= instance.t1);
        // The initiating thread left at least one event in the stream
        // (every scenario program computes or waits).
        assert!(
            stream.events_of_thread(instance.tid).next().is_some(),
            "initiating thread {:?} silent in {:?}",
            instance.tid,
            instance.trace
        );
    }
}

#[test]
fn trace_ids_are_dense_and_ordered() {
    let ds = dataset();
    for (i, stream) in ds.streams.iter().enumerate() {
        assert_eq!(stream.id(), TraceId(i as u32));
    }
}

#[test]
fn all_stacks_resolve() {
    let ds = dataset();
    for stream in &ds.streams {
        for e in stream.events() {
            let frames = ds.stacks.frames(e.stack);
            assert!(!frames.is_empty(), "event with empty callstack");
            for &f in frames {
                assert!(
                    ds.stacks.symbols().resolve(f).is_some(),
                    "unresolvable frame symbol"
                );
            }
        }
    }
}
