//! End-to-end pipeline tests: simulate → impact → causality, checking
//! cross-crate invariants the unit tests cannot see.

use tracelens::prelude::*;

fn dataset() -> Dataset {
    DatasetBuilder::new(1234)
        .traces(80)
        .mix(ScenarioMix::Selected)
        .instances_per_trace(2, 4)
        .start_window_ms(300)
        .build()
}

#[test]
fn study_covers_all_selected_scenarios() {
    let ds = dataset();
    let names: Vec<ScenarioName> = ScenarioName::SELECTED
        .iter()
        .map(|&s| ScenarioName::new(s))
        .collect();
    let study = Study::run(&ds, &StudyConfig::default(), &names);

    // Instance partitioning is exact.
    let total: usize = study.scenarios.values().map(|s| s.impact.instances).sum();
    assert_eq!(total, ds.instances.len());

    // The global report equals the sum of per-scenario D_scn.
    let d_scn_sum: TimeNs = study.scenarios.values().map(|s| s.impact.d_scn).sum();
    assert_eq!(d_scn_sum, study.impact.d_scn);

    for (name, s) in &study.scenarios {
        // Slow-class impact is a subset of the scenario's impact.
        assert!(s.slow_impact.d_scn <= s.impact.d_scn, "{name}");
        assert!(s.slow_impact.d_wait <= s.impact.d_wait, "{name}");
        if let Ok(report) = &s.causality {
            // Classification agrees between impact and causality paths.
            assert_eq!(report.slow_instances, s.slow_impact.instances, "{name}");
            // Coverage identities.
            assert!(report.itc() <= report.ttc() + 1e-12, "{name}");
            // TTC can slightly exceed 1: child costs are not clipped to
            // their parents' windows (see EXPERIMENTS.md).
            assert!(report.ttc() <= 1.5, "{name}");
            // Ranking is by average cost, descending.
            for w in report.patterns.windows(2) {
                assert!(w[0].avg_cost() >= w[1].avg_cost(), "{name}");
            }
            // Coverage by rank is monotone in the fraction.
            let (c1, c2, c3) = (
                report.coverage_top_fraction(0.1),
                report.coverage_top_fraction(0.2),
                report.coverage_top_fraction(0.3),
            );
            assert!(c1 <= c2 + 1e-12 && c2 <= c3 + 1e-12, "{name}");
            // Every pattern has consistent counters.
            for p in &report.patterns {
                assert!(p.n > 0, "{name}");
                assert!(p.c_max > TimeNs::ZERO, "{name}");
                assert!(!p.tuple.is_empty(), "{name}");
            }
        }
    }
}

#[test]
fn impact_is_deterministic_across_runs() {
    let ds = dataset();
    let a = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    let b = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    assert_eq!(a, b);
}

#[test]
fn causality_is_deterministic_across_runs() {
    let ds = dataset();
    let name = ScenarioName::new("BrowserTabCreate");
    let a = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
    let b = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
    assert_eq!(a.patterns.len(), b.patterns.len());
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x, y);
    }
}

#[test]
fn broader_filter_never_measures_less() {
    let ds = dataset();
    let drivers = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    let everything = ImpactAnalyzer::new(ComponentFilter::Any).analyze(&ds);
    assert!(everything.d_run >= drivers.d_run);
    assert_eq!(everything.d_scn, drivers.d_scn);
    // Note: top-level wait accounting is not monotone in the filter (a
    // broader filter can count a shallow wait and skip a deeper, longer
    // one), so only D_run and D_scn are compared here.
}

#[test]
fn baselines_run_over_the_same_dataset() {
    let ds = dataset();
    let prof = CallGraphProfile::build(&ds);
    let locks = LockContentionReport::build(&ds);
    assert!(prof.total_cpu().as_nanos() > 0);
    assert!(locks.total_wait().as_nanos() > 0);
    // The profiler's total CPU equals the sum of running-event costs.
    let cpu: TimeNs = ds
        .streams
        .iter()
        .flat_map(|s| s.events())
        .filter(|e| e.kind == tracelens::model::EventKind::Running)
        .map(|e| e.cost)
        .sum();
    assert_eq!(prof.total_cpu(), cpu);
}
