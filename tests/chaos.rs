//! Integration tests for the chaos campaign engine
//! (`tracelens-chaos`): determinism across worker counts, clean
//! campaigns passing every oracle, and the full
//! detect → minimize → replay loop on a planted bug.

use tracelens_chaos::{
    check_all, repro, run_campaign, run_config, sample_campaign, CampaignOptions, FaultPlane,
};
use tracelens_obs::{CollectingSink, Telemetry};

fn options(runs: usize) -> CampaignOptions {
    CampaignOptions {
        seed: 9,
        runs,
        ..CampaignOptions::default()
    }
}

#[test]
fn campaign_is_byte_identical_across_job_counts() {
    let renders: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            let opts = CampaignOptions { jobs, ..options(8) };
            run_campaign(&opts, &Telemetry::noop()).render()
        })
        .collect();
    assert_eq!(renders[0], renders[1], "jobs 1 vs 2");
    assert_eq!(renders[0], renders[2], "jobs 1 vs 8");
}

#[test]
fn clean_campaign_has_zero_violations() {
    let report = run_campaign(&options(8), &Telemetry::noop());
    assert_eq!(report.records.len(), 8);
    assert_eq!(report.violations(), 0, "{}", report.render());
    assert!(report.minimized.is_none());
    // Every run is judged by at least the panic oracle; most runs
    // produce more evidence (coverage, report shape, plane checks).
    assert!(report.records.iter().all(|r| r.checks >= 1));
}

#[test]
fn campaign_reports_telemetry() {
    let (telemetry, sink) = CollectingSink::telemetry();
    run_campaign(&options(4), &telemetry);
    let report = sink.report();
    assert_eq!(report.metrics.counters["chaos.runs"], 4);
    assert!(report.metrics.counters["chaos.oracle_checks"] >= 4);
    assert_eq!(report.metrics.counters["chaos.violations"], 0);
    assert!(report.span_names().contains(&"chaos"));
}

#[test]
fn planted_bug_is_found_minimized_and_replayable() {
    // Find the first sampled config arming both corruption and exec —
    // the pair the planted accounting bug requires — and run the
    // campaign just long enough to include it.
    let configs = sample_campaign(9, 64, 12, &FaultPlane::ALL);
    let first = configs
        .iter()
        .position(|c| c.corruption_active() && c.exec_active())
        .expect("seed 9 samples a corruption+exec config");
    let opts = CampaignOptions {
        runs: first + 1,
        inject_known_bug: true,
        ..options(first + 1)
    };
    let report = run_campaign(&opts, &Telemetry::noop());
    assert!(report.violations() > 0, "planted bug must be detected");
    let minimized = report.minimized.expect("violation must be minimized");
    assert_eq!(minimized.oracle, "coverage_conserved");
    assert!(minimized.steps > 0);
    let planes = minimized.config.active_planes();
    assert!(
        planes.len() <= 2,
        "minimal repro must have at most 2 active planes, got {planes:?}"
    );
    assert!(minimized.config.corruption_active() && minimized.config.exec_active());
    assert!(minimized.config.traces <= 12);

    // The repro round-trips through its TOML encoding and replays to
    // the same violation — and passes once the bug is "fixed".
    let text = repro::render_repro(&minimized);
    let replayed = repro::parse_repro(&text).expect("repro parses");
    assert_eq!(replayed, minimized.config);
    let buggy = run_config(&replayed, true);
    let violations = check_all(0, &buggy);
    assert!(
        violations.iter().any(|v| v.oracle == "coverage_conserved"),
        "replay must reproduce the violation"
    );
    let fixed = run_config(&replayed, false);
    assert!(check_all(0, &fixed).is_empty(), "fixed replay must pass");
}

#[test]
fn single_plane_campaigns_pass() {
    // Each plane also holds up alone — a failure here localizes the
    // offending plane immediately.
    for plane in FaultPlane::ALL {
        let opts = CampaignOptions {
            runs: 3,
            planes: vec![plane],
            ..options(3)
        };
        let report = run_campaign(&opts, &Telemetry::noop());
        assert_eq!(
            report.violations(),
            0,
            "plane {plane} violated:\n{}",
            report.render()
        );
    }
}
