//! End-to-end tests of the `tracelens` binary: the full
//! simulate → persist → analyze workflow through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tracelens(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracelens"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn workload_file() -> PathBuf {
    let dir = std::env::temp_dir().join("tracelens-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("workload.tlt")
}

#[test]
fn full_workflow_through_the_binary() {
    let file = workload_file();
    let path = file.to_str().expect("utf-8 path");

    // simulate → .tlt
    let out = tracelens(&[
        "simulate",
        "-o",
        path,
        "--traces",
        "40",
        "--seed",
        "7",
        "--mix",
        "BrowserTabCreate",
    ]);
    assert!(out.status.success(), "simulate failed: {out:?}");

    // info
    let out = tracelens(&["info", path]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("traces      : 40"), "{text}");
    assert!(text.contains("BrowserTabCreate"));

    // impact
    let out = tracelens(&["impact", path]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IA_wait"), "{text}");

    // blame
    let out = tracelens(&["blame", path]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("component wait by module:"), "{text}");

    // causality
    let out = tracelens(&[
        "causality",
        path,
        "--scenario",
        "BrowserTabCreate",
        "--top",
        "2",
    ]);
    assert!(out.status.success(), "causality failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("contrast patterns"), "{text}");
    assert!(text.contains("wait    :"), "{text}");

    // locate rank 1
    let out = tracelens(&[
        "locate",
        path,
        "--scenario",
        "BrowserTabCreate",
        "--rank",
        "1",
    ]);
    assert!(out.status.success(), "locate failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("concrete incidents"), "{text}");

    // baselines
    let out = tracelens(&["baselines", path, "--top", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("%cpu"), "{text}");
    assert!(text.contains("costly callstacks"), "{text}");
}

#[test]
fn run_subcommand_executes_the_dsl() {
    let script = std::env::temp_dir().join("tracelens-cli-test-fig1.tsim");
    let asset = concat!(env!("CARGO_MANIFEST_DIR"), "/../../assets/figure1.tsim");
    std::fs::copy(asset, &script).expect("copy asset");
    let out = tracelens(&["run", script.to_str().unwrap()]);
    assert!(out.status.success(), "run failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BrowserTabCreate"), "{text}");
}

#[test]
fn validate_reports_violations_and_sanitize_recovers() {
    use tracelens::model::{ScenarioInstance, ThreadId, TimeNs, TraceId};
    use tracelens::prelude::*;

    let dir = std::env::temp_dir().join("tracelens-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A clean data set validates with zero exit.
    let clean_path = dir.join("clean.tlt");
    let ds = DatasetBuilder::new(3)
        .traces(10)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    let f = std::fs::File::create(&clean_path).expect("create");
    ds.write_text(std::io::BufWriter::new(f)).expect("write");
    let out = tracelens(&["validate", clean_path.to_str().unwrap()]);
    assert!(out.status.success(), "clean validate failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no violations"), "{text}");

    // Corrupt it: an instance referencing a stream that does not exist.
    let corrupt_path = dir.join("corrupt.tlt");
    let mut bad = ds.clone();
    bad.instances.push(ScenarioInstance {
        trace: TraceId(bad.streams.len() as u32 + 2),
        scenario: bad.scenarios[0].name,
        tid: ThreadId(1),
        t0: TimeNs(0),
        t1: TimeNs(1),
    });
    let f = std::fs::File::create(&corrupt_path).expect("create");
    bad.write_text(std::io::BufWriter::new(f)).expect("write");
    let path = corrupt_path.to_str().unwrap();

    // validate: nonzero exit, per-kind counts, every violation listed.
    let out = tracelens(&["validate", path]);
    assert!(!out.status.success(), "corrupt validate must fail");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 violations"), "{text}");
    assert!(text.contains("instance_without_stream"), "{text}");

    // --strict: analysis refuses to run.
    let out = tracelens(&["impact", path, "--strict"]);
    assert!(!out.status.success(), "--strict must fail on corrupt input");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sanitize"), "{err}");

    // --sanitize: analysis runs on the quarantined survivor.
    let out = tracelens(&["impact", path, "--sanitize"]);
    assert!(out.status.success(), "--sanitize failed: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1 instances quarantined"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IA_wait"), "{text}");

    // Default mode still warns and proceeds.
    let out = tracelens(&["impact", path]);
    assert!(out.status.success(), "default mode proceeds: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning"), "{err}");

    // The two modes together are rejected.
    let out = tracelens(&["impact", path, "--strict", "--sanitize"]);
    assert!(!out.status.success());
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = tracelens(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");

    let out = tracelens(&["impact", "/nonexistent/file.tlt"]);
    assert!(!out.status.success());

    let out = tracelens(&["causality", "--scenario", "X"]);
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = tracelens(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("causality"));
    assert!(text.contains("regress"));
}
