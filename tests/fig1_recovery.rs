//! The headline result: the Figure-1 propagation chain — two lock
//! contention regions bridged by hierarchical dependencies down to an
//! encrypted read — must be recovered by the causality analysis as a
//! top-ranked Signature Set Tuple naming all three drivers.

use tracelens::model::EventKind;
use tracelens::prelude::*;
use tracelens::sim::env::sig;

fn tab_create_dataset(seed: u64, traces: usize) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build()
}

#[test]
fn figure1_tuple_is_recovered_in_top_patterns() {
    let ds = tab_create_dataset(2014, 100);
    let report = CausalityAnalysis::default()
        .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
        .expect("classes populated");

    let lookup = |s: &str| ds.stacks.symbols().lookup(s).expect("signature interned");
    let fv = lookup(sig::FV_QUERY_FILE_TABLE);
    let fs = lookup(sig::FS_ACQUIRE_MDU);
    let se = lookup(sig::SE_READ_DECRYPT);

    // The §2.3 pattern: fv + fs in the wait AND unwait sets, se among
    // the running signatures.
    let hit = report.top(10).iter().find(|p| {
        p.tuple.wait.contains(&fv)
            && p.tuple.wait.contains(&fs)
            && p.tuple.unwait.contains(&fv)
            && p.tuple.unwait.contains(&fs)
            && p.tuple.running.contains(&se)
    });
    let p = hit.unwrap_or_else(|| {
        panic!(
            "Figure-1 tuple not in top 10; top patterns:\n{}",
            report
                .top(10)
                .iter()
                .map(|p| format!("avg={}\n{}\n", p.avg_cost(), p.tuple.render(&ds.stacks)))
                .collect::<String>()
        )
    });
    // It is a high-impact pattern: executions beyond T_slow exist.
    assert!(p.is_high_impact(report.thresholds.slow()));
    // The raw-hardware leg of the same chain (hw and decrypt leaves are
    // siblings, so Definition-4 paths carry one leaf each) is also a
    // top pattern, with the dummy DiskService signature in its running
    // set.
    let disk = lookup("DiskService!Transfer");
    assert!(
        report.top(10).iter().any(|p| {
            p.tuple.wait.contains(&fv)
                && p.tuple.wait.contains(&fs)
                && p.tuple.running.contains(&disk)
        }),
        "disk-service leg of the chain missing from the top patterns"
    );
}

#[test]
fn chain_depth_reaches_the_device_worker() {
    // At least one slow-instance Wait Graph contains a wait chain of
    // depth ≥ 4 terminating in a hardware node (UI → worker → worker →
    // av/cm → disk).
    let ds = tab_create_dataset(77, 60);
    let mut best_depth = 0usize;
    let mut saw_hw_leaf = false;
    for instance in &ds.instances {
        let stream = ds.stream_of(instance).unwrap();
        let index = StreamIndex::new(stream);
        let graph = WaitGraph::build(stream, &index, instance);
        for (depth, id) in graph.dfs() {
            let node = graph.node(id);
            if node.kind.is_wait() {
                best_depth = best_depth.max(depth + 1);
            }
            if matches!(node.kind, tracelens::waitgraph::NodeKind::Hardware) && depth >= 4 {
                saw_hw_leaf = true;
            }
        }
    }
    assert!(best_depth >= 4, "max wait-chain depth {best_depth}");
    assert!(saw_hw_leaf, "no deep hardware leaf found");
}

#[test]
fn decryption_cost_rides_on_the_device_worker_not_the_app() {
    // The engine models se.sys decryption on the system worker (TS,W0 in
    // the paper). The requesting app thread must carry no se.sys samples.
    let ds = tab_create_dataset(31, 30);
    let se = ds.stacks.symbols().lookup(sig::SE_READ_DECRYPT);
    let Some(se) = se else {
        return; // no encrypted read in this sample — nothing to check
    };
    let instance_tids: std::collections::HashSet<_> =
        ds.instances.iter().map(|i| (i.trace, i.tid)).collect();
    let mut worker_samples = 0usize;
    for stream in &ds.streams {
        for e in stream.events() {
            if e.kind == EventKind::Running && ds.stacks.frames(e.stack).contains(&se) {
                assert!(
                    !instance_tids.contains(&(stream.id(), e.tid)),
                    "decryption sample on an initiating thread"
                );
                worker_samples += 1;
            }
        }
    }
    assert!(worker_samples > 0, "expected decryption samples somewhere");
}
