//! Property tests for corruption tolerance: the `.tlt` reader never
//! panics on mangled bytes, and `Dataset::sanitize` always yields a
//! data set that passes full validation, idempotently — no matter what
//! the fault injector did to the input.

use proptest::prelude::*;
use tracelens::model::textio::ReadError;
use tracelens::prelude::*;

fn small_dataset(seed: u64) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(6)
        .mix(ScenarioMix::Selected)
        .build()
}

fn bytes(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialize");
    buf
}

proptest! {
    /// Reading a byte-mutated valid `.tlt` file must return `Ok` or a
    /// structured error — never panic. A parse error must name a
    /// plausible 1-based line number.
    #[test]
    fn byte_mutated_tlt_never_panics(
        seed in 0u64..4,
        mutations in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..8)
    ) {
        let mut buf = bytes(&small_dataset(seed));
        let len = buf.len();
        prop_assert!(len > 0);
        for &(pos, byte) in &mutations {
            buf[pos % len] = byte;
        }
        let line_count = buf.iter().filter(|&&b| b == b'\n').count() + 1;
        match Dataset::read_text(&buf[..]) {
            Ok(_) => {}
            Err(ReadError::Parse { line, message }) => {
                prop_assert!(line >= 1, "line numbers are 1-based");
                prop_assert!(
                    line <= line_count,
                    "line {line} out of range (file has {line_count} lines)"
                );
                prop_assert!(!message.is_empty());
            }
            Err(ReadError::Io(_)) => {} // e.g. invalid UTF-8 from the mutation
        }
    }

    /// Whatever structural damage the fault injector causes, sanitize
    /// repairs or quarantines it: the output always passes validation,
    /// and sanitizing twice changes nothing.
    #[test]
    fn sanitize_output_always_validates(
        seed in 0u64..4,
        fault_seed in 0u64..1000,
        rate_milli in 0u64..150
    ) {
        let ds = small_dataset(seed);
        let (corrupt, _) = FaultInjector::new(fault_seed)
            .with_all(rate_milli as f64 / 1000.0)
            .inject(&ds);
        let (clean, report) = corrupt.sanitize();
        prop_assert!(clean.validate().is_ok(), "sanitize output must validate");
        prop_assert!(report.quarantined_instances <= report.input_instances);
        prop_assert!(report.quarantined_traces <= report.input_traces);

        let (again, second) = clean.sanitize();
        prop_assert!(second.is_clean(), "sanitize must be idempotent: {second}");
        prop_assert_eq!(bytes(&again), bytes(&clean));
    }

    /// A mutated file that still *parses* feeds the sanitize → analyze
    /// path without panicking: the end of the "hostile bytes in, bounded
    /// answers out" contract.
    #[test]
    fn parsed_mutants_analyze_after_sanitize(
        seed in 0u64..3,
        mutations in proptest::collection::vec((0usize..1_000_000, b'0'..=b'9'), 1..5)
    ) {
        let mut buf = bytes(&small_dataset(seed));
        let len = buf.len();
        for &(pos, byte) in &mutations {
            buf[pos % len] = byte;
        }
        if let Ok(ds) = Dataset::read_text(&buf[..]) {
            let (clean, _) = ds.sanitize();
            prop_assert!(clean.validate().is_ok());
            let report = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&clean);
            prop_assert!(report.ia_wait().is_finite());
        }
    }
}
