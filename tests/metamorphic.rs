//! Metamorphic tests: vary one knob, check the direction of the change.

use tracelens::causality::{split_classes, CausalityAnalysis, CausalityConfig};
use tracelens::prelude::*;

#[test]
fn more_traces_mean_more_measured_time() {
    // The builder forks a child RNG per trace in order, so the first N
    // traces of a larger run are identical to a smaller run.
    let small = DatasetBuilder::new(9).traces(20).build();
    let large = DatasetBuilder::new(9).traces(40).build();
    for (a, b) in small.instances.iter().zip(&large.instances) {
        assert_eq!(a, b, "prefix workloads must coincide");
    }
    let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
    let rs = an.analyze(&small);
    let rl = an.analyze(&large);
    assert!(rl.d_scn > rs.d_scn);
    assert!(rl.instances > rs.instances);
}

#[test]
fn raising_t_slow_shrinks_the_slow_class() {
    let mut ds = DatasetBuilder::new(11)
        .traces(60)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    let name = ScenarioName::new("BrowserTabCreate");
    let before = split_classes(&ds, &name).unwrap().slow.len();

    // Double T_slow in place.
    let th = ds.scenario(&name).unwrap().thresholds;
    let harder = Thresholds::new(th.fast(), th.slow() * 2);
    ds.scenarios[0].thresholds = harder;
    let after_split = split_classes(&ds, &name).unwrap();
    assert!(after_split.slow.len() <= before);
    // Fast class is unaffected by T_slow.
    assert_eq!(after_split.fast.len(), {
        ds.scenarios[0].thresholds = th;
        split_classes(&ds, &name).unwrap().fast.len()
    });
}

#[test]
fn larger_segment_bound_never_loses_meta_patterns() {
    let ds = DatasetBuilder::new(13)
        .traces(50)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    let name = ScenarioName::new("BrowserTabCreate");
    let mut prev = 0usize;
    for k in 1..=6 {
        let report = CausalityAnalysis::new(CausalityConfig {
            segment_bound: k,
            ..CausalityConfig::default()
        })
        .analyze(&ds, &name)
        .unwrap();
        assert!(
            report.stats.slow_metas >= prev,
            "k={k}: {} < {prev}",
            report.stats.slow_metas
        );
        prev = report.stats.slow_metas;
    }
}

#[test]
fn disabling_reduction_only_adds_scope() {
    let ds = DatasetBuilder::new(17)
        .traces(60)
        .mix(ScenarioMix::Only(vec!["BrowserTabSwitch".into()]))
        .build();
    let name = ScenarioName::new("BrowserTabSwitch");
    let with = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
    let without = CausalityAnalysis::new(CausalityConfig {
        reduce: false,
        ..CausalityConfig::default()
    })
    .analyze(&ds, &name)
    .unwrap();
    assert_eq!(
        with.slow_scope_time + with.slow_reduced_time,
        without.slow_scope_time,
        "reduction only moves time between scope and pruned"
    );
    assert!(without.patterns.len() >= with.patterns.len());
}

#[test]
fn narrower_component_filter_reduces_driver_wait() {
    let ds = DatasetBuilder::new(19).traces(40).build();
    let all_drivers = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    let one_driver = ImpactAnalyzer::new(ComponentFilter::names(["mouse.sys"])).analyze(&ds);
    // mouse.sys barely blocks anyone; the full driver set blocks a lot.
    assert!(one_driver.d_wait < all_drivers.d_wait / 10);
}

#[test]
fn entanglement_increases_amplification() {
    // Packing more concurrent instances into the same window cannot make
    // cross-instance propagation *less* likely; measured over many
    // traces the amplification should be clearly higher.
    let sparse = DatasetBuilder::new(23)
        .traces(60)
        .instances_per_trace(1, 1)
        .build();
    let dense = DatasetBuilder::new(23)
        .traces(60)
        .instances_per_trace(5, 6)
        .start_window_ms(60)
        .build();
    let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
    let rs = an.analyze(&sparse);
    let rd = an.analyze(&dense);
    assert!(
        rd.wait_amplification() > rs.wait_amplification(),
        "dense {} vs sparse {}",
        rd.wait_amplification(),
        rs.wait_amplification()
    );
    // A lone instance per trace can still self-overlap? No: amplification
    // needs overlapping counted waits from different graphs.
    assert!((rs.wait_amplification() - 1.0).abs() < 0.05);
}
