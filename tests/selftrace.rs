//! Self-tracing integration: golden format for the Chrome trace
//! export, model-level hygiene of the lowered self-trace data set, and
//! a non-trivial self-observation of a parallel study run.

use std::collections::BTreeMap;
use tracelens::obs::json;
use tracelens::prelude::*;
use tracelens::selftrace::lower;

/// One self-traced study run over a small simulated corpus.
fn traced_session(jobs: usize) -> SelfTraceSession {
    let ds = DatasetBuilder::new(7)
        .traces(12)
        .mix(ScenarioMix::Selected)
        .build();
    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let config = StudyConfig {
        jobs,
        ..StudyConfig::default()
    };
    let (study, recording) = Study::run_self_traced(&ds, &config, &names);
    assert!(!study.scenarios.is_empty(), "study produced no results");
    assert!(!recording.is_empty(), "self-trace recorded no events");
    SelfTraceSession::new(format!("jobs={jobs}"), recording)
}

/// Golden-format contract for the Chrome trace-event export: the
/// output parses as JSON, every event carries the required `ph`, `ts`,
/// `pid` and `tid` fields, and duration events balance (every `B` has
/// a matching `E`) per `(pid, tid)` track.
#[test]
fn chrome_export_satisfies_trace_event_format() {
    let sessions = vec![traced_session(2)];
    let text = chrome_trace_json(&sessions);
    let root = json::parse(&text).expect("export must be valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "export contains no events");

    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    let mut phases: BTreeMap<String, usize> = BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("event missing ph")
            .to_string();
        assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some(), "no pid");
        assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some(), "no tid");
        // Metadata events are timeless; everything else is on the
        // timeline and needs a timestamp.
        if ph != "M" {
            assert!(ev.get("ts").and_then(|v| v.as_u64()).is_some(), "no ts");
        }
        let pid = ev.get("pid").and_then(|v| v.as_u64()).unwrap();
        let tid = ev.get("tid").and_then(|v| v.as_u64()).unwrap();
        match ph.as_str() {
            "B" => *depth.entry((pid, tid)).or_insert(0) += 1,
            "E" => *depth.entry((pid, tid)).or_insert(0) -= 1,
            _ => {}
        }
        *phases.entry(ph).or_insert(0) += 1;
    }
    for (&(pid, tid), &d) in &depth {
        assert_eq!(d, 0, "unbalanced B/E on pid {pid} tid {tid}");
    }
    assert!(phases.contains_key("B"), "no duration events");
    assert!(phases.contains_key("M"), "no thread/process names");
    assert!(phases.contains_key("C"), "no counter tracks");
}

/// The lowered self-trace is a first-class data set: it passes the
/// model's own validation, and the sanitize pass finds nothing to
/// repair or quarantine — the recorder and lowering never produce the
/// corruption classes ingestion defends against.
#[test]
fn lowered_self_trace_is_model_clean() {
    let sessions = vec![traced_session(2)];
    let lowered = lower(&sessions);
    lowered
        .dataset
        .validate()
        .expect("self-trace dataset must validate");
    let (_clean, report) = lowered.dataset.sanitize();
    assert!(report.is_clean(), "sanitize found problems: {report:?}");
    assert_eq!(report.quarantined_traces, 0);
    assert_eq!(report.quarantined_instances, 0);
}

/// The meta-analysis of a parallel run is non-empty: pipeline
/// components show up with real running and wait time, and the wait
/// attribution names a concrete wait point.
#[test]
fn self_observation_of_parallel_run_is_nonempty() {
    let sessions = vec![traced_session(2)];
    let obs = SelfObservation::analyze(&sessions);
    assert!(obs.overall.d_scn > tracelens::model::TimeNs(0));
    assert!(
        obs.overall.ia_run() + obs.overall.ia_wait() > 0.0,
        "pipeline invisible in its own trace"
    );
    assert!(!obs.per_module.is_empty());
    let (name, ns) = obs.dominant_wait_source().expect("no waits recorded");
    assert!(ns > 0, "dominant wait {name} has zero cost");
}
