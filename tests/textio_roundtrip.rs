//! The text format must be a faithful transport: analyses over a
//! round-tripped data set produce identical results.

use std::io::BufReader;
use tracelens::prelude::*;

fn round_trip(ds: &Dataset) -> Dataset {
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialization succeeds");
    Dataset::read_text(BufReader::new(buf.as_slice())).expect("parse succeeds")
}

#[test]
fn impact_is_invariant_under_round_trip() {
    let ds = DatasetBuilder::new(2718)
        .traces(30)
        .mix(ScenarioMix::Selected)
        .build();
    let back = round_trip(&ds);
    let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
    assert_eq!(an.analyze(&ds), an.analyze(&back));
}

#[test]
fn causality_is_invariant_under_round_trip() {
    let ds = DatasetBuilder::new(2718)
        .traces(60)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .build();
    let back = round_trip(&ds);
    let name = ScenarioName::new("BrowserTabCreate");
    let a = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
    let b = CausalityAnalysis::default().analyze(&back, &name).unwrap();
    assert_eq!(a.patterns.len(), b.patterns.len());
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        // Tuples carry symbols relative to their own stack table, so
        // compare through rendered text.
        assert_eq!(x.tuple.render(&ds.stacks), y.tuple.render(&back.stacks));
        assert_eq!(x.c, y.c);
        assert_eq!(x.n, y.n);
        assert_eq!(x.c_max, y.c_max);
    }
    assert!((a.itc() - b.itc()).abs() < 1e-12);
    assert!((a.ttc() - b.ttc()).abs() < 1e-12);
}

#[test]
fn double_round_trip_is_stable() {
    let ds = DatasetBuilder::new(99).traces(10).build();
    let once = round_trip(&ds);
    let twice = round_trip(&once);
    let mut a = Vec::new();
    let mut b = Vec::new();
    once.write_text(&mut a).unwrap();
    twice.write_text(&mut b).unwrap();
    assert_eq!(a, b, "serialization is a fixed point after one trip");
}

#[test]
fn format_is_line_oriented_and_commentable() {
    let ds = DatasetBuilder::new(7).traces(2).build();
    let mut buf = Vec::new();
    ds.write_text(&mut buf).unwrap();
    let mut text = String::from_utf8(buf).unwrap();
    // Inject comments and blank lines anywhere between records.
    text = text
        .lines()
        .flat_map(|l| [l.to_owned(), "# noise".to_owned(), String::new()])
        .collect::<Vec<_>>()
        .join("\n");
    let back = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap();
    assert_eq!(back.total_events(), ds.total_events());
    assert_eq!(back.instances.len(), ds.instances.len());
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random simulated workloads survive the text format exactly:
        /// every event field and all instance metadata round-trip.
        #[test]
        fn random_datasets_round_trip(seed in 0u64..10_000, traces in 1usize..6) {
            let ds = DatasetBuilder::new(seed).traces(traces).build();
            let back = round_trip(&ds);
            prop_assert_eq!(back.streams.len(), ds.streams.len());
            prop_assert_eq!(&back.instances, &ds.instances);
            prop_assert_eq!(back.scenarios.len(), ds.scenarios.len());
            for (a, b) in ds.streams.iter().zip(&back.streams) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.events().iter().zip(b.events()) {
                    prop_assert_eq!(x.kind, y.kind);
                    prop_assert_eq!(x.tid, y.tid);
                    prop_assert_eq!(x.pid, y.pid);
                    prop_assert_eq!(x.t, y.t);
                    prop_assert_eq!(x.cost, y.cost);
                    prop_assert_eq!(x.wtid, y.wtid);
                    prop_assert_eq!(
                        ds.stacks.resolve_frames(x.stack),
                        back.stacks.resolve_frames(y.stack)
                    );
                }
            }
            // And the reloaded data set passes validation.
            prop_assert!(back.validate().is_ok());
        }
    }
}
