//! The trace store must be a faithful, deterministic transport: the
//! binary `.tlb` format and the sharded-parallel text parse both have
//! to reproduce the serial text parse byte-for-byte, and a damaged
//! cache must fall back to text without changing any result.

use std::path::PathBuf;
use tracelens::checkpoint;
use tracelens::model::{fingerprint_bytes, BinReadError};
use tracelens::prelude::*;
use tracelens::store::{cache_path_for, ingest_bytes, ingest_path};

fn text_of(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    ds.write_text(&mut out).expect("serialize");
    out
}

/// A scratch directory unique to this test binary + tag.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracelens-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn sharded_ingest_is_byte_identical_to_serial_at_every_job_count() {
    let ds = DatasetBuilder::new(4242)
        .traces(24)
        .mix(ScenarioMix::Selected)
        .build();
    let text = text_of(&ds);
    let serial = Dataset::read_text_bytes(&text).expect("clean corpus");
    let serial_bytes = text_of(&serial);
    let telemetry = Telemetry::noop();
    for jobs in [1, 2, 8] {
        let pool = Pool::new(jobs);
        let (parsed, source) = ingest_bytes(&text, &pool, &telemetry).expect("clean corpus");
        assert_eq!(
            source,
            if jobs == 1 {
                IngestSource::TextSerial
            } else {
                IngestSource::TextParallel
            },
            "jobs={jobs}"
        );
        assert_eq!(
            text_of(&parsed),
            serial_bytes,
            "jobs={jobs}: sharded parse diverged from serial"
        );
    }
}

#[test]
fn sharded_ingest_reports_the_serial_error_verbatim() {
    let ds = DatasetBuilder::new(7).traces(6).build();
    let mut text = text_of(&ds);
    text.extend_from_slice(b"e\tz\t1\t1\t1\t1\t0\n");
    let serial_err = Dataset::read_text_bytes(&text).unwrap_err().to_string();
    let telemetry = Telemetry::noop();
    for jobs in [2, 8] {
        let err = ingest_bytes(&text, &Pool::new(jobs), &telemetry)
            .unwrap_err()
            .to_string();
        assert_eq!(err, serial_err, "jobs={jobs}: error text diverged");
    }
}

#[test]
fn torn_cache_at_any_offset_falls_back_to_text() {
    let dir = scratch("torn");
    let ds = DatasetBuilder::new(99).traces(4).build();
    let text = text_of(&ds);
    let tlt = dir.join("corpus.tlt");
    std::fs::write(&tlt, &text).expect("write text");
    let image = ds.to_binary(fingerprint_bytes(&text));

    // Every truncation must be rejected by the raw reader...
    for cut in (0..image.len()).step_by(13).chain([image.len() - 1]) {
        Dataset::read_binary(&image[..cut]).expect_err("torn image must not parse");
    }

    // ...and a representative set must fall back cleanly at the cache
    // layer, still yielding the exact data set and repacking the cache.
    let pool = Pool::new(1);
    let telemetry = Telemetry::noop();
    for cut in [0, 16, HEADER_GUESS, image.len() / 2, image.len() - 1] {
        std::fs::write(cache_path_for(&tlt), &image[..cut]).expect("write torn cache");
        let (parsed, report) = ingest_path(&tlt, true, &pool, &telemetry).expect("text fallback");
        assert_eq!(text_of(&parsed), text, "cut at {cut}");
        assert_eq!(
            report.cache_fallback,
            Some(CacheFallback::Corrupt),
            "cut at {cut}"
        );
        assert!(report.cache_written, "cut at {cut}: cache must be repacked");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-header offset: long enough to not look truncated at first
/// glance, short of a complete header.
const HEADER_GUESS: usize = 20;

#[test]
fn cache_fallbacks_surface_in_the_sanitize_report() {
    let report = SanitizeReport {
        cache_fallbacks: 1,
        ..SanitizeReport::default()
    };
    assert!(report.is_clean(), "a cache fallback is not data corruption");
    let shown = report.to_string();
    assert!(
        shown.contains("binary-cache fallback"),
        "fallbacks must be visible in the report: {shown}"
    );
}

#[test]
fn checkpoint_fingerprint_is_ingest_path_independent() {
    let dir = scratch("ckpt");
    let ds = DatasetBuilder::new(314)
        .traces(8)
        .mix(ScenarioMix::Selected)
        .build();
    let text = text_of(&ds);
    let tlt = dir.join("corpus.tlt");
    std::fs::write(&tlt, &text).expect("write text");

    let pool = Pool::new(1);
    let telemetry = Telemetry::noop();
    let (from_text, r1) = ingest_path(&tlt, true, &pool, &telemetry).expect("first read");
    assert_eq!(r1.source, IngestSource::TextSerial);
    assert!(r1.cache_written);
    let (from_cache, r2) = ingest_path(&tlt, true, &pool, &telemetry).expect("cached read");
    assert_eq!(r2.source, IngestSource::BinaryCache);

    let config = StudyConfig::default();
    let names: Vec<ScenarioName> = from_text.scenarios.iter().map(|s| s.name).collect();
    assert_eq!(
        checkpoint::fingerprint(&from_text, &config, &names),
        checkpoint::fingerprint(&from_cache, &config, &names),
        "old checkpoints must stay valid when ingest switches to the cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_cache_is_stale_not_fatal() {
    let dir = scratch("skew");
    let ds = DatasetBuilder::new(11).traces(3).build();
    let text = text_of(&ds);
    let tlt = dir.join("corpus.tlt");
    std::fs::write(&tlt, &text).expect("write text");
    let mut image = ds.to_binary(fingerprint_bytes(&text));
    image[4..8].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(cache_path_for(&tlt), &image).expect("write skewed cache");

    assert_eq!(
        Dataset::read_binary(&image).unwrap_err(),
        BinReadError::UnsupportedVersion(999)
    );
    let (parsed, report) =
        ingest_path(&tlt, true, &Pool::new(1), &Telemetry::noop()).expect("text fallback");
    assert_eq!(text_of(&parsed), text);
    assert!(report.cache_fallback.is_some());
    assert!(report.cache_written, "skewed cache must be rewritten");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flaky_sharded_ingest_matches_serial_at_every_job_count() {
    // Differential test for the per-shard retry plane: a transport that
    // fails transiently on a deterministic schedule must yield the
    // exact serial parse at every job count, with every worker's
    // retries absorbed and accounted, never dropped bytes.
    let ds = DatasetBuilder::new(2026)
        .traces(24)
        .mix(ScenarioMix::Selected)
        .build();
    let text = text_of(&ds);
    let serial = Dataset::read_text_bytes(&text).expect("clean corpus");
    let serial_bytes = text_of(&serial);
    let telemetry = Telemetry::noop();
    let plan = ReadFaultPlan::new(77).with_rate(0.2);
    let mut retries_seen = Vec::new();
    for jobs in [1, 2, 8] {
        let pool = Pool::new(jobs);
        let (parsed, report) = tracelens::store::ingest_reader_sharded(
            || Ok(FlakyReader::new(&text[..], plan)),
            RetryPolicy::default(),
            &pool,
            &telemetry,
        )
        .expect("retries absorb the fault schedule");
        assert_eq!(
            text_of(&parsed),
            serial_bytes,
            "jobs={jobs}: flaky ingest diverged from serial"
        );
        assert!(
            report.io_retries > 0,
            "jobs={jobs}: the fault schedule must actually fire"
        );
        retries_seen.push(report.io_retries);
    }
    // The planning pass reads the whole input through one retrying
    // reader, so its retry count is a shared floor; per-shard re-reads
    // add worker retries deterministically per job count.
    assert_eq!(
        retries_seen[1], retries_seen[2],
        "parallel retry accounting must not depend on worker count"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random simulated workloads survive text → binary → text with
        /// every byte intact, and the reloaded data set is equal at the
        /// Dataset level too.
        #[test]
        fn random_datasets_survive_the_binary_store(seed in 0u64..10_000, traces in 1usize..6) {
            let ds = DatasetBuilder::new(seed).traces(traces).build();
            let text = text_of(&ds);
            let image = ds.to_binary(fingerprint_bytes(&text));
            let (back, fp) = Dataset::read_binary(&image).expect("fresh image");
            prop_assert_eq!(fp, fingerprint_bytes(&text));
            prop_assert_eq!(text_of(&back), text);
            prop_assert_eq!(&back.instances, &ds.instances);
            prop_assert_eq!(back.scenarios.len(), ds.scenarios.len());
            prop_assert_eq!(back.total_events(), ds.total_events());
        }

        /// Fault-injected (still parseable) data sets round-trip the
        /// binary store unchanged: packing never launders corruption.
        #[test]
        fn corrupted_datasets_round_trip_without_laundering(seed in 0u64..10_000) {
            let clean = DatasetBuilder::new(seed).traces(4).build();
            let (corrupt, _) = FaultInjector::new(seed).with_all(0.05).inject(&clean);
            let text = text_of(&corrupt);
            let image = corrupt.to_binary(fingerprint_bytes(&text));
            let (back, _) = Dataset::read_binary(&image).expect("fresh image");
            prop_assert_eq!(text_of(&back), text);
        }
    }
}
