//! Fail-operational execution: a supervised study must complete under
//! injected panics and deadline overruns, account for every quarantined
//! unit, and stay deterministic — byte-identical markdown at every job
//! count and across checkpoint/resume boundaries.

use std::path::PathBuf;
use tracelens::prelude::*;

fn render(study: &Study, ds: &Dataset) -> String {
    tracelens::render_markdown(study, ds, &tracelens::ReportOptions::default())
}

fn dataset(seed: u64, traces: usize) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .build()
}

fn names_of(ds: &Dataset) -> Vec<ScenarioName> {
    ds.scenarios.iter().map(|s| s.name).collect()
}

/// A scratch checkpoint directory, wiped before use so stale state from
/// a previous (possibly crashed) test run cannot leak in.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracelens-supervision-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clean_supervised_run_is_byte_identical_to_unsupervised() {
    let ds = dataset(61, 24);
    let names = names_of(&ds);
    let plain = Study::run(&ds, &StudyConfig::default(), &names);
    let sup = Study::run_supervised(&ds, &StudyConfig::default(), &names)
        .expect("clean supervised run succeeds");
    assert!(sup.execution.is_clean());
    assert_eq!(render(&plain, &ds), render(&sup, &ds));
}

#[test]
fn faulted_study_completes_and_lists_every_quarantined_unit() {
    let ds = dataset(62, 20);
    let names = names_of(&ds);
    let config = StudyConfig {
        jobs: 1,
        exec_faults: Some(ExecFaultPlan::new(19).with_panic_rate(0.35)),
        ..StudyConfig::default()
    };
    let study = Study::run_supervised(&ds, &config, &names).expect("faulted run still completes");
    let exec = &study.execution;
    assert!(exec.quarantined() > 0, "fault plan must hit something");
    let md = render(&study, &ds);
    assert!(md.contains("## Execution"));
    for f in &exec.failures {
        assert!(
            md.contains(&format!("| {} | {} |", f.unit, f.stage)),
            "failure {f} missing from report"
        );
    }
    // Determinism: the same fault plan at other job counts produces the
    // same failures and byte-identical markdown.
    for jobs in [2, 8] {
        let par = Study::run_supervised(
            &ds,
            &StudyConfig {
                jobs,
                ..config.clone()
            },
            &names,
        )
        .expect("faulted parallel run completes");
        assert_eq!(exec.failures, par.execution.failures, "jobs={jobs}");
        assert_eq!(md, render(&par, &ds), "jobs={jobs}: markdown diverged");
    }
}

#[test]
fn slow_units_are_quarantined_by_the_soft_deadline() {
    let ds = dataset(63, 6);
    let names = names_of(&ds);
    let config = StudyConfig {
        jobs: 4,
        supervise: SupervisePolicy::from_knobs(40, 1),
        exec_faults: Some(
            ExecFaultPlan::new(5)
                .with_slow_rate(0.3)
                .with_slow_for(std::time::Duration::from_millis(150)),
        ),
        ..StudyConfig::default()
    };
    let study = Study::run_supervised(&ds, &config, &names).expect("slow run completes");
    let exec = &study.execution;
    assert!(exec.quarantined() > 0, "slow faults must trip the deadline");
    for f in &exec.failures {
        assert!(
            matches!(f.reason, FailureReason::DeadlineExceeded { .. }),
            "expected deadline failure, got {f}"
        );
        assert_eq!(f.attempts, 1, "deadline overruns must not be retried");
    }
    // The rendered reason names the configured budget, never measured
    // wall-clock time — required for byte-identical reruns.
    assert!(render(&study, &ds).contains("exceeded soft deadline (40ms)"));
}

#[test]
fn checkpoint_resume_is_byte_identical_to_an_uninterrupted_run() {
    let ds = dataset(64, 18);
    let names = names_of(&ds);
    let clean = Study::run(&ds, &StudyConfig::default(), &names);
    let clean_md = render(&clean, &ds);
    let dir = scratch_dir("resume");

    // First attempt: faults quarantine part of the study; survivors are
    // checkpointed.
    let faulted_cfg = StudyConfig {
        jobs: 2,
        exec_faults: Some(ExecFaultPlan::new(91).with_panic_rate(0.5)),
        checkpoint: Some(dir.clone()),
        ..StudyConfig::default()
    };
    let faulted = Study::run_supervised(&ds, &faulted_cfg, &names).expect("faulted run completes");
    assert!(faulted.execution.quarantined() > 0);

    // Resume with the faults gone: only the missing units re-run, and
    // the result is byte-identical to a never-interrupted study at any
    // job count.
    for jobs in [1, 4] {
        let resume_cfg = StudyConfig {
            jobs,
            checkpoint: Some(dir.clone()),
            ..StudyConfig::default()
        };
        let resumed =
            Study::run_supervised(&ds, &resume_cfg, &names).expect("resumed run completes");
        assert!(resumed.execution.restored > 0, "resume must reuse units");
        assert!(resumed.execution.is_clean());
        assert_eq!(
            clean_md,
            render(&resumed, &ds),
            "jobs={jobs}: resume diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_units_are_recomputed_not_trusted() {
    let ds = dataset(65, 12);
    let names = names_of(&ds);
    let clean_md = render(&Study::run(&ds, &StudyConfig::default(), &names), &ds);
    let dir = scratch_dir("torn");
    let cfg = StudyConfig {
        checkpoint: Some(dir.clone()),
        ..StudyConfig::default()
    };
    Study::run_supervised(&ds, &cfg, &names).expect("checkpointed run completes");

    // Simulate a torn write: truncate one unit file mid-record.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("unit-"))
        })
        .expect("at least one unit checkpointed");
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();

    let resumed = Study::run_supervised(&ds, &cfg, &names).expect("resume tolerates torn unit");
    assert!(resumed.execution.is_clean());
    assert_eq!(
        clean_md,
        render(&resumed, &ds),
        "torn unit must be recomputed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_from_a_different_dataset_is_discarded() {
    let ds_a = dataset(66, 10);
    let ds_b = dataset(67, 10);
    let dir = scratch_dir("fingerprint");
    let cfg = StudyConfig {
        checkpoint: Some(dir.clone()),
        ..StudyConfig::default()
    };
    Study::run_supervised(&ds_a, &cfg, &names_of(&ds_a)).expect("first run");
    // Same directory, different data set: nothing may be restored.
    let names_b = names_of(&ds_b);
    let clean_md = render(&Study::run(&ds_b, &StudyConfig::default(), &names_b), &ds_b);
    let second = Study::run_supervised(&ds_b, &cfg, &names_b).expect("second run");
    assert_eq!(second.execution.restored, 0, "stale checkpoint reused");
    assert_eq!(clean_md, render(&second, &ds_b));
    let _ = std::fs::remove_dir_all(&dir);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Random panic injection: the supervised study never aborts,
        /// its markdown is byte-identical across job counts, and a
        /// faulted-then-resumed study matches a clean run exactly.
        #[test]
        fn supervision_is_deterministic_under_random_faults(
            seed in 0u64..500,
            traces in 4usize..12,
            jobs in 2usize..8,
            panic_pct in 10u32..60,
        ) {
            let ds = dataset(seed, traces);
            let names = names_of(&ds);
            let plan = ExecFaultPlan::new(seed ^ 0x5EED)
                .with_panic_rate(panic_pct as f64 / 100.0);

            // Byte-identical faulted runs at jobs 1/2/8 and the sampled
            // job count.
            let faulted = |j: usize| {
                let cfg = StudyConfig {
                    jobs: j,
                    exec_faults: Some(plan),
                    ..StudyConfig::default()
                };
                let study = Study::run_supervised(&ds, &cfg, &names)
                    .expect("supervised run never aborts");
                render(&study, &ds)
            };
            let seq_md = faulted(1);
            for j in [2, 8, jobs] {
                prop_assert_eq!(&seq_md, &faulted(j), "faulted markdown diverged at jobs={}", j);
            }

            // Faulted + checkpoint, then fault-free resume: identical to
            // a study that was never interrupted.
            let clean_md = render(&Study::run(&ds, &StudyConfig::default(), &names), &ds);
            let dir = scratch_dir(&format!("prop-{seed}-{traces}-{jobs}-{panic_pct}"));
            let ckpt_cfg = StudyConfig {
                jobs,
                exec_faults: Some(plan),
                checkpoint: Some(dir.clone()),
                ..StudyConfig::default()
            };
            Study::run_supervised(&ds, &ckpt_cfg, &names).expect("faulted checkpointed run");
            let resume_cfg = StudyConfig {
                jobs: 1,
                checkpoint: Some(dir.clone()),
                ..StudyConfig::default()
            };
            let resumed = Study::run_supervised(&ds, &resume_cfg, &names)
                .expect("resumed run");
            let _ = std::fs::remove_dir_all(&dir);
            prop_assert!(resumed.execution.is_clean());
            prop_assert_eq!(&clean_md, &render(&resumed, &ds), "resume diverged from clean run");
        }

        /// Crash consistency: a checkpoint unit file torn at ANY byte
        /// offset — simulating a crash mid-write — must never be
        /// trusted as complete. The resume either restores a unit whose
        /// record survived intact or recomputes it; the rendered study
        /// is byte-identical to a never-interrupted run either way.
        #[test]
        fn torn_unit_files_at_any_offset_resume_to_a_clean_study(
            seed in 500u64..800,
            traces in 4usize..10,
            cut_per_mille in 0u32..1000,
        ) {
            let ds = dataset(seed, traces);
            let names = names_of(&ds);
            let clean_md = render(&Study::run(&ds, &StudyConfig::default(), &names), &ds);
            let dir = scratch_dir(&format!("torn-prop-{seed}-{traces}-{cut_per_mille}"));
            let cfg = StudyConfig {
                checkpoint: Some(dir.clone()),
                ..StudyConfig::default()
            };
            Study::run_supervised(&ds, &cfg, &names).expect("checkpointed run completes");

            // Tear every unit file at the sampled relative offset (the
            // per-unit absolute offset varies with file length, widening
            // the space of torn states a single case exercises).
            let mut torn = 0usize;
            for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
                let path = entry.path();
                let is_unit = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("unit-"));
                if !is_unit {
                    continue;
                }
                let bytes = std::fs::read(&path).unwrap();
                let cut = (bytes.len() as u64 * cut_per_mille as u64 / 1000) as usize;
                std::fs::write(&path, &bytes[..cut]).unwrap();
                torn += 1;
            }
            prop_assert!(torn > 0, "run must have checkpointed at least one unit");

            let resumed = Study::run_supervised(&ds, &cfg, &names)
                .expect("resume tolerates torn units");
            let _ = std::fs::remove_dir_all(&dir);
            prop_assert!(resumed.execution.is_clean());
            prop_assert_eq!(
                &clean_md,
                &render(&resumed, &ds),
                "torn units must be restored-if-whole or recomputed, never half-trusted"
            );
        }

        /// Checkpoint × sanitize: a corrupt corpus (quarantined streams
        /// and all) run exec-faulted with a checkpoint, then resumed
        /// faults-off, renders byte-identically to a fresh, never-
        /// faulted sanitized run — at every job count.
        #[test]
        fn sanitized_checkpoint_resume_matches_a_fresh_clean_run(
            seed in 800u64..1100,
            traces in 4usize..10,
            panic_pct in 10u32..60,
        ) {
            let clean = dataset(seed, traces);
            let (corrupt, _log) = FaultInjector::new(seed ^ 0xC0FFEE)
                .with_all(0.03)
                .inject(&clean);
            let names = names_of(&clean);

            // The reference: a fresh sanitized run that never faulted.
            let fresh_md = match Study::run_sanitized_supervised(
                &corrupt,
                &StudyConfig::default(),
                &names,
            ) {
                Ok((study, _)) => render(&study, &corrupt),
                // Everything quarantined: a legal degraded outcome with
                // nothing left to checkpoint or resume.
                Err(_) => return Ok(()),
            };

            let plan = ExecFaultPlan::new(seed ^ 0x5EED)
                .with_panic_rate(panic_pct as f64 / 100.0);
            for jobs in [1usize, 2, 8] {
                let dir = scratch_dir(
                    &format!("san-ckpt-{seed}-{traces}-{panic_pct}-{jobs}"),
                );
                let faulted_cfg = StudyConfig {
                    jobs,
                    exec_faults: Some(plan),
                    checkpoint: Some(dir.clone()),
                    ..StudyConfig::default()
                };
                Study::run_sanitized_supervised(&corrupt, &faulted_cfg, &names)
                    .expect("faulted sanitized checkpointed run");
                let resume_cfg = StudyConfig {
                    jobs,
                    checkpoint: Some(dir.clone()),
                    ..StudyConfig::default()
                };
                let (resumed, _) =
                    Study::run_sanitized_supervised(&corrupt, &resume_cfg, &names)
                        .expect("sanitized resume");
                let _ = std::fs::remove_dir_all(&dir);
                prop_assert!(resumed.execution.is_clean());
                prop_assert_eq!(
                    &fresh_md,
                    &render(&resumed, &corrupt),
                    "sanitized resume diverged from the fresh clean run at jobs={}",
                    jobs
                );
            }
        }
    }
}
