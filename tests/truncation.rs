//! Robustness: the analyses must tolerate traces cut mid-flight — a
//! common reality of deployment-site tracing sessions. Truncation
//! produces unpaired wait events, partial chains, and clipped instances;
//! nothing may panic and all metrics must stay bounded.

use tracelens::prelude::*;

fn dataset() -> Dataset {
    DatasetBuilder::new(404)
        .traces(40)
        .mix(ScenarioMix::Selected)
        .build()
}

#[test]
fn impact_survives_truncation_at_any_point() {
    let ds = dataset();
    let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
    let full = an.analyze(&ds);
    for cut_ms in [0u64, 1, 50, 200, 600, 5_000] {
        let cut = ds.truncated(TimeNs::from_millis(cut_ms));
        let r = an.analyze(&cut);
        assert!(r.instances <= full.instances, "cut at {cut_ms}ms");
        assert!(r.d_scn <= full.d_scn, "cut at {cut_ms}ms");
        assert!(r.ia_wait().is_finite());
        assert!(r.ia_opt() >= -1e-12);
        // Unpaired waits are clipped to the instance window, so counted
        // waiting can never exceed measured time by more than the
        // cross-instance amplification bound (instances per trace).
        assert!(r.d_wait_dist <= r.d_wait);
    }
}

#[test]
fn causality_survives_truncation() {
    let ds = dataset();
    let name = ScenarioName::new("BrowserTabCreate");
    for cut_ms in [150u64, 400, 1_000] {
        let cut = ds.truncated(TimeNs::from_millis(cut_ms));
        // May legitimately fail with an empty class; must never panic.
        match CausalityAnalysis::default().analyze(&cut, &name) {
            Ok(report) => {
                assert!(report.ttc() <= 1.5); // child costs unclipped, may pass 1
                for p in &report.patterns {
                    assert!(p.n > 0);
                }
            }
            Err(e) => {
                let text = e.to_string();
                assert!(text.contains("contrast class"), "unexpected error: {text}");
            }
        }
    }
}

#[test]
fn truncated_streams_contain_unpaired_waits() {
    // Sanity: the truncation actually produces the degenerate inputs the
    // other tests claim to exercise.
    let ds = dataset();
    let cut = ds.truncated(TimeNs::from_millis(120));
    let mut unpaired = 0usize;
    for stream in &cut.streams {
        let index = StreamIndex::new(stream);
        for e in stream.events() {
            if e.kind == tracelens::model::EventKind::Wait
                && index.pair_unwait(stream, e.tid, e.t).is_none()
            {
                unpaired += 1;
            }
        }
    }
    assert!(unpaired > 0, "expected unpaired waits after the cut");
}

/// A cut timestamp strictly between some wait and its paired unwait,
/// so truncating there severs the pair mid-wait.
fn mid_wait_cut(ds: &Dataset) -> TimeNs {
    for stream in &ds.streams {
        let index = StreamIndex::new(stream);
        for e in stream.events() {
            if e.kind != tracelens::model::EventKind::Wait {
                continue;
            }
            if let Some(u) = index.pair_unwait(stream, e.tid, e.t) {
                let tu = stream.event(u).expect("paired event exists").t;
                if tu.0 > e.t.0 + 1 {
                    return TimeNs((e.t.0 + tu.0) / 2);
                }
            }
        }
    }
    panic!("no paired wait with a gap in the workload");
}

#[test]
fn mid_wait_truncation_orphans_waits_and_analyses_survive() {
    let ds = dataset();
    let cut = ds.truncated(mid_wait_cut(&ds));
    // The severed pair shows up in the tolerance counters.
    let orphans: usize = cut
        .streams
        .iter()
        .map(|s| StreamIndex::new(s).orphan_waits())
        .sum();
    assert!(orphans > 0, "mid-wait cut must orphan at least one wait");
    // The sanitized study still runs end-to-end with finite metrics:
    // truncation is semantic corruption, not structural, so nothing is
    // quarantined and coverage stays full.
    let names: Vec<ScenarioName> = cut.scenarios.iter().map(|s| s.name).collect();
    let (study, report) = Study::run_sanitized(&cut, &StudyConfig::default(), &names);
    assert!(study.impact.ia_wait().is_finite());
    assert_eq!(report.quarantined_traces, 0);
    assert!(study.coverage.is_full());
    // And the sanitizer's output passes full validation.
    let (clean, _) = cut.sanitize();
    assert!(clean.validate().is_ok());
}

#[test]
fn orphan_wait_counters_surface_through_telemetry() {
    let ds = dataset();
    let cut = ds.truncated(mid_wait_cut(&ds));
    let (telemetry, sink) = CollectingSink::telemetry();
    for stream in &cut.streams {
        StreamIndex::new_traced(stream, &telemetry);
    }
    let counters = sink.report().metrics.counters;
    assert!(
        counters.get("waitgraph.orphan_waits").copied().unwrap_or(0) > 0,
        "orphan waits must be counted: {counters:?}"
    );
}

#[test]
fn truncation_at_zero_empties_everything() {
    let ds = dataset();
    let cut = ds.truncated(TimeNs::ZERO);
    assert_eq!(cut.total_events(), 0);
    assert!(cut.instances.is_empty());
    assert_eq!(cut.streams.len(), ds.streams.len(), "streams remain, empty");
}

#[test]
fn truncation_beyond_end_is_identity() {
    let ds = dataset();
    let cut = ds.truncated(TimeNs::from_secs(3600));
    assert_eq!(cut.total_events(), ds.total_events());
    assert_eq!(cut.instances.len(), ds.instances.len());
}
