//! Transient-I/O fault injection: a flaky [`Read`] wrapper.
//!
//! Ingestion at fleet scale reads trace files over storage that
//! sometimes hiccups — NFS timeouts, interrupted syscalls — and the
//! `textio` reader retries such transient errors with bounded
//! exponential backoff ([`tracelens_model::textio::RetryingReader`]).
//! [`FlakyReader`] stages those hiccups deterministically: each `read`
//! call draws from `(seed, call-number)` and fails with a transient
//! [`io::ErrorKind::TimedOut`] when the draw falls under the configured
//! rate. No bytes are lost on a failed call, so a retried read resumes
//! exactly where it left off.
//!
//! ```
//! use std::io::Read;
//! use tracelens_faults::{FlakyReader, ReadFaultPlan};
//!
//! let data = b"hello world".as_slice();
//! let mut flaky = FlakyReader::new(data, ReadFaultPlan::new(7).with_rate(0.5));
//! let mut out = Vec::new();
//! // Plain read_to_end fails on the first injected timeout …
//! let err = flaky.read_to_end(&mut out).unwrap_err();
//! assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
//! ```

use crate::exec::unit_draw;
use std::io::{self, Read};

/// A deterministic schedule of transient read failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadFaultPlan {
    seed: u64,
    rate: f64,
}

impl ReadFaultPlan {
    /// A plan that never fails; add a rate with [`Self::with_rate`].
    pub fn new(seed: u64) -> ReadFaultPlan {
        ReadFaultPlan { seed, rate: 0.0 }
    }

    /// Sets the fraction of `read` calls that fail transiently
    /// (clamped into `[0, 1]`).
    pub fn with_rate(mut self, rate: f64) -> ReadFaultPlan {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether any read can fail.
    pub fn is_armed(&self) -> bool {
        self.rate > 0.0
    }

    /// Whether the `call`-th read fails.
    pub fn fails(&self, call: u64) -> bool {
        self.is_armed() && unit_draw(self.seed, "read", &call.to_string()) < self.rate
    }
}

/// A [`Read`] adapter that injects transient failures per
/// [`ReadFaultPlan`].
#[derive(Debug)]
pub struct FlakyReader<R> {
    inner: R,
    plan: ReadFaultPlan,
    calls: u64,
}

impl<R> FlakyReader<R> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: R, plan: ReadFaultPlan) -> FlakyReader<R> {
        FlakyReader {
            inner,
            plan,
            calls: 0,
        }
    }

    /// Total `read` calls observed (successful and failed).
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl<R: Read> Read for FlakyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let call = self.calls;
        self.calls += 1;
        if self.plan.fails(call) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected transient i/o fault",
            ));
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_reader_is_transparent() {
        let mut r = FlakyReader::new(b"abc".as_slice(), ReadFaultPlan::new(1));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn failures_are_deterministic_in_the_call_number() {
        let plan = ReadFaultPlan::new(42).with_rate(0.3);
        let pattern: Vec<bool> = (0..64).map(|c| plan.fails(c)).collect();
        assert_eq!(pattern, (0..64).map(|c| plan.fails(c)).collect::<Vec<_>>());
        assert!(pattern.iter().any(|&b| b), "rate 0.3 should fail somewhere");
        assert!(!pattern.iter().all(|&b| b), "rate 0.3 should also succeed");
    }

    #[test]
    fn a_failed_call_loses_no_bytes() {
        // Fail every other call; a caller retrying each error must
        // still recover the full input.
        let plan = ReadFaultPlan::new(3).with_rate(0.5);
        let mut r = FlakyReader::new(b"0123456789".as_slice(), plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 3];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            }
        }
        assert_eq!(out, b"0123456789");
    }
}
