//! Shared parsing for CLI-shaped fault-plan specs.
//!
//! Every fault plane that is configurable from the command line
//! (`--exec-faults`, `--mem-faults`) speaks the same little language:
//! comma-separated `key=value` pairs. [`FaultSpec`] is the one parser
//! for that language — it tokenizes the pairs, rejects malformed input
//! (bare keys, empty segments from trailing commas, keys outside the
//! plane's vocabulary), and leaves typed interpretation of the values
//! to the individual plan parsers via [`parse_field`] and
//! [`parse_rate`].
//!
//! ```
//! use tracelens_faults::FaultSpec;
//!
//! let spec = FaultSpec::parse("seed=7, rate=0.5", &["seed", "rate"]).unwrap();
//! let pairs: Vec<_> = spec.entries().collect();
//! assert_eq!(pairs, [("seed", "7"), ("rate", "0.5")]);
//! assert!(FaultSpec::parse("seed=7,", &["seed"]).is_err());
//! ```

use std::fmt;

/// Why a fault-plan spec failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl FaultSpecError {
    fn not_a_pair(part: &str) -> FaultSpecError {
        FaultSpecError(format!("`{}` is not a key=value pair", part.trim()))
    }

    fn unknown_key(key: &str, expected: &[&str]) -> FaultSpecError {
        FaultSpecError(format!(
            "unknown key `{key}` (expected {})",
            expected.join(", ")
        ))
    }

    fn empty_segment() -> FaultSpecError {
        FaultSpecError("empty segment (trailing comma?)".to_string())
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault-plan spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A tokenized `key=value[,key=value…]` fault-plan spec.
///
/// Parsing validates *shape* and *vocabulary*; the values stay strings
/// so each plan parser can interpret them with the types it needs.
/// Keys may repeat — later entries win when plans fold the entries in
/// order, matching the historical behavior of the per-plan parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    entries: Vec<(String, String)>,
}

impl FaultSpec {
    /// Parses `spec` against the plane's vocabulary `keys`.
    ///
    /// The empty (or all-whitespace) spec is valid and has no entries —
    /// it configures a disarmed plan. Empty segments (`"seed=1,"`,
    /// `"a=1,,b=2"`) are rejected rather than silently skipped, so a
    /// typo'd comma never arms half a plan.
    pub fn parse(spec: &str, keys: &[&str]) -> Result<FaultSpec, FaultSpecError> {
        let mut entries = Vec::new();
        if spec.trim().is_empty() {
            return Ok(FaultSpec { entries });
        }
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(FaultSpecError::empty_segment());
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError::not_a_pair(part))?;
            let (key, value) = (key.trim(), value.trim());
            if !keys.contains(&key) {
                return Err(FaultSpecError::unknown_key(key, keys));
            }
            entries.push((key.to_string(), value.to_string()));
        }
        Ok(FaultSpec { entries })
    }

    /// The parsed `(key, value)` pairs, in spec order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Parses `value` as `T`, wrapping failure in a key-specific error.
pub fn parse_field<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, FaultSpecError> {
    value
        .parse()
        .map_err(|_| FaultSpecError(format!("`{value}` is not a valid value for `{key}`")))
}

/// Parses `value` as a probability, rejecting anything outside `[0, 1]`.
pub fn parse_rate(key: &str, value: &str) -> Result<f64, FaultSpecError> {
    let rate: f64 = parse_field(key, value)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(FaultSpecError(format!(
            "`{key}` must be in [0, 1], got {value}"
        )));
    }
    Ok(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEYS: &[&str] = &["seed", "rate", "factor"];

    #[test]
    fn empty_spec_has_no_entries() {
        assert_eq!(FaultSpec::parse("", KEYS).unwrap().entries().count(), 0);
        assert_eq!(FaultSpec::parse("  ", KEYS).unwrap().entries().count(), 0);
    }

    #[test]
    fn whitespace_around_pairs_is_tolerated() {
        let spec = FaultSpec::parse(" seed = 3 , rate=0.5 ", KEYS).unwrap();
        let pairs: Vec<_> = spec.entries().collect();
        assert_eq!(pairs, [("seed", "3"), ("rate", "0.5")]);
    }

    #[test]
    fn trailing_comma_is_rejected() {
        let err = FaultSpec::parse("seed=1,", KEYS).unwrap_err();
        assert!(err.to_string().contains("trailing comma"), "{err}");
        assert!(FaultSpec::parse("seed=1,,rate=0.1", KEYS).is_err());
        assert!(FaultSpec::parse(",", KEYS).is_err());
    }

    #[test]
    fn unknown_key_names_the_vocabulary() {
        let err = FaultSpec::parse("bogus=1", KEYS).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown key `bogus`"), "{msg}");
        assert!(msg.contains("seed, rate, factor"), "{msg}");
    }

    #[test]
    fn bare_key_is_not_a_pair() {
        let err = FaultSpec::parse("seed", KEYS).unwrap_err();
        assert!(err.to_string().contains("not a key=value pair"), "{err}");
    }

    #[test]
    fn out_of_range_rate_is_rejected() {
        assert!(parse_rate("rate", "0.0").is_ok());
        assert!(parse_rate("rate", "1.0").is_ok());
        assert!(parse_rate("rate", "1.01").is_err());
        assert!(parse_rate("rate", "-0.1").is_err());
        assert!(parse_rate("rate", "NaN").is_err());
        let msg = parse_rate("rate", "2.0").unwrap_err().to_string();
        assert!(msg.contains("must be in [0, 1]"), "{msg}");
    }

    #[test]
    fn typed_field_errors_name_the_key() {
        let err = parse_field::<u64>("seed", "x").unwrap_err();
        assert!(err.to_string().contains("`seed`"), "{err}");
    }
}
