//! Execution-layer fault injection: adversarial *analyzer units*.
//!
//! [`FaultInjector`](crate::FaultInjector) corrupts data; this module
//! corrupts *execution*. An [`ExecFaultPlan`] decides, deterministically
//! in `(seed, stage, unit)`, whether a given supervised work unit should
//! panic mid-analysis or stall past its soft deadline — the two failure
//! modes the fail-operational supervisor in `tracelens-pool` exists to
//! contain. The plan is pure data: probing it never mutates state, so
//! the same plan consulted from any thread, at any job count, or across
//! a checkpoint-resume boundary yields the same verdict for the same
//! unit.
//!
//! ```
//! use tracelens_faults::{ExecFault, ExecFaultPlan};
//!
//! let plan = ExecFaultPlan::new(7).with_panic_rate(0.5);
//! let a = plan.fault_for("causality", "scenario:AppLaunch");
//! assert_eq!(a, plan.fault_for("causality", "scenario:AppLaunch"));
//! assert!(matches!(a, None | Some(ExecFault::Panic)));
//! ```

use crate::spec::{parse_field, parse_rate, FaultSpec};
use std::time::Duration;

/// Why an `--exec-faults` spec failed to parse.
///
/// Historical name for the shared [`FaultSpecError`](crate::FaultSpecError):
/// all fault-plan parsers now report through the same type.
pub type ExecFaultParseError = crate::FaultSpecError;

/// What an execution fault does to the unit it fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// The unit panics with a deterministic message naming stage and
    /// unit (so quarantine reports are reproducible byte-for-byte).
    Panic,
    /// The unit sleeps for the given duration before proceeding,
    /// provoking a soft-deadline quarantine when the supervisor's
    /// budget is smaller.
    Slow(Duration),
}

/// A deterministic schedule of execution faults.
///
/// `fault_for(stage, unit)` hashes `(seed, stage, unit)` into a uniform
/// value and compares it against the configured rates: panic faults
/// claim the first `panic_rate` of the unit interval, slow faults the
/// next `slow_rate`. Rates are per *unit*, not per event — a plan with
/// `panic_rate 0.3` poisons roughly 30% of supervised units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecFaultPlan {
    seed: u64,
    panic_rate: f64,
    slow_rate: f64,
    slow_for: Duration,
}

/// Default injected stall, chosen to overshoot the deadlines the tests
/// and CI gates configure by a wide margin.
const DEFAULT_SLOW: Duration = Duration::from_millis(600);

impl ExecFaultPlan {
    /// A plan with no faults armed; add rates with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> ExecFaultPlan {
        ExecFaultPlan {
            seed,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_for: DEFAULT_SLOW,
        }
    }

    /// Fraction of units (in `[0, 1]`) that panic.
    pub fn with_panic_rate(mut self, rate: f64) -> ExecFaultPlan {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of units (in `[0, 1]`) that stall.
    pub fn with_slow_rate(mut self, rate: f64) -> ExecFaultPlan {
        self.slow_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// How long a stalled unit sleeps (default 600ms).
    pub fn with_slow_for(mut self, d: Duration) -> ExecFaultPlan {
        self.slow_for = d;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any fault can ever fire.
    pub fn is_armed(&self) -> bool {
        self.panic_rate > 0.0 || self.slow_rate > 0.0
    }

    /// The fault (if any) scheduled for `unit` at `stage` — pure in all
    /// three of `(self.seed, stage, unit)`.
    pub fn fault_for(&self, stage: &str, unit: &str) -> Option<ExecFault> {
        if !self.is_armed() {
            return None;
        }
        let u = unit_draw(self.seed, stage, unit);
        if u < self.panic_rate {
            Some(ExecFault::Panic)
        } else if u < self.panic_rate + self.slow_rate {
            Some(ExecFault::Slow(self.slow_for))
        } else {
            None
        }
    }

    /// Consults the plan and *arms* the fault: panics with a
    /// deterministic message or sleeps, then returns. Call this at the
    /// top of a supervised unit body; it is a no-op for unscheduled
    /// units.
    ///
    /// # Panics
    ///
    /// By design, when the plan schedules [`ExecFault::Panic`] for this
    /// unit — the supervisor is expected to catch it.
    pub fn arm(&self, stage: &str, unit: &str) {
        match self.fault_for(stage, unit) {
            Some(ExecFault::Panic) => {
                panic!("injected fault: {stage}/{unit}")
            }
            Some(ExecFault::Slow(d)) => std::thread::sleep(d),
            None => {}
        }
    }

    /// Parses a CLI-shaped spec: comma-separated `key=value` pairs from
    /// `seed`, `panic`, `slow` (rates in `[0, 1]`) and `slow-ms`.
    ///
    /// ```
    /// use tracelens_faults::ExecFaultPlan;
    /// let plan = ExecFaultPlan::parse("seed=7,panic=0.3,slow=0.2,slow-ms=800").unwrap();
    /// assert_eq!(plan.seed(), 7);
    /// assert!(plan.is_armed());
    /// ```
    pub fn parse(spec: &str) -> Result<ExecFaultPlan, ExecFaultParseError> {
        let mut plan = ExecFaultPlan::new(0);
        for (key, value) in FaultSpec::parse(spec, &["seed", "panic", "slow", "slow-ms"])?.entries()
        {
            match key {
                "seed" => plan.seed = parse_field(key, value)?,
                "panic" => plan = plan.with_panic_rate(parse_rate(key, value)?),
                "slow" => plan = plan.with_slow_rate(parse_rate(key, value)?),
                "slow-ms" => {
                    plan = plan.with_slow_for(Duration::from_millis(parse_field(key, value)?))
                }
                _ => unreachable!("FaultSpec vocabulary"),
            }
        }
        Ok(plan)
    }
}

/// Uniform draw in `[0, 1)` from `(seed, stage, unit)`: FNV-1a over the
/// strings feeds one round of SplitMix64 finalization — the same
/// mixing family the data-layer injector uses.
pub(crate) fn unit_draw(seed: u64, stage: &str, unit: &str) -> f64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for byte in stage
        .as_bytes()
        .iter()
        .chain(b"\x1f")
        .chain(unit.as_bytes())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_faults() {
        let plan = ExecFaultPlan::new(1);
        assert!(!plan.is_armed());
        for i in 0..100 {
            assert_eq!(plan.fault_for("scenario", &format!("unit:{i}")), None);
        }
        plan.arm("scenario", "unit:0"); // no-op, must not panic
    }

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let a = ExecFaultPlan::new(9)
            .with_panic_rate(0.4)
            .with_slow_rate(0.3);
        let b = ExecFaultPlan::new(10)
            .with_panic_rate(0.4)
            .with_slow_rate(0.3);
        let units: Vec<String> = (0..200).map(|i| format!("scenario:S{i}")).collect();
        let va: Vec<_> = units.iter().map(|u| a.fault_for("study", u)).collect();
        let va2: Vec<_> = units.iter().map(|u| a.fault_for("study", u)).collect();
        let vb: Vec<_> = units.iter().map(|u| b.fault_for("study", u)).collect();
        assert_eq!(va, va2, "same plan, same verdicts");
        assert_ne!(va, vb, "different seeds diverge");
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let plan = ExecFaultPlan::new(3)
            .with_panic_rate(0.25)
            .with_slow_rate(0.25);
        let n = 4000;
        let mut panics = 0usize;
        let mut slows = 0usize;
        for i in 0..n {
            match plan.fault_for("impact", &format!("stream:{i}")) {
                Some(ExecFault::Panic) => panics += 1,
                Some(ExecFault::Slow(_)) => slows += 1,
                None => {}
            }
        }
        let p = panics as f64 / n as f64;
        let s = slows as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.05, "panic rate {p}");
        assert!((s - 0.25).abs() < 0.05, "slow rate {s}");
    }

    #[test]
    fn stage_scopes_the_draw() {
        let plan = ExecFaultPlan::new(11).with_panic_rate(0.5);
        let at = |stage: &str| -> Vec<Option<ExecFault>> {
            (0..64)
                .map(|i| plan.fault_for(stage, &format!("u{i}")))
                .collect()
        };
        assert_ne!(at("impact"), at("causality"));
    }

    #[test]
    fn arm_panics_with_a_deterministic_message() {
        let plan = ExecFaultPlan::new(0).with_panic_rate(1.0);
        let err = std::panic::catch_unwind(|| plan.arm("study", "scenario:X")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "injected fault: study/scenario:X");
    }

    #[test]
    fn parse_round_trips_the_cli_spec() {
        let plan = ExecFaultPlan::parse("seed=42,panic=0.3,slow=0.1,slow-ms=250").unwrap();
        assert_eq!(
            plan,
            ExecFaultPlan::new(42)
                .with_panic_rate(0.3)
                .with_slow_rate(0.1)
                .with_slow_for(Duration::from_millis(250))
        );
        assert_eq!(ExecFaultPlan::parse("").unwrap(), ExecFaultPlan::new(0));
        assert!(ExecFaultPlan::parse("panic").is_err());
        assert!(ExecFaultPlan::parse("panic=2.0").is_err());
        assert!(ExecFaultPlan::parse("bogus=1").is_err());
        assert!(ExecFaultPlan::parse("seed=x").is_err());
        let msg = ExecFaultPlan::parse("bogus=1").unwrap_err().to_string();
        assert!(msg.contains("unknown key"), "{msg}");
    }
}
