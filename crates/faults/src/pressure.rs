//! Resource-pressure fault injection: adversarial *cost estimates*.
//!
//! The governance layer in `tracelens-pool` admits analysis units by
//! their estimated live-heap bytes. Real overload — a pathological
//! multi-gigabyte trace — is hard to stage in a test corpus, so a
//! [`MemFaultPlan`] inflates a unit's estimate instead,
//! deterministically in `(seed, stage, unit)` exactly like
//! [`ExecFaultPlan`](crate::ExecFaultPlan) decides panics: the same
//! plan, consulted from any thread at any job count, inflates the same
//! units by the same factor. The unit's *actual* work is untouched —
//! only the admission controller's view of it changes, which is
//! precisely what exercising queue/degrade/shed paths needs.
//!
//! ```
//! use tracelens_faults::MemFaultPlan;
//!
//! let plan = MemFaultPlan::parse("seed=7,rate=0.5,factor=64").unwrap();
//! let a = plan.inflated("scenario", "scenario:AppLaunch", 1_000);
//! assert_eq!(a, plan.inflated("scenario", "scenario:AppLaunch", 1_000));
//! assert!(a == 1_000 || a == 64_000);
//! ```

use crate::exec::unit_draw;
use crate::spec::{parse_field, parse_rate, FaultSpec};
use crate::ExecFaultParseError;
use std::fmt;

/// A deterministic schedule of cost-estimate inflation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemFaultPlan {
    seed: u64,
    rate: f64,
    factor: u64,
}

impl MemFaultPlan {
    /// A plan that inflates nothing; add pressure with the builders.
    pub fn new(seed: u64) -> MemFaultPlan {
        MemFaultPlan {
            seed,
            rate: 0.0,
            factor: 1,
        }
    }

    /// Sets the fraction of units whose estimate is inflated
    /// (clamped into `[0, 1]`).
    pub fn with_rate(mut self, rate: f64) -> MemFaultPlan {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the inflation factor (`0` is treated as `1`).
    pub fn with_factor(mut self, factor: u64) -> MemFaultPlan {
        self.factor = factor.max(1);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any unit can be inflated.
    pub fn is_armed(&self) -> bool {
        self.rate > 0.0 && self.factor > 1
    }

    /// The estimate the admission controller should see for this unit:
    /// `estimate * factor` if the unit's draw falls under the rate,
    /// `estimate` untouched otherwise.
    pub fn inflated(&self, stage: &str, unit: &str, estimate: u64) -> u64 {
        if !self.is_armed() {
            return estimate;
        }
        if unit_draw(self.seed, stage, unit) < self.rate {
            estimate.saturating_mul(self.factor)
        } else {
            estimate
        }
    }

    /// Parses a CLI spec: comma-separated `key=value` pairs with keys
    /// `seed`, `rate` (in `[0, 1]`), and `factor`.
    ///
    /// ```
    /// use tracelens_faults::MemFaultPlan;
    /// let plan = MemFaultPlan::parse("seed=3,rate=0.4,factor=32").unwrap();
    /// assert_eq!(plan.seed(), 3);
    /// assert!(plan.is_armed());
    /// ```
    pub fn parse(spec: &str) -> Result<MemFaultPlan, ExecFaultParseError> {
        let mut plan = MemFaultPlan::new(0);
        for (key, value) in FaultSpec::parse(spec, &["seed", "rate", "factor"])?.entries() {
            match key {
                "seed" => plan.seed = parse_field(key, value)?,
                "rate" => plan = plan.with_rate(parse_rate(key, value)?),
                "factor" => plan = plan.with_factor(parse_field(key, value)?),
                _ => unreachable!("FaultSpec vocabulary"),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for MemFaultPlan {
    /// Renders the plan in its own [`MemFaultPlan::parse`] syntax, so a
    /// plan can be fingerprinted or echoed back to the user verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},rate={},factor={}",
            self.seed, self.rate, self.factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let plan = MemFaultPlan::new(11).with_rate(0.25).with_factor(8);
        assert_eq!(MemFaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn unarmed_plan_is_identity() {
        let plan = MemFaultPlan::new(9);
        assert!(!plan.is_armed());
        for i in 0..50 {
            assert_eq!(plan.inflated("scenario", &format!("u{i}"), 123), 123);
        }
    }

    #[test]
    fn inflation_is_deterministic_and_partial() {
        let plan = MemFaultPlan::new(5).with_rate(0.5).with_factor(16);
        let mut inflated = 0;
        for i in 0..200 {
            let unit = format!("scenario:{i}");
            let a = plan.inflated("scenario", &unit, 1_000);
            assert_eq!(a, plan.inflated("scenario", &unit, 1_000));
            assert!(a == 1_000 || a == 16_000);
            if a > 1_000 {
                inflated += 1;
            }
        }
        // rate 0.5 over 200 units: comfortably away from 0 and 200.
        assert!((40..=160).contains(&inflated), "inflated {inflated}");
    }

    #[test]
    fn inflation_saturates() {
        let plan = MemFaultPlan::new(0).with_rate(1.0).with_factor(u64::MAX);
        assert_eq!(plan.inflated("s", "u", u64::MAX), u64::MAX);
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = MemFaultPlan::parse("seed=11,rate=0.25,factor=8").unwrap();
        assert_eq!(plan, MemFaultPlan::new(11).with_rate(0.25).with_factor(8));
        assert!(MemFaultPlan::parse("rate=2.0").is_err());
        assert!(MemFaultPlan::parse("bogus=1").is_err());
        assert!(MemFaultPlan::parse("seed").is_err());
        assert!(!MemFaultPlan::parse("").unwrap().is_armed());
    }
}
