//! # tracelens-faults — deterministic fault injection for data sets
//!
//! The paper's study ran over ~19,500 traces collected on real user
//! machines, where tracing sessions get cut mid-flight, buffers drop
//! events, and clocks drift. This crate reproduces that reality on
//! demand: a [`FaultInjector`] corrupts a well-formed [`Dataset`] with
//! parameterized, *seeded* faults, so robustness tests and the
//! `exp_robustness` experiment can measure exactly how the analyses
//! degrade — and assert that sanitization recovers what it claims to.
//!
//! Every fault is deterministic in `(seed, fault kind, rate, input)`:
//! the same injector applied to the same data set always produces the
//! same corruption and the same [`FaultLog`].
//!
//! ```
//! use tracelens_faults::{FaultInjector, FaultKind};
//! use tracelens_sim::DatasetBuilder;
//!
//! let clean = DatasetBuilder::new(7).traces(5).build();
//! let (corrupt, log) = FaultInjector::new(99)
//!     .with(FaultKind::DropUnwaits, 0.05)
//!     .with(FaultKind::DanglingInstanceRefs, 0.05)
//!     .inject(&clean);
//! assert!(log.total() > 0);
//! assert!(corrupt.validate().is_err() || log.injected(FaultKind::DanglingInstanceRefs) == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod pressure;
mod readfault;
mod spec;

pub use exec::{ExecFault, ExecFaultParseError, ExecFaultPlan};
pub use pressure::MemFaultPlan;
pub use readfault::{FlakyReader, ReadFaultPlan};
pub use spec::{parse_field, parse_rate, FaultSpec, FaultSpecError};

use std::collections::BTreeMap;
use tracelens_model::{
    Dataset, Event, EventKind, StackId, ThreadId, TimeNs, TraceId, TraceStream, SAMPLE_INTERVAL,
};

/// The kinds of corruption observed in real-world trace collection,
/// each applied independently at a per-item rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Delete unwait events (rate per unwait event): their paired waits
    /// become orphans that Wait-Graph construction must treat as
    /// unpaired leaves.
    DropUnwaits,
    /// Cut a stream at a random interior timestamp (rate per stream),
    /// dropping every later event — a tracing session stopped
    /// mid-flight. Unlike [`Dataset::truncated`], recorded scenario
    /// instances are *not* clipped, so they may now extend past their
    /// stream's data.
    TruncateStreams,
    /// Duplicate events in place (rate per event) — buffer replays.
    DuplicateEvents,
    /// Jitter event timestamps by up to one sample interval in either
    /// direction (rate per event), leaving streams unsorted — clock
    /// skew between CPUs.
    ClockSkew,
    /// Rewrite event stack references to ids beyond the stack table
    /// (rate per event) — symbol resolution gone wrong.
    DanglingStacks,
    /// Insert wait events on fabricated threads that nothing ever
    /// wakes (rate per event position) — lost unwait counterparts from
    /// before the trace window.
    OrphanWaits,
    /// Point scenario instances at trace ids with no stream (rate per
    /// instance) — cross-file index corruption.
    DanglingInstanceRefs,
}

/// All fault kinds, in application order.
pub const ALL_FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::DropUnwaits,
    FaultKind::TruncateStreams,
    FaultKind::DuplicateEvents,
    FaultKind::ClockSkew,
    FaultKind::DanglingStacks,
    FaultKind::OrphanWaits,
    FaultKind::DanglingInstanceRefs,
];

impl FaultKind {
    /// Short snake-case label, used as the [`FaultLog`] key.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DropUnwaits => "drop_unwaits",
            FaultKind::TruncateStreams => "truncate_streams",
            FaultKind::DuplicateEvents => "duplicate_events",
            FaultKind::ClockSkew => "clock_skew",
            FaultKind::DanglingStacks => "dangling_stacks",
            FaultKind::OrphanWaits => "orphan_waits",
            FaultKind::DanglingInstanceRefs => "dangling_instance_refs",
        }
    }

    fn index(self) -> u64 {
        ALL_FAULT_KINDS.iter().position(|&k| k == self).unwrap() as u64
    }
}

/// What an injection pass actually did: per-kind counts of injected
/// faults (events dropped / duplicated / skewed / inserted, streams
/// truncated, instances redirected).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Injected-fault counts keyed by [`FaultKind::label`].
    pub injected: BTreeMap<&'static str, usize>,
}

impl FaultLog {
    /// Count injected for one fault kind (0 if the kind never fired).
    pub fn injected(&self, kind: FaultKind) -> usize {
        self.injected.get(kind.label()).copied().unwrap_or(0)
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> usize {
        self.injected.values().sum()
    }

    fn add(&mut self, kind: FaultKind, n: usize) {
        if n > 0 {
            *self.injected.entry(kind.label()).or_insert(0) += n;
        }
    }
}

/// A seeded, composable corruptor of data sets.
///
/// Faults are applied in [`ALL_FAULT_KINDS`] order regardless of the
/// order of [`FaultInjector::with`] calls, each over the output of the
/// previous one, with an RNG stream derived from
/// `(seed, kind, stream/instance position)` — so adding one fault kind
/// never perturbs the randomness of another.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rates: BTreeMap<FaultKind, f64>,
}

impl FaultInjector {
    /// Creates an injector with no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rates: BTreeMap::new(),
        }
    }

    /// Adds (or overrides) one fault kind at the given per-item rate in
    /// `[0, 1]`. A rate of 0 disables the kind.
    pub fn with(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates.insert(kind, rate.clamp(0.0, 1.0));
        self
    }

    /// Convenience: every fault kind at the same rate ε.
    pub fn with_all(self, rate: f64) -> Self {
        ALL_FAULT_KINDS
            .into_iter()
            .fold(self, |inj, kind| inj.with(kind, rate))
    }

    /// Applies the configured faults to a copy of `clean`, returning
    /// the corrupted data set and the per-kind injection counts.
    pub fn inject(&self, clean: &Dataset) -> (Dataset, FaultLog) {
        let mut ds = clean.clone();
        let mut log = FaultLog::default();
        for kind in ALL_FAULT_KINDS {
            let rate = self.rates.get(&kind).copied().unwrap_or(0.0);
            if rate <= 0.0 {
                continue;
            }
            self.apply(&mut ds, kind, rate, &mut log);
        }
        (ds, log)
    }

    fn apply(&self, ds: &mut Dataset, kind: FaultKind, rate: f64, log: &mut FaultLog) {
        match kind {
            FaultKind::DanglingInstanceRefs => {
                let bogus_base = ds.streams.len() as u32;
                let mut rng = Rng::for_item(self.seed, kind, 0);
                let mut n = 0;
                for (offset, instance) in ds.instances.iter_mut().enumerate() {
                    if rng.chance(rate) {
                        instance.trace = TraceId(bogus_base + 1 + offset as u32);
                        n += 1;
                    }
                }
                log.add(kind, n);
            }
            _ => {
                let streams = std::mem::take(&mut ds.streams);
                let stack_count = ds.stacks.len() as u32;
                ds.streams = streams
                    .into_iter()
                    .map(|stream| {
                        let mut rng = Rng::for_item(self.seed, kind, stream.id().0);
                        let (stream, n) = corrupt_stream(stream, kind, rate, stack_count, &mut rng);
                        log.add(kind, n);
                        stream
                    })
                    .collect();
            }
        }
    }
}

/// Applies one stream-scoped fault kind, returning the corrupted stream
/// and how many faults were injected into it.
fn corrupt_stream(
    stream: TraceStream,
    kind: FaultKind,
    rate: f64,
    stack_count: u32,
    rng: &mut Rng,
) -> (TraceStream, usize) {
    let id = stream.id();
    let events = stream.events().to_vec();
    let mut n = 0;
    let out: Vec<Event> = match kind {
        FaultKind::DropUnwaits => events
            .into_iter()
            .filter(|e| {
                let drop = e.kind == EventKind::Unwait && rng.chance(rate);
                n += drop as usize;
                !drop
            })
            .collect(),
        FaultKind::TruncateStreams => {
            let (start, end) = (stream_start(&events), stream_end(&events));
            if !events.is_empty() && end > start && rng.chance(rate) {
                n = 1;
                let cut = TimeNs(rng.in_range(start.0 + 1, end.0));
                events.into_iter().filter(|e| e.t < cut).collect()
            } else {
                events
            }
        }
        FaultKind::DuplicateEvents => {
            let mut out = Vec::with_capacity(events.len());
            for e in events {
                out.push(e);
                if rng.chance(rate) {
                    out.push(e);
                    n += 1;
                }
            }
            out
        }
        FaultKind::ClockSkew => events
            .into_iter()
            .map(|mut e| {
                if rng.chance(rate) {
                    let skew = rng.in_range(1, SAMPLE_INTERVAL.0);
                    e.t = if rng.chance(0.5) {
                        TimeNs(e.t.0.saturating_sub(skew))
                    } else {
                        TimeNs(e.t.0.saturating_add(skew))
                    };
                    n += 1;
                }
                e
            })
            .collect(),
        FaultKind::DanglingStacks => events
            .into_iter()
            .map(|mut e| {
                if rng.chance(rate) {
                    e.stack = StackId(stack_count + 1 + rng.in_range(0, 1 << 16) as u32);
                    n += 1;
                }
                e
            })
            .collect(),
        FaultKind::OrphanWaits => {
            let ghost_base = events.iter().map(|e| e.tid.0).max().unwrap_or(0) + 1_000;
            let mut out = Vec::with_capacity(events.len());
            for e in events {
                if rng.chance(rate) {
                    out.push(Event {
                        kind: EventKind::Wait,
                        tid: ThreadId(ghost_base + n as u32),
                        pid: e.pid,
                        t: e.t,
                        cost: TimeNs::ZERO,
                        stack: e.stack,
                        wtid: None,
                    });
                    n += 1;
                }
                out.push(e);
            }
            out
        }
        FaultKind::DanglingInstanceRefs => unreachable!("instance-scoped"),
    };
    (TraceStream::from_unchecked_parts(id, out), n)
}

fn stream_start(events: &[Event]) -> TimeNs {
    events.first().map(|e| e.t).unwrap_or(TimeNs::ZERO)
}

fn stream_end(events: &[Event]) -> TimeNs {
    events.iter().map(Event::end).max().unwrap_or(TimeNs::ZERO)
}

/// SplitMix64: tiny, seedable, and good enough for Bernoulli trials.
/// Hand-rolled so the crate stays dependency-free and injection stays
/// bit-stable across toolchains.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    /// Derives an independent stream for `(seed, kind, item)` so faults
    /// compose without perturbing each other's randomness.
    fn for_item(seed: u64, kind: FaultKind, item: u32) -> Rng {
        let mut mix = Rng(seed ^ (kind.index().wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let a = mix.next_u64();
        Rng(a ^ (u64::from(item).wrapping_mul(0xBF58_476D_1CE4_E5B9)))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` (inclusive); `lo` when degenerate.
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::DatasetBuilder;

    fn clean() -> Dataset {
        DatasetBuilder::new(3).traces(6).build()
    }

    #[test]
    fn injection_is_deterministic() {
        let ds = clean();
        let inj = FaultInjector::new(42).with_all(0.05);
        let (a, log_a) = inj.inject(&ds);
        let (b, log_b) = inj.inject(&ds);
        assert_eq!(log_a, log_b);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.write_text(&mut ba).unwrap();
        b.write_text(&mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn zero_rate_is_identity() {
        let ds = clean();
        let (out, log) = FaultInjector::new(1).with_all(0.0).inject(&ds);
        assert_eq!(log.total(), 0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        ds.write_text(&mut a).unwrap();
        out.write_text(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn drop_unwaits_removes_only_unwaits() {
        let ds = clean();
        let (out, log) = FaultInjector::new(7)
            .with(FaultKind::DropUnwaits, 0.5)
            .inject(&ds);
        let count = |d: &Dataset, k: EventKind| {
            d.streams
                .iter()
                .flat_map(|s| s.events())
                .filter(|e| e.kind == k)
                .count()
        };
        let dropped = count(&ds, EventKind::Unwait) - count(&out, EventKind::Unwait);
        assert_eq!(dropped, log.injected(FaultKind::DropUnwaits));
        assert!(dropped > 0);
        assert_eq!(
            count(&ds, EventKind::Running),
            count(&out, EventKind::Running)
        );
    }

    #[test]
    fn truncation_drops_a_suffix() {
        let ds = clean();
        let (out, log) = FaultInjector::new(5)
            .with(FaultKind::TruncateStreams, 1.0)
            .inject(&ds);
        assert_eq!(log.injected(FaultKind::TruncateStreams), ds.streams.len());
        assert!(out.total_events() < ds.total_events());
        for (a, b) in ds.streams.iter().zip(&out.streams) {
            // The kept prefix is unchanged.
            assert_eq!(&a.events()[..b.len()], b.events());
        }
    }

    #[test]
    fn duplicates_inflate_event_count() {
        let ds = clean();
        let (out, log) = FaultInjector::new(9)
            .with(FaultKind::DuplicateEvents, 0.2)
            .inject(&ds);
        let n = log.injected(FaultKind::DuplicateEvents);
        assert!(n > 0);
        assert_eq!(out.total_events(), ds.total_events() + n);
        // Duplication keeps streams sorted: it inserts at equal t.
        for s in &out.streams {
            assert!(s.events().windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    #[test]
    fn clock_skew_unsorts_streams() {
        let ds = clean();
        let (out, log) = FaultInjector::new(11)
            .with(FaultKind::ClockSkew, 0.3)
            .inject(&ds);
        assert!(log.injected(FaultKind::ClockSkew) > 0);
        let unsorted = out
            .streams
            .iter()
            .any(|s| s.events().windows(2).any(|w| w[1].t < w[0].t));
        assert!(unsorted, "expected at least one unsorted stream");
        assert_eq!(out.total_events(), ds.total_events());
    }

    #[test]
    fn dangling_stacks_are_out_of_range() {
        let ds = clean();
        let (out, log) = FaultInjector::new(13)
            .with(FaultKind::DanglingStacks, 0.1)
            .inject(&ds);
        let n = out
            .streams
            .iter()
            .flat_map(|s| s.events())
            .filter(|e| e.stack.0 as usize >= out.stacks.len())
            .count();
        assert_eq!(n, log.injected(FaultKind::DanglingStacks));
        assert!(n > 0);
    }

    #[test]
    fn orphan_waits_use_ghost_threads() {
        let ds = clean();
        let (out, log) = FaultInjector::new(17)
            .with(FaultKind::OrphanWaits, 0.1)
            .inject(&ds);
        let n = log.injected(FaultKind::OrphanWaits);
        assert!(n > 0);
        assert_eq!(out.total_events(), ds.total_events() + n);
        // Ghost waits are never woken: no unwait targets their thread.
        for s in &out.streams {
            let ghosts: Vec<ThreadId> = s
                .events()
                .iter()
                .filter(|e| e.kind == EventKind::Wait && e.tid.0 >= 1_000)
                .map(|e| e.tid)
                .collect();
            for g in ghosts {
                assert!(!s.events().iter().any(|e| e.wtid == Some(g)));
            }
        }
    }

    #[test]
    fn dangling_instance_refs_point_nowhere() {
        let ds = clean();
        let (out, log) = FaultInjector::new(19)
            .with(FaultKind::DanglingInstanceRefs, 0.3)
            .inject(&ds);
        let n = out
            .instances
            .iter()
            .filter(|i| i.trace.0 as usize >= out.streams.len())
            .count();
        assert_eq!(n, log.injected(FaultKind::DanglingInstanceRefs));
        assert!(n > 0);
    }

    #[test]
    fn sanitize_recovers_every_kind() {
        let ds = clean();
        for kind in ALL_FAULT_KINDS {
            let (corrupt, _) = FaultInjector::new(23).with(kind, 0.2).inject(&ds);
            let (repaired, _) = corrupt.sanitize();
            assert!(
                repaired.validate().is_ok(),
                "{}: sanitize output must validate",
                kind.label()
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<&str> =
            ALL_FAULT_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ALL_FAULT_KINDS.len());
    }
}
