//! Descriptive statistics over a data set.
//!
//! The quick orientation an analyst takes before choosing where to point
//! the heavier analyses: event-kind volumes, per-scenario instance
//! counts, and duration percentiles.

use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::scenario::{ScenarioInstance, ScenarioName};
use crate::time::TimeNs;
use std::collections::BTreeMap;
use std::fmt;

/// Duration distribution of a set of instances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationStats {
    /// Number of instances.
    pub count: usize,
    /// Minimum duration.
    pub min: TimeNs,
    /// Median (p50).
    pub p50: TimeNs,
    /// 90th percentile.
    pub p90: TimeNs,
    /// 99th percentile.
    pub p99: TimeNs,
    /// Maximum duration.
    pub max: TimeNs,
    /// Total duration.
    pub total: TimeNs,
}

impl DurationStats {
    /// Computes the distribution over `durations` (order irrelevant).
    pub fn of(mut durations: Vec<TimeNs>) -> DurationStats {
        if durations.is_empty() {
            return DurationStats::default();
        }
        durations.sort_unstable();
        let pick = |q: f64| {
            let idx = ((durations.len() - 1) as f64 * q).round() as usize;
            durations[idx]
        };
        DurationStats {
            count: durations.len(),
            min: durations[0],
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *durations.last().expect("nonempty"),
            total: durations.iter().copied().sum(),
        }
    }

    /// Mean duration.
    pub fn mean(&self) -> TimeNs {
        if self.count == 0 {
            TimeNs::ZERO
        } else {
            self.total / self.count as u64
        }
    }
}

impl fmt::Display for DurationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={}",
            self.count, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A data-set summary.
#[derive(Debug, Clone, Default)]
pub struct DatasetSummary {
    /// Event counts per kind.
    pub events: BTreeMap<&'static str, usize>,
    /// Duration statistics per scenario.
    pub scenarios: BTreeMap<ScenarioName, DurationStats>,
    /// Duration statistics over all instances.
    pub overall: DurationStats,
}

impl DatasetSummary {
    /// Summarizes `dataset`.
    pub fn of(dataset: &Dataset) -> DatasetSummary {
        let mut events: BTreeMap<&'static str, usize> = BTreeMap::new();
        for stream in &dataset.streams {
            for e in stream.events() {
                let key = match e.kind {
                    EventKind::Running => "running",
                    EventKind::Wait => "wait",
                    EventKind::Unwait => "unwait",
                    EventKind::HardwareService => "hardware",
                };
                *events.entry(key).or_insert(0) += 1;
            }
        }
        let mut per: BTreeMap<ScenarioName, Vec<TimeNs>> = BTreeMap::new();
        for i in &dataset.instances {
            per.entry(i.scenario).or_default().push(i.duration());
        }
        let overall = DurationStats::of(
            dataset
                .instances
                .iter()
                .map(ScenarioInstance::duration)
                .collect(),
        );
        DatasetSummary {
            events,
            scenarios: per
                .into_iter()
                .map(|(k, v)| (k, DurationStats::of(v)))
                .collect(),
            overall,
        }
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "events:")?;
        for (k, v) in &self.events {
            write!(f, " {k}={v}")?;
        }
        writeln!(f)?;
        writeln!(f, "instances: {}", self.overall)?;
        for (name, stats) in &self.scenarios {
            writeln!(f, "  {name:<24} {stats}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TraceId};
    use crate::scenario::ScenarioInstance;
    use crate::stream::TraceStreamBuilder;

    #[test]
    fn percentiles_on_known_values() {
        let stats = DurationStats::of((1..=100).map(TimeNs).collect());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min, TimeNs(1));
        assert_eq!(stats.max, TimeNs(100));
        assert_eq!(stats.p50, TimeNs(51)); // round((99)*0.5)=50 → value 51
        assert_eq!(stats.p90, TimeNs(90));
        assert_eq!(stats.p99, TimeNs(99));
        assert_eq!(stats.total, TimeNs(5050));
        assert_eq!(stats.mean(), TimeNs(50));
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = DurationStats::of(Vec::new());
        assert_eq!(stats, DurationStats::default());
        assert_eq!(stats.mean(), TimeNs::ZERO);
    }

    #[test]
    fn single_value() {
        let stats = DurationStats::of(vec![TimeNs(42)]);
        assert_eq!(stats.min, TimeNs(42));
        assert_eq!(stats.p50, TimeNs(42));
        assert_eq!(stats.p99, TimeNs(42));
        assert_eq!(stats.max, TimeNs(42));
    }

    #[test]
    fn summary_counts_kinds_and_scenarios() {
        let mut ds = Dataset::new();
        let st = ds.stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(5), st);
        b.push_wait(ThreadId(1), TimeNs(5), TimeNs::ZERO, st);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(9), st);
        ds.streams.push(b.finish().unwrap());
        for (tid, name, dur) in [(1u32, "A", 10u64), (2, "A", 20), (3, "B", 30)] {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new(name),
                tid: ThreadId(tid),
                t0: TimeNs(0),
                t1: TimeNs(dur),
            });
        }
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.events["running"], 1);
        assert_eq!(s.events["wait"], 1);
        assert_eq!(s.events["unwait"], 1);
        assert_eq!(s.scenarios.len(), 2);
        assert_eq!(s.scenarios[&ScenarioName::new("A")].count, 2);
        assert_eq!(s.overall.count, 3);
        assert_eq!(s.overall.max, TimeNs(30));
        let text = s.to_string();
        assert!(text.contains("running=1"));
        assert!(text.contains("B"));
    }
}
