//! `.tlb` (*tracelens binary*) — the columnar on-disk trace store.
//!
//! A packed data set holds the same information as the `.tlt` text
//! format, laid out for load speed instead of readability: the symbol
//! and stack tables are written once, events live in struct-of-arrays
//! columns (one contiguous array per field), and loading is a bounded
//! sequence of column reads instead of a per-line parse. The paper's
//! corpus is re-analyzed far more often than it is collected, so the
//! pack cost is paid once and every later run starts at column-read
//! speed.
//!
//! ## Layout
//!
//! ```text
//! header (32 bytes)
//!   magic      "TLB!"          4 bytes
//!   version    u32             bumped on any layout change
//!   fingerprint u64            FNV-1a of the *source text* bytes
//!   payload_len u64
//!   checksum   u64             FNV-1a of the payload bytes
//! payload (all integers little-endian)
//!   symbols    count, then per symbol: len + UTF-8 bytes
//!   stacks     count, frame-count column, flat frame-symbol column
//!   names      scenario-name table (count, then len + bytes each)
//!   scenarios  name-index, t_fast, t_slow columns
//!   streams    ids + event-count columns, then the event columns:
//!              kind u8 / tid u32 / pid u32 / t u64 / cost u64 /
//!              stack u32, a wtid presence bitmap, packed wtid values
//!   instances  trace, tid, t0, t1, name-index columns
//! ```
//!
//! The fingerprint identifies *which text* a cache was packed from; the
//! checksum proves the payload arrived intact. A reader rejects any
//! torn, bit-flipped, or version-skewed file with a typed
//! [`BinReadError`] — callers (the `--cache` layer) then fall back to
//! the text parse. Reading is loss-free even for data sets that would
//! fail validation (unsorted streams, dangling stack ids survive a
//! round trip unchanged), so packing never launders corruption.

use crate::dataset::Dataset;
use crate::event::{Event, EventKind};
use crate::ids::{ProcessId, ThreadId, TraceId};
use crate::scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
use crate::stack::StackId;
use crate::stream::TraceStream;
use crate::time::TimeNs;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, Write};

/// File magic of the binary store.
pub const MAGIC: [u8; 4] = *b"TLB!";

/// Current binary format version; bumped on any layout change, so a
/// reader never mis-parses a cache written by a different build.
pub const BIN_FORMAT_VERSION: u32 = 1;

/// Header length in bytes (magic + version + fingerprint + payload
/// length + checksum).
pub const HEADER_LEN: usize = 32;

/// FNV-1a 64 folded over 8-byte little-endian words (the final partial
/// word zero-padded, the input length mixed in last) — used both as the
/// source-content fingerprint and as the payload checksum. Word folding
/// keeps the multiply chain an eighth as long as byte-wise FNV, which
/// matters because every cached ingest fingerprints the full source
/// text and every binary load checksums the full payload.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    // Four independent lanes over interleaved words: FNV's multiply is a
    // serial dependency chain, so striping lets the CPU overlap four
    // multiplies instead of waiting on one.
    let mut lanes = [OFFSET, OFFSET ^ 1, OFFSET ^ 2, OFFSET ^ 3];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(block[j * 8..j * 8 + 8].try_into().expect("exact chunk"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    let rem = blocks.remainder();
    let mut words = rem.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("exact chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h ^= u64::from_le_bytes(last);
        h = h.wrapping_mul(PRIME);
    }
    // Length distinguishes inputs that differ only in trailing zeroes.
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Reads just the source fingerprint out of a `.tlb` header, without
/// touching the payload — the cheap staleness check the cache layer
/// runs before committing to a full load. `None` if the bytes are not
/// a complete header of the supported version.
pub fn header_fingerprint(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[4..8].try_into().ok()?) != BIN_FORMAT_VERSION {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?))
}

/// Errors produced while reading the binary store. Every variant means
/// "this cache is unusable; re-ingest from text" — none are fatal to
/// the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinReadError {
    /// Not a `.tlb` file (wrong or incomplete magic).
    BadMagic,
    /// Written by a different format version.
    UnsupportedVersion(u32),
    /// Shorter than the header claims — a torn write.
    Truncated,
    /// Payload checksum mismatch — bit rot or a torn rewrite.
    ChecksumMismatch,
    /// Structurally invalid payload.
    Malformed(&'static str),
}

impl fmt::Display for BinReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinReadError::BadMagic => write!(f, "not a tracelens binary store"),
            BinReadError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary format version {v}")
            }
            BinReadError::Truncated => write!(f, "binary store is truncated"),
            BinReadError::ChecksumMismatch => write!(f, "binary store checksum mismatch"),
            BinReadError::Malformed(what) => write!(f, "malformed binary store: {what}"),
        }
    }
}

impl Error for BinReadError {}

fn kind_byte(kind: EventKind) -> u8 {
    match kind {
        EventKind::Running => 0,
        EventKind::Wait => 1,
        EventKind::Unwait => 2,
        EventKind::HardwareService => 3,
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over the payload; every read is checked so a
/// crafted or colliding payload produces an error, never a panic.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinReadError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(BinReadError::Malformed("length overflow"))?;
        if end > self.bytes.len() {
            return Err(BinReadError::Malformed("section overruns payload"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, BinReadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, BinReadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, BinReadError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| BinReadError::Malformed("invalid utf-8 in string table"))
    }

    /// Validates an element count against the bytes actually left, so a
    /// corrupt count cannot drive a huge allocation.
    fn counted(&self, count: u32, min_elem_bytes: usize) -> Result<usize, BinReadError> {
        let count = count as usize;
        if count.saturating_mul(min_elem_bytes) > self.bytes.len() - self.pos {
            return Err(BinReadError::Malformed("count overruns payload"));
        }
        Ok(count)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl Dataset {
    /// Serializes the data set into a complete `.tlb` image.
    ///
    /// `fingerprint` identifies the source this image was packed from —
    /// conventionally [`fingerprint_bytes`] of the text serialization —
    /// and is what [`header_fingerprint`] reports for cache-staleness
    /// checks.
    pub fn to_binary(&self, fingerprint: u64) -> Vec<u8> {
        let total_events: u64 = self.streams.iter().map(|s| s.len() as u64).sum();
        let mut buf = Vec::with_capacity(HEADER_LEN + 64 + total_events as usize * 29);
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, BIN_FORMAT_VERSION);
        put_u64(&mut buf, fingerprint);
        put_u64(&mut buf, 0); // payload_len, patched below
        put_u64(&mut buf, 0); // checksum, patched below

        // Symbols, in id order.
        put_u32(&mut buf, self.stacks.symbols().len() as u32);
        for (_, text) in self.stacks.symbols().iter() {
            put_str(&mut buf, text);
        }

        // Stacks: frame-count column, then the flat frame column.
        put_u32(&mut buf, self.stacks.len() as u32);
        let mut total_frames: u64 = 0;
        for id in 0..self.stacks.len() {
            let frames = self.stacks.frames(StackId(id as u32));
            total_frames += frames.len() as u64;
            put_u32(&mut buf, frames.len() as u32);
        }
        put_u64(&mut buf, total_frames);
        for id in 0..self.stacks.len() {
            for sym in self.stacks.frames(StackId(id as u32)) {
                put_u32(&mut buf, sym.0);
            }
        }

        // Scenario-name table, first-appearance order over scenarios
        // then instances.
        let mut names: Vec<&str> = Vec::new();
        let mut name_idx: HashMap<&str, u32> = HashMap::new();
        for name in self
            .scenarios
            .iter()
            .map(|s| s.name.as_str())
            .chain(self.instances.iter().map(|i| i.scenario.as_str()))
        {
            name_idx.entry(name).or_insert_with(|| {
                names.push(name);
                names.len() as u32 - 1
            });
        }
        put_u32(&mut buf, names.len() as u32);
        for name in &names {
            put_str(&mut buf, name);
        }

        // Scenarios: name-index, t_fast, t_slow columns.
        put_u32(&mut buf, self.scenarios.len() as u32);
        for s in &self.scenarios {
            put_u32(&mut buf, name_idx[s.name.as_str()]);
        }
        for s in &self.scenarios {
            put_u64(&mut buf, s.thresholds.fast().as_nanos());
        }
        for s in &self.scenarios {
            put_u64(&mut buf, s.thresholds.slow().as_nanos());
        }

        // Streams: id + length columns, then event columns over the
        // concatenation of all streams' events.
        put_u32(&mut buf, self.streams.len() as u32);
        for s in &self.streams {
            put_u32(&mut buf, s.id().0);
        }
        for s in &self.streams {
            put_u64(&mut buf, s.len() as u64);
        }
        put_u64(&mut buf, total_events);
        let all = || self.streams.iter().flat_map(|s| s.events().iter());
        for e in all() {
            buf.push(kind_byte(e.kind));
        }
        for e in all() {
            put_u32(&mut buf, e.tid.0);
        }
        for e in all() {
            put_u32(&mut buf, e.pid.0);
        }
        for e in all() {
            put_u64(&mut buf, e.t.as_nanos());
        }
        for e in all() {
            put_u64(&mut buf, e.cost.as_nanos());
        }
        for e in all() {
            put_u32(&mut buf, e.stack.0);
        }
        let mut bitmap = vec![0u8; (total_events as usize).div_ceil(8)];
        let mut wtids: Vec<u32> = Vec::new();
        for (i, e) in all().enumerate() {
            if let Some(w) = e.wtid {
                bitmap[i / 8] |= 1 << (i % 8);
                wtids.push(w.0);
            }
        }
        buf.extend_from_slice(&bitmap);
        put_u32(&mut buf, wtids.len() as u32);
        for w in &wtids {
            put_u32(&mut buf, *w);
        }

        // Instances: trace, tid, t0, t1, name-index columns.
        put_u32(&mut buf, self.instances.len() as u32);
        for i in &self.instances {
            put_u32(&mut buf, i.trace.0);
        }
        for i in &self.instances {
            put_u32(&mut buf, i.tid.0);
        }
        for i in &self.instances {
            put_u64(&mut buf, i.t0.as_nanos());
        }
        for i in &self.instances {
            put_u64(&mut buf, i.t1.as_nanos());
        }
        for i in &self.instances {
            put_u32(&mut buf, name_idx[i.scenario.as_str()]);
        }

        // Patch payload length and checksum into the header.
        let payload_len = (buf.len() - HEADER_LEN) as u64;
        let checksum = fingerprint_bytes(&buf[HEADER_LEN..]);
        buf[16..24].copy_from_slice(&payload_len.to_le_bytes());
        buf[24..32].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Writes the data set as a `.tlb` binary store (see [`Dataset::to_binary`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_binary<W: Write>(&self, fingerprint: u64, mut out: W) -> io::Result<()> {
        out.write_all(&self.to_binary(fingerprint))
    }

    /// Reads a data set from a `.tlb` image, returning it together with
    /// the source fingerprint recorded in the header.
    ///
    /// The reconstruction is exact: symbol ids, stack ids, stream order
    /// and event order all match the data set that was written, so
    /// `read_binary(to_binary(ds)).0` serializes byte-identically to
    /// `ds` via [`Dataset::write_text`].
    ///
    /// # Errors
    ///
    /// A [`BinReadError`] for any torn, corrupted, or version-skewed
    /// image; the caller is expected to fall back to text ingestion.
    pub fn read_binary(bytes: &[u8]) -> Result<(Dataset, u64), BinReadError> {
        if bytes.len() < 4 || bytes[0..4] != MAGIC {
            return Err(BinReadError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(BinReadError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != BIN_FORMAT_VERSION {
            return Err(BinReadError::UnsupportedVersion(version));
        }
        let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let body = &bytes[HEADER_LEN..];
        if (body.len() as u64) < payload_len {
            return Err(BinReadError::Truncated);
        }
        if (body.len() as u64) > payload_len {
            return Err(BinReadError::Malformed("trailing bytes after payload"));
        }
        if fingerprint_bytes(body) != checksum {
            return Err(BinReadError::ChecksumMismatch);
        }

        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        let mut ds = Dataset::new();

        // Symbols.
        let sym_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        for i in 0..sym_count {
            let text = r.str()?;
            let sym = ds.stacks.intern_frame(text);
            if sym.0 as usize != i {
                return Err(BinReadError::Malformed("duplicate symbol in table"));
            }
        }

        // Stacks.
        let stack_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let mut frame_counts = Vec::with_capacity(stack_count);
        for _ in 0..stack_count {
            frame_counts.push(r.u32()?);
        }
        let total_frames = r.u64()?;
        if total_frames != frame_counts.iter().map(|&c| c as u64).sum::<u64>() {
            return Err(BinReadError::Malformed("frame total mismatch"));
        }
        r.counted(
            u32::try_from(total_frames).map_err(|_| BinReadError::Malformed("frame overflow"))?,
            4,
        )?;
        let mut frames = Vec::new();
        for (i, &count) in frame_counts.iter().enumerate() {
            frames.clear();
            for _ in 0..count {
                let sym = r.u32()?;
                if sym as usize >= sym_count {
                    return Err(BinReadError::Malformed("frame references unknown symbol"));
                }
                frames.push(crate::intern::Symbol(sym));
            }
            let id = ds.stacks.intern(&frames);
            if id.0 as usize != i {
                return Err(BinReadError::Malformed("duplicate stack in table"));
            }
        }

        // Scenario-name table.
        let name_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let mut names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            names.push(ScenarioName::new(r.str()?));
        }
        let name_at = |idx: u32| -> Result<ScenarioName, BinReadError> {
            names
                .get(idx as usize)
                .copied()
                .ok_or(BinReadError::Malformed("scenario name index out of range"))
        };

        // Scenarios.
        let scen_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let mut scen_names = Vec::with_capacity(scen_count);
        for _ in 0..scen_count {
            scen_names.push(name_at(r.u32()?)?);
        }
        let mut fasts = Vec::with_capacity(scen_count);
        for _ in 0..scen_count {
            fasts.push(r.u64()?);
        }
        for (name, fast) in scen_names.into_iter().zip(fasts) {
            let slow = r.u64()?;
            if fast >= slow {
                return Err(BinReadError::Malformed("scenario thresholds inverted"));
            }
            ds.scenarios.push(Scenario::new(
                name,
                Thresholds::new(TimeNs(fast), TimeNs(slow)),
            ));
        }

        // Streams and their event columns.
        let stream_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let mut ids = Vec::with_capacity(stream_count);
        for _ in 0..stream_count {
            ids.push(r.u32()?);
        }
        let mut lens = Vec::with_capacity(stream_count);
        for _ in 0..stream_count {
            lens.push(r.u64()?);
        }
        let total_events = r.u64()?;
        if total_events != lens.iter().sum::<u64>() {
            return Err(BinReadError::Malformed("event total mismatch"));
        }
        let total = usize::try_from(total_events)
            .ok()
            .filter(|&t| t <= r.remaining())
            .ok_or(BinReadError::Malformed("event count overruns payload"))?;
        let kinds = r.take(total)?;
        let tids = r.take(total.checked_mul(4).ok_or(BinReadError::Truncated)?)?;
        let pids = r.take(total * 4)?;
        let ts = r.take(total.checked_mul(8).ok_or(BinReadError::Truncated)?)?;
        let costs = r.take(total * 8)?;
        let stacks = r.take(total * 4)?;
        let bitmap = r.take(total.div_ceil(8))?;
        let wtid_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let wtids = r.take(wtid_count * 4)?;

        // Validate the kind column and the wtid bitmap up front so the
        // assembly loop below is infallible — no error branches on the
        // per-event hot path.
        if kinds.iter().any(|&b| b > 3) {
            return Err(BinReadError::Malformed("bad event kind"));
        }
        let set_bits: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        if set_bits != wtid_count {
            return Err(BinReadError::Malformed("wtid bitmap/column mismatch"));
        }
        if total % 8 != 0 {
            if let Some(&last) = bitmap.last() {
                if last >> (total % 8) != 0 {
                    return Err(BinReadError::Malformed("wtid bitmap tail bits set"));
                }
            }
        }

        // Assemble events straight off the byte columns: lockstep chunk
        // iterators instead of per-element bounds-checked indexing, and
        // no intermediate decoded vectors.
        fn next_u32(it: &mut std::slice::ChunksExact<'_, u8>) -> u32 {
            u32::from_le_bytes(
                it.next()
                    .expect("sized column")
                    .try_into()
                    .expect("exact chunk"),
            )
        }
        fn next_u64(it: &mut std::slice::ChunksExact<'_, u8>) -> u64 {
            u64::from_le_bytes(
                it.next()
                    .expect("sized column")
                    .try_into()
                    .expect("exact chunk"),
            )
        }
        const KINDS: [EventKind; 4] = [
            EventKind::Running,
            EventKind::Wait,
            EventKind::Unwait,
            EventKind::HardwareService,
        ];
        let mut kind_it = kinds.iter();
        let mut tid_it = tids.chunks_exact(4);
        let mut pid_it = pids.chunks_exact(4);
        let mut t_it = ts.chunks_exact(8);
        let mut cost_it = costs.chunks_exact(8);
        let mut stack_it = stacks.chunks_exact(4);
        let mut wtid_it = wtids.chunks_exact(4);

        let mut i = 0usize; // global event index, for the wtid bitmap
        for (raw_id, len) in ids.into_iter().zip(lens) {
            let len = len as usize;
            let mut events = Vec::with_capacity(len);
            events.extend((0..len).map(|_| {
                let kind = KINDS[(*kind_it.next().expect("sized column") & 3) as usize];
                let wtid =
                    (bitmap[i / 8] & (1 << (i % 8)) != 0).then(|| ThreadId(next_u32(&mut wtid_it)));
                i += 1;
                Event {
                    kind,
                    tid: ThreadId(next_u32(&mut tid_it)),
                    pid: ProcessId(next_u32(&mut pid_it)),
                    t: TimeNs(next_u64(&mut t_it)),
                    cost: TimeNs(next_u64(&mut cost_it)),
                    stack: StackId(next_u32(&mut stack_it)),
                    wtid,
                }
            }));
            // Order is preserved verbatim (no re-sort), so even streams
            // that would fail validation round-trip unchanged.
            ds.streams
                .push(TraceStream::from_unchecked_parts(TraceId(raw_id), events));
        }

        // Instances.
        let inst_count = {
            let c = r.u32()?;
            r.counted(c, 4)?
        };
        let mut traces = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            traces.push(r.u32()?);
        }
        let mut tids_i = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            tids_i.push(r.u32()?);
        }
        let mut t0s = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            t0s.push(r.u64()?);
        }
        let mut t1s = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            t1s.push(r.u64()?);
        }
        for ((trace, tid), (t0, t1)) in traces.into_iter().zip(tids_i).zip(t0s.into_iter().zip(t1s))
        {
            let scenario = name_at(r.u32()?)?;
            ds.instances.push(ScenarioInstance {
                trace: TraceId(trace),
                scenario,
                tid: ThreadId(tid),
                t0: TimeNs(t0),
                t1: TimeNs(t1),
            });
        }

        if r.remaining() != 0 {
            return Err(BinReadError::Malformed("trailing bytes in payload"));
        }
        Ok((ds, fingerprint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TraceStreamBuilder;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(100), TimeNs(200)),
        ));
        let a = ds.stacks.intern_symbols(&["app!Main", "fs.sys!Read"]);
        let b = ds.stacks.intern_symbols(&["app!Main"]);
        let mut tb = TraceStreamBuilder::new(0);
        tb.push_running(ThreadId(1), TimeNs(0), TimeNs(10), a);
        tb.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, b);
        tb.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), a);
        tb.push_hardware(ThreadId(3), TimeNs(12), TimeNs(15), b);
        ds.streams.push(tb.finish().unwrap());
        let mut tb = TraceStreamBuilder::new(1);
        tb.push_running(ThreadId(5), TimeNs(3), TimeNs(7), b);
        ds.streams.push(tb.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(40),
        });
        ds.instances.push(ScenarioInstance {
            trace: TraceId(1),
            scenario: ScenarioName::new("Orphan"),
            tid: ThreadId(5),
            t0: TimeNs(3),
            t1: TimeNs(9),
        });
        ds
    }

    fn text(ds: &Dataset) -> Vec<u8> {
        let mut out = Vec::new();
        ds.write_text(&mut out).unwrap();
        out
    }

    #[test]
    fn binary_round_trip_is_text_byte_identical() {
        let ds = sample();
        let src = text(&ds);
        let image = ds.to_binary(fingerprint_bytes(&src));
        let (back, fp) = Dataset::read_binary(&image).unwrap();
        assert_eq!(fp, fingerprint_bytes(&src));
        assert_eq!(text(&back), src);
        assert_eq!(back.instances, ds.instances);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = Dataset::new();
        let image = ds.to_binary(7);
        let (back, fp) = Dataset::read_binary(&image).unwrap();
        assert_eq!(fp, 7);
        assert_eq!(text(&back), text(&ds));
    }

    #[test]
    fn corrupt_dataset_round_trips_without_laundering() {
        // Unsorted events and a dangling stack id must survive a pack /
        // load cycle verbatim — the cache must never hide corruption.
        let mut ds = sample();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events.swap(0, 3);
        events[1].stack = StackId(999);
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        let image = ds.to_binary(1);
        let (back, _) = Dataset::read_binary(&image).unwrap();
        assert_eq!(back.streams[0].events(), ds.streams[0].events());
        assert_eq!(back.streams[0].events()[1].stack, StackId(999));
    }

    #[test]
    fn header_fingerprint_is_cheap_and_exact() {
        let ds = sample();
        let image = ds.to_binary(0xDEAD_BEEF);
        assert_eq!(header_fingerprint(&image), Some(0xDEAD_BEEF));
        assert_eq!(header_fingerprint(&image[..HEADER_LEN - 1]), None);
        assert_eq!(header_fingerprint(b"not a tlb"), None);
    }

    #[test]
    fn torn_image_fails_at_every_offset() {
        let image = sample().to_binary(42);
        for cut in 0..image.len() {
            let e = Dataset::read_binary(&image[..cut]).unwrap_err();
            assert!(
                matches!(e, BinReadError::BadMagic | BinReadError::Truncated),
                "cut at {cut}: {e:?}"
            );
        }
        assert!(Dataset::read_binary(&image).is_ok());
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let image = sample().to_binary(42);
        // Flip one byte in every payload region (step keeps it fast).
        for pos in (HEADER_LEN..image.len()).step_by(7) {
            let mut bad = image.clone();
            bad[pos] ^= 0x40;
            assert_eq!(
                Dataset::read_binary(&bad).unwrap_err(),
                BinReadError::ChecksumMismatch,
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut image = sample().to_binary(42);
        image.push(0);
        assert!(matches!(
            Dataset::read_binary(&image).unwrap_err(),
            BinReadError::Malformed(_)
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut image = sample().to_binary(42);
        image[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Dataset::read_binary(&image).unwrap_err(),
            BinReadError::UnsupportedVersion(99)
        );
        assert_eq!(header_fingerprint(&image), None);
    }
}
