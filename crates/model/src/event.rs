//! Tracing events (the paper's §2.1 event types).

use crate::ids::{ProcessId, ThreadId};
use crate::stack::StackId;
use crate::time::TimeNs;

/// The four event types of a trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// CPU usage sampled in a constant interval (1 ms in ETW/DTrace).
    Running,
    /// A thread entered the waiting state due to a blocking operation.
    Wait,
    /// A running thread signalled a waiting thread to continue execution.
    Unwait,
    /// A hardware operation, recorded with start timestamp and duration.
    HardwareService,
}

impl EventKind {
    /// Short lowercase label, handy in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Running => "run",
            EventKind::Wait => "wait",
            EventKind::Unwait => "unwait",
            EventKind::HardwareService => "hw",
        }
    }
}

/// One tracing event.
///
/// Field names mirror the paper: callstack `e.S` ([`Event::stack`]),
/// timestamp `e.T` ([`Event::t`]), cost `e.C` ([`Event::cost`]), thread
/// `e.TID` ([`Event::tid`]) and, for unwait events, the woken thread
/// `e.WTID` ([`Event::wtid`]).
///
/// In a raw stream the cost of a *wait* event may be zero; the Wait-Graph
/// builder restores it from the timestamp of the paired unwait event, as
/// described in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Event type.
    pub kind: EventKind,
    /// Emitting thread.
    pub tid: ThreadId,
    /// Process owning [`Event::tid`].
    pub pid: ProcessId,
    /// Start timestamp.
    pub t: TimeNs,
    /// Duration. For unwait events this is zero (they are instantaneous
    /// signals); for wait events it may be zero until restored by pairing.
    pub cost: TimeNs,
    /// Callstack at the time of the event.
    pub stack: StackId,
    /// For unwait events: the thread being woken. `None` otherwise.
    pub wtid: Option<ThreadId>,
}

impl Event {
    /// End timestamp (`t + cost`).
    pub fn end(&self) -> TimeNs {
        self.t + self.cost
    }

    /// Whether the half-open interval `[t, end)` of this event overlaps
    /// the half-open interval `[from, to)`.
    pub fn overlaps(&self, from: TimeNs, to: TimeNs) -> bool {
        self.t < to && from < self.end()
    }

    /// Whether this event lies entirely within `[from, to]`.
    pub fn within(&self, from: TimeNs, to: TimeNs) -> bool {
        self.t >= from && self.end() <= to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, cost: u64) -> Event {
        Event {
            kind: EventKind::Running,
            tid: ThreadId(1),
            pid: ProcessId(1),
            t: TimeNs(t),
            cost: TimeNs(cost),
            stack: StackId(0),
            wtid: None,
        }
    }

    #[test]
    fn end_is_start_plus_cost() {
        assert_eq!(ev(10, 5).end(), TimeNs(15));
        assert_eq!(ev(10, 0).end(), TimeNs(10));
    }

    #[test]
    fn overlap_half_open() {
        let e = ev(10, 10); // [10, 20)
        assert!(e.overlaps(TimeNs(0), TimeNs(11)));
        assert!(e.overlaps(TimeNs(19), TimeNs(30)));
        assert!(!e.overlaps(TimeNs(20), TimeNs(30)));
        assert!(!e.overlaps(TimeNs(0), TimeNs(10)));
    }

    #[test]
    fn within_inclusive() {
        let e = ev(10, 10);
        assert!(e.within(TimeNs(10), TimeNs(20)));
        assert!(e.within(TimeNs(5), TimeNs(25)));
        assert!(!e.within(TimeNs(11), TimeNs(25)));
        assert!(!e.within(TimeNs(5), TimeNs(19)));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(EventKind::Running.label(), "run");
        assert_eq!(EventKind::Wait.label(), "wait");
        assert_eq!(EventKind::Unwait.label(), "unwait");
        assert_eq!(EventKind::HardwareService.label(), "hw");
    }
}
