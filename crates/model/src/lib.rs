//! # tracelens-model
//!
//! The trace schema shared by every tracelens crate: an abstracted,
//! ETW/DTrace-compatible representation of execution traces (the *trace
//! stream* of the paper's §2.1), plus the vocabulary the analyses are
//! phrased in — callstacks, function [`Signature`]s, [`ComponentFilter`]s,
//! application [`Scenario`]s and their instances.
//!
//! A [`TraceStream`] is a time-ordered sequence of [`Event`]s of four
//! kinds:
//!
//! * **running** — CPU usage sampled at a constant interval (1 ms in ETW),
//! * **wait** — a thread enters the waiting state (lock acquisition, I/O…),
//! * **unwait** — a running thread signals a waiting thread to continue,
//! * **hardware service** — a hardware operation with start and duration.
//!
//! Every event carries a callstack, a timestamp, a cost (duration), the
//! emitting thread id, and — for unwait events — the id of the thread
//! being woken.
//!
//! ## Example
//!
//! ```
//! use tracelens_model::{EventKind, StackTable, ThreadId, TraceStreamBuilder, TimeNs};
//!
//! let mut stacks = StackTable::new();
//! let s = stacks.intern_symbols(&["kernel!Worker", "fv.sys!QueryFileTable"]);
//! let mut b = TraceStreamBuilder::new(0);
//! b.push_wait(ThreadId(1), TimeNs(1_000), TimeNs(500), s);
//! b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(1_500), s);
//! let ts = b.finish().expect("well-formed stream");
//! assert_eq!(ts.len(), 2);
//! assert_eq!(ts.events()[0].kind, EventKind::Wait);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binio;
mod component;
mod dataset;
mod event;
mod heapsize;
mod ids;
mod intern;
mod sanitize;
mod scenario;
pub mod segment;
mod signature;
mod stack;
mod stream;
mod summary;
pub mod textio;
mod time;
mod validate;

pub use binio::{fingerprint_bytes, header_fingerprint, BinReadError, BIN_FORMAT_VERSION};
pub use component::{ComponentFilter, DriverType};
pub use dataset::Dataset;
pub use event::{Event, EventKind};
pub use heapsize::HeapSize;
pub use ids::{EventId, ProcessId, ThreadId, TraceId};
pub use intern::{InternError, Interner, Symbol};
pub use sanitize::{SanitizeReport, DUPLICATE_TRACE_ID};
pub use scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
pub use signature::{ParseSignatureError, Signature};
pub use stack::{FilterView, StackId, StackTable};
pub use stream::{StreamError, TraceStream, TraceStreamBuilder};
pub use summary::{DatasetSummary, DurationStats};
pub use time::TimeNs;
pub use validate::{ValidationError, Violation};

/// The CPU sampling interval used by the tracing infrastructure
/// (1 millisecond, matching ETW and DTrace as described in the paper §2.1).
pub const SAMPLE_INTERVAL: TimeNs = TimeNs(1_000_000);
