//! A line-based text format for data sets (`.tlt`, *tracelens trace*).
//!
//! The format lets users bring traces from any source (an ETW or DTrace
//! export, a custom tracer) and lets simulated data sets be persisted and
//! reloaded. It is deliberately simple: UTF-8 lines, tab-separated
//! fields, one record per line.
//!
//! ```text
//! !tracelens  1                                  format version
//! !scenario   <name> <t_fast_ns> <t_slow_ns>     scenario definition
//! !stack      <id>   <frame>[TAB<frame>...]      callstack (outermost first)
//! !trace      <id>                               starts a trace stream
//! e  <kind> <tid> <pid> <t_ns> <cost_ns> <stack> [<wtid>]
//! !instance   <trace> <tid> <t0_ns> <t1_ns> <scenario>
//! ```
//!
//! Event kinds are `r` (running), `w` (wait), `u` (unwait, requires
//! `wtid`), `h` (hardware service). Stack ids must be declared before
//! use; stacks and scenarios are data-set-global. Blank lines and lines
//! starting with `#` are ignored.

use crate::component::ComponentFilter;
use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::ids::{ProcessId, ThreadId};
use crate::scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
use crate::stack::StackId;
use crate::stream::TraceStreamBuilder;
use crate::time::TimeNs;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors produced while reading the text format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading data set: {e}"),
            ReadError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for ReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl Dataset {
    /// Writes the data set in the text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`. Returns
    /// [`io::ErrorKind::InvalidData`] if a frame or scenario name
    /// contains a tab or newline (unrepresentable).
    pub fn write_text<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "!tracelens\t{FORMAT_VERSION}")?;
        for s in &self.scenarios {
            check_text(s.name.as_str())?;
            writeln!(
                out,
                "!scenario\t{}\t{}\t{}",
                s.name.as_str(),
                s.thresholds.fast().as_nanos(),
                s.thresholds.slow().as_nanos()
            )?;
        }
        for id in 0..self.stacks.len() {
            let sid = StackId(id as u32);
            write!(out, "!stack\t{id}")?;
            for frame in self.stacks.resolve_frames(sid) {
                check_text(frame)?;
                write!(out, "\t{frame}")?;
            }
            writeln!(out)?;
        }
        for stream in &self.streams {
            writeln!(out, "!trace\t{}", stream.id().0)?;
            for e in stream.events() {
                let kind = match e.kind {
                    EventKind::Running => 'r',
                    EventKind::Wait => 'w',
                    EventKind::Unwait => 'u',
                    EventKind::HardwareService => 'h',
                };
                write!(
                    out,
                    "e\t{kind}\t{}\t{}\t{}\t{}\t{}",
                    e.tid.0,
                    e.pid.0,
                    e.t.as_nanos(),
                    e.cost.as_nanos(),
                    e.stack.0
                )?;
                match e.wtid {
                    Some(w) => writeln!(out, "\t{}", w.0)?,
                    None => writeln!(out)?,
                }
            }
        }
        for i in &self.instances {
            writeln!(
                out,
                "!instance\t{}\t{}\t{}\t{}\t{}",
                i.trace.0,
                i.tid.0,
                i.t0.as_nanos(),
                i.t1.as_nanos(),
                i.scenario.as_str()
            )?;
        }
        Ok(())
    }

    /// Reads a data set from the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::Parse`] with the offending line number for
    /// any malformed record, unknown stack id, or missing header.
    pub fn read_text<R: BufRead>(input: R) -> Result<Dataset, ReadError> {
        let mut ds = Dataset::new();
        // Maps declared stack ids to interned ids (they may differ if
        // the file's ids are sparse).
        let mut stack_ids: HashMap<u32, StackId> = HashMap::new();
        let mut current: Option<(u32, TraceStreamBuilder)> = None;
        let mut saw_header = false;

        let err = |line: usize, message: &str| ReadError::Parse {
            line,
            message: message.to_owned(),
        };

        for (idx, line) in input.lines().enumerate() {
            let lineno = idx + 1;
            let line = line?;
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "!tracelens" => {
                    let v: u32 = fields
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "missing format version"))?;
                    if v != FORMAT_VERSION {
                        return Err(err(lineno, &format!("unsupported version {v}")));
                    }
                    saw_header = true;
                }
                "!scenario" => {
                    if fields.len() != 4 {
                        return Err(err(lineno, "!scenario needs name, t_fast, t_slow"));
                    }
                    let fast: u64 = fields[2].parse().map_err(|_| err(lineno, "bad t_fast"))?;
                    let slow: u64 = fields[3].parse().map_err(|_| err(lineno, "bad t_slow"))?;
                    if fast >= slow {
                        return Err(err(lineno, "t_fast must be below t_slow"));
                    }
                    ds.scenarios.push(Scenario::new(
                        ScenarioName::new(fields[1]),
                        Thresholds::new(TimeNs(fast), TimeNs(slow)),
                    ));
                }
                "!stack" => {
                    if fields.len() < 2 {
                        return Err(err(lineno, "!stack needs an id"));
                    }
                    let raw: u32 = fields[1].parse().map_err(|_| err(lineno, "bad stack id"))?;
                    let interned = ds.stacks.intern_symbols(&fields[2..]);
                    stack_ids.insert(raw, interned);
                }
                "!trace" => {
                    if let Some((_, b)) = current.take() {
                        ds.streams.push(
                            b.finish().map_err(|e| {
                                err(lineno, &format!("previous trace invalid: {e}"))
                            })?,
                        );
                    }
                    let id: u32 = fields
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "bad trace id"))?;
                    current = Some((id, TraceStreamBuilder::new(id)));
                }
                "e" => {
                    if !saw_header {
                        return Err(err(lineno, "missing !tracelens header"));
                    }
                    let Some((_, builder)) = current.as_mut() else {
                        return Err(err(lineno, "event outside a !trace section"));
                    };
                    if fields.len() < 7 {
                        return Err(err(lineno, "event needs kind,tid,pid,t,cost,stack"));
                    }
                    let tid = ThreadId(fields[2].parse().map_err(|_| err(lineno, "bad tid"))?);
                    let pid = ProcessId(fields[3].parse().map_err(|_| err(lineno, "bad pid"))?);
                    let t = TimeNs(fields[4].parse().map_err(|_| err(lineno, "bad t"))?);
                    let cost = TimeNs(fields[5].parse().map_err(|_| err(lineno, "bad cost"))?);
                    let raw_stack: u32 =
                        fields[6].parse().map_err(|_| err(lineno, "bad stack id"))?;
                    let stack = *stack_ids
                        .get(&raw_stack)
                        .ok_or_else(|| err(lineno, "undeclared stack id"))?;
                    builder.set_process(pid);
                    match fields[1] {
                        "r" => builder.push_running(tid, t, cost, stack),
                        "w" => builder.push_wait(tid, t, cost, stack),
                        "h" => builder.push_hardware(tid, t, cost, stack),
                        "u" => {
                            let w: u32 = fields
                                .get(7)
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(lineno, "unwait needs wtid"))?;
                            builder.push_unwait(tid, ThreadId(w), t, stack)
                        }
                        other => return Err(err(lineno, &format!("unknown event kind {other:?}"))),
                    };
                }
                "!instance" => {
                    if fields.len() != 6 {
                        return Err(err(lineno, "!instance needs trace,tid,t0,t1,scenario"));
                    }
                    let trace: u32 = fields[1].parse().map_err(|_| err(lineno, "bad trace id"))?;
                    let tid: u32 = fields[2].parse().map_err(|_| err(lineno, "bad tid"))?;
                    let t0: u64 = fields[3].parse().map_err(|_| err(lineno, "bad t0"))?;
                    let t1: u64 = fields[4].parse().map_err(|_| err(lineno, "bad t1"))?;
                    if t0 > t1 {
                        return Err(err(lineno, "instance t0 after t1"));
                    }
                    ds.instances.push(ScenarioInstance {
                        trace: crate::ids::TraceId(trace),
                        scenario: ScenarioName::new(fields[5]),
                        tid: ThreadId(tid),
                        t0: TimeNs(t0),
                        t1: TimeNs(t1),
                    });
                }
                other => return Err(err(lineno, &format!("unknown record {other:?}"))),
            }
        }
        if let Some((_, b)) = current.take() {
            ds.streams.push(
                b.finish()
                    .map_err(|e| err(0, &format!("final trace invalid: {e}")))?,
            );
        }
        if !saw_header {
            return Err(err(0, "missing !tracelens header"));
        }
        // Streams must be indexable by their TraceId.
        ds.streams.sort_by_key(|s| s.id().0);
        for (i, s) in ds.streams.iter().enumerate() {
            if s.id().0 as usize != i {
                return Err(err(0, "trace ids must be dense, starting at 0"));
            }
        }
        Ok(ds)
    }

    /// [`Dataset::read_text`] behind a [`RetryingReader`]: transient
    /// I/O errors (interrupted or timed-out reads, as NFS and flaky
    /// storage produce at fleet scale) are retried with the policy's
    /// bounded exponential backoff instead of aborting ingestion.
    ///
    /// Returns the data set together with the number of retried reads,
    /// which callers surface in `SanitizeReport::io_retries`.
    pub fn read_text_retrying<R: io::Read>(
        input: R,
        policy: RetryPolicy,
    ) -> Result<(Dataset, usize), ReadError> {
        let mut reader = io::BufReader::new(RetryingReader::new(input, policy));
        let ds = Dataset::read_text(&mut reader)?;
        Ok((ds, reader.into_inner().retries()))
    }
}

/// Bounded-retry policy for transient ingestion I/O errors.
///
/// The backoff schedule is deterministic — attempt `k` (0-based) waits
/// `base_backoff * 2^k`, capped at `max_backoff` — so two runs over the
/// same flaky source retry identically; only the wall time varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per failing `read` call before the error propagates.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: std::time::Duration,
    /// Upper bound the exponential schedule saturates at.
    pub max_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    /// Three retries, 1 ms doubling to a 100 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (transient errors propagate).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The wait before retry number `attempt` (0-based):
    /// `base_backoff * 2^attempt`, saturating at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Whether an error kind counts as transient (worth retrying).
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        )
    }
}

/// A [`io::Read`] adapter retrying transient errors per [`RetryPolicy`].
///
/// A failed `read` consumes no bytes, so retrying the call resumes the
/// stream exactly where it left off; non-transient errors and exhausted
/// retries propagate unchanged.
#[derive(Debug)]
pub struct RetryingReader<R> {
    inner: R,
    policy: RetryPolicy,
    retries: usize,
}

impl<R> RetryingReader<R> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: R, policy: RetryPolicy) -> RetryingReader<R> {
        RetryingReader {
            inner,
            policy,
            retries: 0,
        }
    }

    /// Reads retried so far (each counts one transient error absorbed).
    pub fn retries(&self) -> usize {
        self.retries
    }
}

impl<R: io::Read> io::Read for RetryingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if RetryPolicy::is_transient(e.kind()) && attempt < self.policy.max_retries =>
                {
                    let pause = self.policy.backoff(attempt);
                    attempt += 1;
                    self.retries += 1;
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Rejects text that cannot be represented in the tab-separated format.
fn check_text(s: &str) -> io::Result<()> {
    if s.contains('\t') || s.contains('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("text contains tab/newline: {s:?}"),
        ));
    }
    Ok(())
}

/// Convenience: whether any stream in the data set references the given
/// components (a cheap pre-flight before a full analysis).
pub fn mentions_component(ds: &Dataset, filter: &ComponentFilter) -> bool {
    ds.streams.iter().any(|s| {
        s.events()
            .iter()
            .any(|e| ds.stacks.contains_component(e.stack, filter))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::time::Duration;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(100), TimeNs(200)),
        ));
        let st = ds.stacks.intern_symbols(&["app!Main", "fs.sys!Read"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), st);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, st);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), st);
        b.push_hardware(ThreadId(3), TimeNs(12), TimeNs(15), st);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: crate::ids::TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(40),
        });
        ds
    }

    fn round_trip(ds: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        ds.write_text(&mut buf).unwrap();
        Dataset::read_text(BufReader::new(buf.as_slice())).unwrap()
    }

    #[test]
    fn round_trips_events_and_metadata() {
        let ds = tiny();
        let back = round_trip(&ds);
        assert_eq!(back.streams.len(), 1);
        assert_eq!(back.instances, ds.instances);
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.scenarios[0].name, ScenarioName::new("S"));
        let (a, b) = (&ds.streams[0], &back.streams[0]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.tid, y.tid);
            assert_eq!(x.pid, y.pid);
            assert_eq!(x.t, y.t);
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.wtid, y.wtid);
            assert_eq!(
                ds.stacks.resolve_frames(x.stack),
                back.stacks.resolve_frames(y.stack)
            );
        }
    }

    #[test]
    fn rejects_tab_in_frame() {
        let mut ds = Dataset::new();
        ds.stacks.intern_symbols(&["bad\tframe!X"]);
        let mut buf = Vec::new();
        let e = ds.write_text(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "!tracelens\t1\n!stack\tnotanumber\tframe\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        match e {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("stack id"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_missing_header() {
        let text = "!trace\t0\ne\tr\t1\t1\t0\t5\t0\n";
        assert!(Dataset::read_text(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_event_outside_trace() {
        let text = "!tracelens\t1\n!stack\t0\ta!b\ne\tr\t1\t1\t0\t5\t0\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("outside"));
    }

    #[test]
    fn rejects_undeclared_stack() {
        let text = "!tracelens\t1\n!trace\t0\ne\tr\t1\t1\t0\t5\t9\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("undeclared"));
    }

    #[test]
    fn rejects_unwait_without_target() {
        let text = "!tracelens\t1\n!stack\t0\ta!b\n!trace\t0\ne\tu\t1\t1\t0\t0\t0\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("wtid"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# hello\n\n!tracelens\t1\n# more\n!trace\t0\n";
        let ds = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ds.streams.len(), 1);
        assert!(ds.streams[0].is_empty());
    }

    /// Fails every other `read` call with a transient kind, losing no
    /// bytes — exercises [`RetryingReader`] without the faults crate.
    struct EveryOther<R> {
        inner: R,
        calls: u64,
    }

    impl<R: io::Read> io::Read for EveryOther<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "flaky"));
            }
            self.inner.read(buf)
        }
    }

    #[test]
    fn retrying_reader_recovers_transient_faults() {
        let ds = tiny();
        let mut buf = Vec::new();
        ds.write_text(&mut buf).unwrap();
        let flaky = EveryOther {
            inner: buf.as_slice(),
            calls: 0,
        };
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let (back, retries) = Dataset::read_text_retrying(flaky, policy).unwrap();
        assert_eq!(back.instances, ds.instances);
        assert!(retries > 0, "every other read failed, so retries happened");
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        struct AlwaysFail;
        impl io::Read for AlwaysFail {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "down"))
            }
        }
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let e = Dataset::read_text_retrying(AlwaysFail, policy).unwrap_err();
        match e {
            ReadError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected io error, got {other}"),
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        };
        let schedule: Vec<u128> = (0..8).map(|a| policy.backoff(a).as_millis()).collect();
        assert_eq!(schedule, vec![1, 2, 4, 8, 16, 32, 64, 100]);
        // Saturates rather than overflowing at absurd attempt counts.
        assert_eq!(policy.backoff(200), Duration::from_millis(100));
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        struct Denied;
        impl io::Read for Denied {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
            }
        }
        let e = Dataset::read_text_retrying(Denied, RetryPolicy::default()).unwrap_err();
        match e {
            ReadError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::PermissionDenied),
            other => panic!("expected io error, got {other}"),
        }
    }

    #[test]
    fn mentions_component_prefilter() {
        let ds = tiny();
        assert!(mentions_component(&ds, &ComponentFilter::suffix(".sys")));
        assert!(!mentions_component(
            &ds,
            &ComponentFilter::names(["net.sys"])
        ));
    }
}
