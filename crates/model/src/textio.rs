//! A line-based text format for data sets (`.tlt`, *tracelens trace*).
//!
//! The format lets users bring traces from any source (an ETW or DTrace
//! export, a custom tracer) and lets simulated data sets be persisted and
//! reloaded. It is deliberately simple: UTF-8 lines, tab-separated
//! fields, one record per line.
//!
//! ```text
//! !tracelens  1                                  format version
//! !scenario   <name> <t_fast_ns> <t_slow_ns>     scenario definition
//! !stack      <id>   <frame>[TAB<frame>...]      callstack (outermost first)
//! !trace      <id>                               starts a trace stream
//! e  <kind> <tid> <pid> <t_ns> <cost_ns> <stack> [<wtid>]
//! !instance   <trace> <tid> <t0_ns> <t1_ns> <scenario>
//! ```
//!
//! Event kinds are `r` (running), `w` (wait), `u` (unwait, requires
//! `wtid`), `h` (hardware service). Stack ids must be declared before
//! use; stacks and scenarios are data-set-global. Blank lines and lines
//! starting with `#` are ignored.
//!
//! ## Ingestion paths
//!
//! All reading goes through one single-pass byte scanner
//! ([`LineParser`] internally): fields are tab-split as `&[u8]` slices,
//! integers parsed straight from ASCII, frames interned directly from
//! the slices — no per-line or per-event `Vec` is allocated. Three
//! entry points share it:
//!
//! * [`Dataset::read_text`] — streaming, over any [`BufRead`];
//! * [`Dataset::read_text_bytes`] — in-memory, the fast serial path;
//! * [`Dataset::plan_text_shards`] — splits in-memory input on `!trace`
//!   boundaries into [`Shard`]s that workers parse independently and
//!   [`ShardPlan::merge`] recombines **byte-identically** (via
//!   [`Dataset::write_text`]) to the serial parse. Inputs that
//!   interleave metadata between traces make [`ShardPlan::parse_shard`]
//!   return [`ShardError::NotCanonical`]; callers then fall back to the
//!   serial path, which handles every layout.

use crate::component::ComponentFilter;
use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::ids::{ProcessId, ThreadId};
use crate::intern::Symbol;
use crate::scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
use crate::stack::StackId;
use crate::stream::{TraceStream, TraceStreamBuilder};
use crate::time::TimeNs;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors produced while reading the text format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading data set: {e}"),
            ReadError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for ReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn err(line: usize, message: &str) -> ReadError {
    ReadError::Parse {
        line,
        message: message.to_owned(),
    }
}

impl Dataset {
    /// Writes the data set in the text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`. Returns
    /// [`io::ErrorKind::InvalidData`] if a frame or scenario name
    /// contains a tab or newline (unrepresentable).
    pub fn write_text<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "!tracelens\t{FORMAT_VERSION}")?;
        for s in &self.scenarios {
            check_text(s.name.as_str())?;
            writeln!(
                out,
                "!scenario\t{}\t{}\t{}",
                s.name.as_str(),
                s.thresholds.fast().as_nanos(),
                s.thresholds.slow().as_nanos()
            )?;
        }
        for id in 0..self.stacks.len() {
            let sid = StackId(id as u32);
            write!(out, "!stack\t{id}")?;
            for frame in self.stacks.resolve_frames(sid) {
                check_text(frame)?;
                write!(out, "\t{frame}")?;
            }
            writeln!(out)?;
        }
        for stream in &self.streams {
            writeln!(out, "!trace\t{}", stream.id().0)?;
            for e in stream.events() {
                let kind = match e.kind {
                    EventKind::Running => 'r',
                    EventKind::Wait => 'w',
                    EventKind::Unwait => 'u',
                    EventKind::HardwareService => 'h',
                };
                write!(
                    out,
                    "e\t{kind}\t{}\t{}\t{}\t{}\t{}",
                    e.tid.0,
                    e.pid.0,
                    e.t.as_nanos(),
                    e.cost.as_nanos(),
                    e.stack.0
                )?;
                match e.wtid {
                    Some(w) => writeln!(out, "\t{}", w.0)?,
                    None => writeln!(out)?,
                }
            }
        }
        for i in &self.instances {
            writeln!(
                out,
                "!instance\t{}\t{}\t{}\t{}\t{}",
                i.trace.0,
                i.tid.0,
                i.t0.as_nanos(),
                i.t1.as_nanos(),
                i.scenario.as_str()
            )?;
        }
        Ok(())
    }

    /// Reads a data set from the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::Parse`] with the offending line number for
    /// any malformed record, unknown stack id, or missing header.
    pub fn read_text<R: BufRead>(mut input: R) -> Result<Dataset, ReadError> {
        let mut parser = LineParser::default();
        let mut buf = Vec::with_capacity(256);
        let mut lineno = 0usize;
        loop {
            buf.clear();
            if input.read_until(b'\n', &mut buf)? == 0 {
                break;
            }
            lineno += 1;
            parser.line(&buf, lineno)?;
        }
        parser.finish()
    }

    /// Reads a data set from in-memory text.
    ///
    /// Semantically identical to [`Dataset::read_text`] over the same
    /// bytes, but with no per-line buffer copies — the scanner works on
    /// slices of `bytes` directly. This is the serial reference that
    /// sharded-parallel ingestion is checked against.
    ///
    /// # Errors
    ///
    /// Same as [`Dataset::read_text`].
    pub fn read_text_bytes(bytes: &[u8]) -> Result<Dataset, ReadError> {
        let mut parser = LineParser::default();
        for (idx, line) in bytes.split(|&b| b == b'\n').enumerate() {
            parser.line(line, idx + 1)?;
        }
        parser.finish()
    }

    /// Plans sharded-parallel ingestion of in-memory text: parses the
    /// preamble (header, scenarios, stacks — everything before the
    /// first `!trace`) serially and splits the rest on `!trace` line
    /// boundaries into independently parseable [`Shard`]s.
    ///
    /// Workers run [`ShardPlan::parse_shard`] over [`ShardPlan::shards`]
    /// in any order; [`ShardPlan::merge`] recombines the outputs *in
    /// shard order* into a data set byte-identical to the serial parse.
    ///
    /// # Errors
    ///
    /// Returns the serial parser's error for a malformed preamble.
    pub fn plan_text_shards(bytes: &[u8]) -> Result<ShardPlan<'_>, ReadError> {
        let mut parser = LineParser::default();
        let mut shard_starts: Vec<(usize, usize)> = Vec::new();
        let mut offset = 0usize;
        let mut lineno = 0usize;
        let mut in_preamble = true;
        while offset < bytes.len() {
            let end = bytes[offset..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| offset + i + 1)
                .unwrap_or(bytes.len());
            lineno += 1;
            let line = &bytes[offset..end];
            if tag_of(trim_line(line)) == b"!trace" {
                in_preamble = false;
                shard_starts.push((offset, lineno));
            } else if in_preamble {
                parser.line(line, lineno)?;
            }
            offset = end;
        }
        let mut shards = Vec::with_capacity(shard_starts.len());
        for (i, &(start, first_line)) in shard_starts.iter().enumerate() {
            let (end, next_trace_line) = match shard_starts.get(i + 1) {
                Some(&(next_start, next_line)) => (next_start, next_line),
                None => (bytes.len(), 0),
            };
            shards.push(Shard {
                bytes: &bytes[start..end],
                start,
                first_line,
                next_trace_line,
            });
        }
        let LineParser {
            ds,
            stack_ids,
            saw_header,
            ..
        } = parser;
        Ok(ShardPlan {
            base: ds,
            stack_ids,
            saw_header,
            shards,
        })
    }

    /// [`Dataset::read_text`] behind a [`RetryingReader`]: transient
    /// I/O errors (interrupted or timed-out reads, as NFS and flaky
    /// storage produce at fleet scale) are retried with the policy's
    /// bounded exponential backoff instead of aborting ingestion.
    ///
    /// Returns the data set together with the number of retried reads,
    /// which callers surface in `SanitizeReport::io_retries`.
    pub fn read_text_retrying<R: io::Read>(
        input: R,
        policy: RetryPolicy,
    ) -> Result<(Dataset, usize), ReadError> {
        let mut reader = io::BufReader::new(RetryingReader::new(input, policy));
        let ds = Dataset::read_text(&mut reader)?;
        Ok((ds, reader.into_inner().retries()))
    }
}

// ---------------------------------------------------------------------
// The byte scanner
// ---------------------------------------------------------------------

/// Maximum fields any fixed-arity record carries; extra fields beyond
/// this are counted (the exact-arity checks need the true count) but
/// never inspected. `!stack` lines have unbounded arity and are
/// dispatched separately.
const MAX_FIELDS: usize = 8;

/// Strips the trailing `\r`/`\n` bytes a line split leaves behind.
fn trim_line(mut line: &[u8]) -> &[u8] {
    while let [rest @ .., b'\r' | b'\n'] = line {
        line = rest;
    }
    line
}

/// The first tab-separated field of a (trimmed, non-empty) line.
fn tag_of(line: &[u8]) -> &[u8] {
    match line.iter().position(|&b| b == b'\t') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Tab-splits `line` into `store`, returning the true field count
/// (fields past [`MAX_FIELDS`] are counted, not stored).
fn split_fields<'a>(line: &'a [u8], store: &mut [&'a [u8]; MAX_FIELDS]) -> usize {
    let mut n = 0;
    for field in line.split(|&b| b == b'\t') {
        if n < MAX_FIELDS {
            store[n] = field;
        }
        n += 1;
    }
    n
}

/// Parses a decimal `u64` straight from ASCII bytes.
fn parse_u64(field: &[u8]) -> Option<u64> {
    if field.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &b in field {
        let digit = u64::from(b.wrapping_sub(b'0'));
        if digit > 9 {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(digit)?;
    }
    Some(value)
}

fn parse_u32(field: &[u8]) -> Option<u32> {
    parse_u64(field).and_then(|v| u32::try_from(v).ok())
}

/// Validates a text field (frame, scenario name) as UTF-8.
fn utf8(field: &[u8], lineno: usize) -> Result<&str, ReadError> {
    std::str::from_utf8(field).map_err(|_| err(lineno, "invalid utf-8 in text field"))
}

/// The per-line state machine shared by every text ingestion path.
#[derive(Debug, Default)]
struct LineParser {
    ds: Dataset,
    /// Maps declared stack ids to interned ids (they may differ if the
    /// file's ids are sparse).
    stack_ids: HashMap<u32, StackId>,
    current: Option<TraceStreamBuilder>,
    saw_header: bool,
    /// Reusable scratch for the frame symbols of a `!stack` line.
    frames: Vec<Symbol>,
}

impl LineParser {
    fn line(&mut self, raw: &[u8], lineno: usize) -> Result<(), ReadError> {
        let line = trim_line(raw);
        if line.is_empty() || line[0] == b'#' {
            return Ok(());
        }
        if tag_of(line) == b"!stack" {
            return self.stack_line(line, lineno);
        }
        let mut f: [&[u8]; MAX_FIELDS] = [b""; MAX_FIELDS];
        let n = split_fields(line, &mut f);
        match f[0] {
            b"!tracelens" => {
                let v = (n > 1)
                    .then(|| parse_u32(f[1]))
                    .flatten()
                    .ok_or_else(|| err(lineno, "missing format version"))?;
                if v != FORMAT_VERSION {
                    return Err(err(lineno, &format!("unsupported version {v}")));
                }
                self.saw_header = true;
            }
            b"!scenario" => {
                if n != 4 {
                    return Err(err(lineno, "!scenario needs name, t_fast, t_slow"));
                }
                let fast = parse_u64(f[2]).ok_or_else(|| err(lineno, "bad t_fast"))?;
                let slow = parse_u64(f[3]).ok_or_else(|| err(lineno, "bad t_slow"))?;
                if fast >= slow {
                    return Err(err(lineno, "t_fast must be below t_slow"));
                }
                self.ds.scenarios.push(Scenario::new(
                    ScenarioName::new(utf8(f[1], lineno)?),
                    Thresholds::new(TimeNs(fast), TimeNs(slow)),
                ));
            }
            b"!trace" => {
                if let Some(b) = self.current.take() {
                    self.ds.streams.push(
                        b.finish()
                            .map_err(|e| err(lineno, &format!("previous trace invalid: {e}")))?,
                    );
                }
                let id = (n > 1)
                    .then(|| parse_u32(f[1]))
                    .flatten()
                    .ok_or_else(|| err(lineno, "bad trace id"))?;
                self.current = Some(TraceStreamBuilder::new(id));
            }
            b"e" => {
                if !self.saw_header {
                    return Err(err(lineno, "missing !tracelens header"));
                }
                let Some(builder) = self.current.as_mut() else {
                    return Err(err(lineno, "event outside a !trace section"));
                };
                parse_event(&f, n, lineno, &self.stack_ids, builder)?;
            }
            b"!instance" => {
                self.ds.instances.push(parse_instance(&f, n, lineno)?);
            }
            other => {
                return Err(err(
                    lineno,
                    &format!("unknown record {:?}", String::from_utf8_lossy(other)),
                ))
            }
        }
        Ok(())
    }

    /// `!stack` lines carry one field per frame, so they stream their
    /// fields instead of going through the fixed-arity store.
    fn stack_line(&mut self, line: &[u8], lineno: usize) -> Result<(), ReadError> {
        let mut fields = line.split(|&b| b == b'\t');
        fields.next(); // the "!stack" tag
        let Some(id_field) = fields.next() else {
            return Err(err(lineno, "!stack needs an id"));
        };
        let raw = parse_u32(id_field).ok_or_else(|| err(lineno, "bad stack id"))?;
        self.frames.clear();
        for frame in fields {
            let frame = utf8(frame, lineno)?;
            self.frames.push(self.ds.stacks.intern_frame(frame));
        }
        let interned = self.ds.stacks.intern(&self.frames);
        self.stack_ids.insert(raw, interned);
        Ok(())
    }

    fn finish(mut self) -> Result<Dataset, ReadError> {
        if let Some(b) = self.current.take() {
            self.ds.streams.push(
                b.finish()
                    .map_err(|e| err(0, &format!("final trace invalid: {e}")))?,
            );
        }
        if !self.saw_header {
            return Err(err(0, "missing !tracelens header"));
        }
        let mut ds = self.ds;
        finish_streams(&mut ds)?;
        Ok(ds)
    }
}

/// End-of-input validation shared by the serial and sharded paths:
/// streams must sort into dense, position-matching ids.
fn finish_streams(ds: &mut Dataset) -> Result<(), ReadError> {
    ds.streams.sort_by_key(|s| s.id().0);
    for (i, s) in ds.streams.iter().enumerate() {
        if s.id().0 as usize != i {
            return Err(err(0, "trace ids must be dense, starting at 0"));
        }
    }
    Ok(())
}

/// Parses one `e` record into `builder` — shared by the serial parser
/// and the shard parser so both paths agree to the byte.
fn parse_event(
    f: &[&[u8]; MAX_FIELDS],
    n: usize,
    lineno: usize,
    stack_ids: &HashMap<u32, StackId>,
    builder: &mut TraceStreamBuilder,
) -> Result<(), ReadError> {
    if n < 7 {
        return Err(err(lineno, "event needs kind,tid,pid,t,cost,stack"));
    }
    let tid = ThreadId(parse_u32(f[2]).ok_or_else(|| err(lineno, "bad tid"))?);
    let pid = ProcessId(parse_u32(f[3]).ok_or_else(|| err(lineno, "bad pid"))?);
    let t = TimeNs(parse_u64(f[4]).ok_or_else(|| err(lineno, "bad t"))?);
    let cost = TimeNs(parse_u64(f[5]).ok_or_else(|| err(lineno, "bad cost"))?);
    let raw_stack = parse_u32(f[6]).ok_or_else(|| err(lineno, "bad stack id"))?;
    let stack = *stack_ids
        .get(&raw_stack)
        .ok_or_else(|| err(lineno, "undeclared stack id"))?;
    builder.set_process(pid);
    match f[1] {
        b"r" => builder.push_running(tid, t, cost, stack),
        b"w" => builder.push_wait(tid, t, cost, stack),
        b"h" => builder.push_hardware(tid, t, cost, stack),
        b"u" => {
            let w = (n > 7)
                .then(|| parse_u32(f[7]))
                .flatten()
                .ok_or_else(|| err(lineno, "unwait needs wtid"))?;
            builder.push_unwait(tid, ThreadId(w), t, stack)
        }
        other => {
            return Err(err(
                lineno,
                &format!("unknown event kind {:?}", String::from_utf8_lossy(other)),
            ))
        }
    };
    Ok(())
}

fn parse_instance(
    f: &[&[u8]; MAX_FIELDS],
    n: usize,
    lineno: usize,
) -> Result<ScenarioInstance, ReadError> {
    if n != 6 {
        return Err(err(lineno, "!instance needs trace,tid,t0,t1,scenario"));
    }
    let trace = parse_u32(f[1]).ok_or_else(|| err(lineno, "bad trace id"))?;
    let tid = parse_u32(f[2]).ok_or_else(|| err(lineno, "bad tid"))?;
    let t0 = parse_u64(f[3]).ok_or_else(|| err(lineno, "bad t0"))?;
    let t1 = parse_u64(f[4]).ok_or_else(|| err(lineno, "bad t1"))?;
    if t0 > t1 {
        return Err(err(lineno, "instance t0 after t1"));
    }
    Ok(ScenarioInstance {
        trace: crate::ids::TraceId(trace),
        scenario: ScenarioName::new(utf8(f[5], lineno)?),
        tid: ThreadId(tid),
        t0: TimeNs(t0),
        t1: TimeNs(t1),
    })
}

// ---------------------------------------------------------------------
// Sharded-parallel ingestion
// ---------------------------------------------------------------------

/// A deterministic plan for parsing one in-memory text data set on
/// multiple workers: the serially parsed preamble plus the `!trace`
/// sections as independent [`Shard`]s. See
/// [`Dataset::plan_text_shards`].
#[derive(Debug)]
pub struct ShardPlan<'a> {
    /// Preamble result: scenarios, stacks, and any instances recorded
    /// before the first trace.
    base: Dataset,
    stack_ids: HashMap<u32, StackId>,
    saw_header: bool,
    shards: Vec<Shard<'a>>,
}

/// One independently parseable slice of a [`ShardPlan`]: a single
/// `!trace` section together with the `!instance` records up to the
/// next one.
#[derive(Debug, Clone, Copy)]
pub struct Shard<'a> {
    bytes: &'a [u8],
    /// Absolute byte offset of the shard within the planned input.
    start: usize,
    /// 1-based line number of the shard's `!trace` line.
    first_line: usize,
    /// Line number of the *next* shard's `!trace` line, 0 for the last
    /// shard — stream-validation errors are attributed exactly as the
    /// serial parser attributes them.
    next_trace_line: usize,
}

impl Shard<'_> {
    /// The shard's byte length (for size-balancing diagnostics).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the shard holds no bytes (cannot happen for planned
    /// shards, which always start with a `!trace` line).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Absolute byte range `[start, end)` of this shard within the
    /// planned input — lets a transport layer re-read exactly this
    /// slice through its own (retrying) reader and hand the result to
    /// [`ShardPlan::parse_shard_bytes`].
    pub fn byte_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.bytes.len()
    }
}

/// Output of parsing one [`Shard`]: the sealed stream and the instances
/// recorded in the shard's slice, in input order.
#[derive(Debug)]
pub struct ShardOutput {
    stream: TraceStream,
    instances: Vec<ScenarioInstance>,
}

impl crate::heapsize::HeapSize for ShardOutput {
    fn heap_size(&self) -> usize {
        self.stream.heap_size() + self.instances.heap_size()
    }
}

impl crate::heapsize::HeapSize for ShardPlan<'_> {
    fn heap_size(&self) -> usize {
        // Shards are borrows into the caller's input buffer; only their
        // bookkeeping (the Vec itself) counts.
        self.base.heap_size()
            + self.stack_ids.heap_size()
            + self.shards.capacity() * std::mem::size_of::<Shard<'_>>()
    }
}

/// Why one shard could not be parsed.
#[derive(Debug)]
pub enum ShardError {
    /// The shard interleaves data-set-global metadata (`!tracelens`,
    /// `!scenario`, `!stack`) between traces — legal in the format but
    /// unshardable, since shards parse against a preamble snapshot.
    /// Callers fall back to the serial parser, which handles it.
    NotCanonical,
    /// A genuine parse error, identical to the serial parser's.
    Parse(ReadError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NotCanonical => {
                write!(f, "metadata interleaved between traces; parse serially")
            }
            ShardError::Parse(e) => e.fmt(f),
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::NotCanonical => None,
            ShardError::Parse(e) => Some(e),
        }
    }
}

impl<'a> ShardPlan<'a> {
    /// The planned shards, in input order.
    pub fn shards(&self) -> &[Shard<'a>] {
        &self.shards
    }

    /// Parses one shard. Pure and immutable over the plan, so shards
    /// can run on any worker in any order.
    ///
    /// # Errors
    ///
    /// [`ShardError::NotCanonical`] for metadata interleaved between
    /// traces (fall back to [`Dataset::read_text_bytes`]);
    /// [`ShardError::Parse`] for malformed records.
    pub fn parse_shard(&self, shard: &Shard<'a>) -> Result<ShardOutput, ShardError> {
        self.parse_shard_bytes(shard, shard.bytes)
    }

    /// Parses `bytes` as the content of `shard` — byte-for-byte the
    /// slice [`Shard::byte_range`] addresses, typically re-read from
    /// the source by a transport layer that routes per-shard reads
    /// through its own retry policy. Error line numbers are attributed
    /// exactly as [`ShardPlan::parse_shard`] attributes them.
    ///
    /// # Errors
    ///
    /// Same as [`ShardPlan::parse_shard`].
    pub fn parse_shard_bytes(
        &self,
        shard: &Shard<'_>,
        bytes: &[u8],
    ) -> Result<ShardOutput, ShardError> {
        let mut f: [&[u8]; MAX_FIELDS] = [b""; MAX_FIELDS];
        let mut builder: Option<TraceStreamBuilder> = None;
        let mut instances = Vec::new();
        for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
            let lineno = shard.first_line + idx;
            let line = trim_line(raw);
            if line.is_empty() || line[0] == b'#' {
                continue;
            }
            if tag_of(line) == b"!stack" {
                return Err(ShardError::NotCanonical);
            }
            let n = split_fields(line, &mut f);
            match f[0] {
                b"!trace" => {
                    if builder.is_some() {
                        // Unreachable: plans split on every `!trace`
                        // line. Kept as a fallback, not a panic.
                        return Err(ShardError::NotCanonical);
                    }
                    let id = (n > 1)
                        .then(|| parse_u32(f[1]))
                        .flatten()
                        .ok_or_else(|| ShardError::Parse(err(lineno, "bad trace id")))?;
                    builder = Some(TraceStreamBuilder::new(id));
                }
                b"e" => {
                    if !self.saw_header {
                        return Err(ShardError::Parse(err(lineno, "missing !tracelens header")));
                    }
                    let Some(b) = builder.as_mut() else {
                        return Err(ShardError::Parse(err(
                            lineno,
                            "event outside a !trace section",
                        )));
                    };
                    parse_event(&f, n, lineno, &self.stack_ids, b).map_err(ShardError::Parse)?;
                }
                b"!instance" => {
                    instances.push(parse_instance(&f, n, lineno).map_err(ShardError::Parse)?)
                }
                b"!tracelens" | b"!scenario" => return Err(ShardError::NotCanonical),
                other => {
                    return Err(ShardError::Parse(err(
                        lineno,
                        &format!("unknown record {:?}", String::from_utf8_lossy(other)),
                    )))
                }
            }
        }
        let Some(builder) = builder else {
            // Unreachable: every planned shard starts with `!trace`.
            return Err(ShardError::NotCanonical);
        };
        let stream = builder.finish().map_err(|e| {
            ShardError::Parse(if shard.next_trace_line == 0 {
                err(0, &format!("final trace invalid: {e}"))
            } else {
                err(
                    shard.next_trace_line,
                    &format!("previous trace invalid: {e}"),
                )
            })
        })?;
        Ok(ShardOutput { stream, instances })
    }

    /// Merges per-shard outputs — **in shard order** — into the final
    /// data set, applying the same end-of-input validation as the
    /// serial parser. The result is byte-identical (via
    /// [`Dataset::write_text`]) to [`Dataset::read_text_bytes`] over
    /// the same input.
    ///
    /// # Errors
    ///
    /// Same end-of-input errors as the serial parser: missing header,
    /// non-dense trace ids.
    pub fn merge(self, outputs: Vec<ShardOutput>) -> Result<Dataset, ReadError> {
        let mut ds = self.base;
        for out in outputs {
            ds.streams.push(out.stream);
            ds.instances.extend(out.instances);
        }
        if !self.saw_header {
            return Err(err(0, "missing !tracelens header"));
        }
        finish_streams(&mut ds)?;
        Ok(ds)
    }
}

/// Bounded-retry policy for transient ingestion I/O errors.
///
/// The backoff schedule is deterministic — attempt `k` (0-based) waits
/// `base_backoff * 2^k`, capped at `max_backoff` — so two runs over the
/// same flaky source retry identically; only the wall time varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per failing `read` call before the error propagates.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: std::time::Duration,
    /// Upper bound the exponential schedule saturates at.
    pub max_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    /// Three retries, 1 ms doubling to a 100 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (transient errors propagate).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The wait before retry number `attempt` (0-based):
    /// `base_backoff * 2^attempt`, saturating at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Whether an error kind counts as transient (worth retrying).
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        )
    }
}

/// A [`io::Read`] adapter retrying transient errors per [`RetryPolicy`].
///
/// A failed `read` consumes no bytes, so retrying the call resumes the
/// stream exactly where it left off; non-transient errors and exhausted
/// retries propagate unchanged.
#[derive(Debug)]
pub struct RetryingReader<R> {
    inner: R,
    policy: RetryPolicy,
    retries: usize,
}

impl<R> RetryingReader<R> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: R, policy: RetryPolicy) -> RetryingReader<R> {
        RetryingReader {
            inner,
            policy,
            retries: 0,
        }
    }

    /// Reads retried so far (each counts one transient error absorbed).
    pub fn retries(&self) -> usize {
        self.retries
    }
}

impl<R: io::Read> io::Read for RetryingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if RetryPolicy::is_transient(e.kind()) && attempt < self.policy.max_retries =>
                {
                    let pause = self.policy.backoff(attempt);
                    attempt += 1;
                    self.retries += 1;
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Rejects text that cannot be represented in the tab-separated format.
fn check_text(s: &str) -> io::Result<()> {
    if s.contains('\t') || s.contains('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("text contains tab/newline: {s:?}"),
        ));
    }
    Ok(())
}

/// Convenience: whether any stream in the data set references the given
/// components (a cheap pre-flight before a full analysis).
pub fn mentions_component(ds: &Dataset, filter: &ComponentFilter) -> bool {
    ds.streams.iter().any(|s| {
        s.events()
            .iter()
            .any(|e| ds.stacks.contains_component(e.stack, filter))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::time::Duration;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(100), TimeNs(200)),
        ));
        let st = ds.stacks.intern_symbols(&["app!Main", "fs.sys!Read"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), st);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, st);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), st);
        b.push_hardware(ThreadId(3), TimeNs(12), TimeNs(15), st);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: crate::ids::TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(40),
        });
        ds
    }

    fn round_trip(ds: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        ds.write_text(&mut buf).unwrap();
        Dataset::read_text(BufReader::new(buf.as_slice())).unwrap()
    }

    fn bytes_of(ds: &Dataset) -> Vec<u8> {
        let mut buf = Vec::new();
        ds.write_text(&mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trips_events_and_metadata() {
        let ds = tiny();
        let back = round_trip(&ds);
        assert_eq!(back.streams.len(), 1);
        assert_eq!(back.instances, ds.instances);
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.scenarios[0].name, ScenarioName::new("S"));
        let (a, b) = (&ds.streams[0], &back.streams[0]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.tid, y.tid);
            assert_eq!(x.pid, y.pid);
            assert_eq!(x.t, y.t);
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.wtid, y.wtid);
            assert_eq!(
                ds.stacks.resolve_frames(x.stack),
                back.stacks.resolve_frames(y.stack)
            );
        }
    }

    #[test]
    fn rejects_tab_in_frame() {
        let mut ds = Dataset::new();
        ds.stacks.intern_symbols(&["bad\tframe!X"]);
        let mut buf = Vec::new();
        let e = ds.write_text(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "!tracelens\t1\n!stack\tnotanumber\tframe\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        match e {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("stack id"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_missing_header() {
        let text = "!trace\t0\ne\tr\t1\t1\t0\t5\t0\n";
        assert!(Dataset::read_text(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_event_outside_trace() {
        let text = "!tracelens\t1\n!stack\t0\ta!b\ne\tr\t1\t1\t0\t5\t0\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("outside"));
    }

    #[test]
    fn rejects_undeclared_stack() {
        let text = "!tracelens\t1\n!trace\t0\ne\tr\t1\t1\t0\t5\t9\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("undeclared"));
    }

    #[test]
    fn rejects_unwait_without_target() {
        let text = "!tracelens\t1\n!stack\t0\ta!b\n!trace\t0\ne\tu\t1\t1\t0\t0\t0\n";
        let e = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("wtid"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# hello\n\n!tracelens\t1\n# more\n!trace\t0\n";
        let ds = Dataset::read_text(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ds.streams.len(), 1);
        assert!(ds.streams[0].is_empty());
    }

    #[test]
    fn read_text_bytes_matches_streaming_reader() {
        let text = bytes_of(&tiny());
        let a = Dataset::read_text(BufReader::new(text.as_slice())).unwrap();
        let b = Dataset::read_text_bytes(&text).unwrap();
        assert_eq!(bytes_of(&a), bytes_of(&b));
    }

    #[test]
    fn byte_scanner_rejects_non_numeric_fields() {
        for (line, what) in [
            ("e\tr\tx\t1\t0\t5\t0", "bad tid"),
            ("e\tr\t1\t1\t-3\t5\t0", "bad t"),
            ("e\tq\t1\t1\t0\t5\t0", "unknown event kind"),
            ("e\tr\t1\t1\t0\t5", "event needs"),
        ] {
            let text = format!("!tracelens\t1\n!stack\t0\ta!b\n!trace\t0\n{line}\n");
            let e = Dataset::read_text_bytes(text.as_bytes()).unwrap_err();
            assert!(e.to_string().contains(what), "{line}: {e}");
        }
    }

    #[test]
    fn numeric_overflow_is_a_parse_error() {
        let text = "!tracelens\t1\n!trace\t99999999999999999999\n";
        let e = Dataset::read_text_bytes(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad trace id"), "{e}");
    }

    #[test]
    fn crlf_lines_parse() {
        let text = "!tracelens\t1\r\n!trace\t0\r\n";
        let ds = Dataset::read_text_bytes(text.as_bytes()).unwrap();
        assert_eq!(ds.streams.len(), 1);
    }

    #[test]
    fn shard_plan_round_trips_byte_identically() {
        let mut ds = tiny();
        // A second stream so there is more than one shard.
        let st = ds.stacks.intern_symbols(&["net.sys!Recv"]);
        let mut b = TraceStreamBuilder::new(1);
        b.push_running(ThreadId(9), TimeNs(5), TimeNs(2), st);
        ds.streams.push(b.finish().unwrap());
        let text = bytes_of(&ds);

        let plan = Dataset::plan_text_shards(&text).unwrap();
        assert_eq!(plan.shards().len(), 2);
        let outputs: Vec<ShardOutput> = plan
            .shards()
            .iter()
            .map(|s| plan.parse_shard(s).unwrap())
            .collect();
        let merged = plan.merge(outputs).unwrap();
        assert_eq!(bytes_of(&merged), text);
        assert_eq!(
            bytes_of(&merged),
            bytes_of(&Dataset::read_text_bytes(&text).unwrap())
        );
    }

    #[test]
    fn interleaved_metadata_is_not_canonical() {
        // A !stack declared between two traces: legal serially, but the
        // shard holding it must refuse rather than mis-parse.
        let text = "!tracelens\t1\n!trace\t0\n!stack\t0\ta!b\n!trace\t1\n";
        let plan = Dataset::plan_text_shards(text.as_bytes()).unwrap();
        assert_eq!(plan.shards().len(), 2);
        let first = plan.parse_shard(&plan.shards()[0]);
        assert!(matches!(first, Err(ShardError::NotCanonical)), "{first:?}");
        // The serial path handles the same input fine.
        assert_eq!(
            Dataset::read_text_bytes(text.as_bytes())
                .unwrap()
                .stacks
                .len(),
            1
        );
    }

    #[test]
    fn shard_errors_carry_serial_line_numbers() {
        // Line 4 holds a bad event; the shard parser must attribute it
        // exactly as the serial parser does.
        let text = "!tracelens\t1\n!stack\t0\ta!b\n!trace\t0\ne\tr\tbad\t1\t0\t5\t0\n";
        let serial = Dataset::read_text_bytes(text.as_bytes()).unwrap_err();
        let plan = Dataset::plan_text_shards(text.as_bytes()).unwrap();
        let sharded = plan.parse_shard(&plan.shards()[0]).unwrap_err();
        match (serial, sharded) {
            (
                ReadError::Parse { line, message },
                ShardError::Parse(ReadError::Parse {
                    line: l2,
                    message: m2,
                }),
            ) => {
                assert_eq!((line, message.as_str()), (l2, m2.as_str()));
                assert_eq!(l2, 4);
            }
            other => panic!("expected matching parse errors, got {other:?}"),
        }
    }

    #[test]
    fn preamble_instances_merge_before_shard_instances() {
        // An instance before the first trace must stay first after the
        // sharded merge, matching serial file order.
        let text = "!tracelens\t1\n!scenario\tS\t1\t2\n\
                    !instance\t0\t1\t0\t0\tS\n!trace\t0\n!instance\t0\t2\t0\t0\tS\n";
        let serial = Dataset::read_text_bytes(text.as_bytes()).unwrap();
        let plan = Dataset::plan_text_shards(text.as_bytes()).unwrap();
        let outputs: Vec<ShardOutput> = plan
            .shards()
            .iter()
            .map(|s| plan.parse_shard(s).unwrap())
            .collect();
        let merged = plan.merge(outputs).unwrap();
        assert_eq!(bytes_of(&merged), bytes_of(&serial));
        assert_eq!(merged.instances[0].tid, ThreadId(1));
    }

    /// Fails every other `read` call with a transient kind, losing no
    /// bytes — exercises [`RetryingReader`] without the faults crate.
    struct EveryOther<R> {
        inner: R,
        calls: u64,
    }

    impl<R: io::Read> io::Read for EveryOther<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "flaky"));
            }
            self.inner.read(buf)
        }
    }

    #[test]
    fn retrying_reader_recovers_transient_faults() {
        let ds = tiny();
        let mut buf = Vec::new();
        ds.write_text(&mut buf).unwrap();
        let flaky = EveryOther {
            inner: buf.as_slice(),
            calls: 0,
        };
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let (back, retries) = Dataset::read_text_retrying(flaky, policy).unwrap();
        assert_eq!(back.instances, ds.instances);
        assert!(retries > 0, "every other read failed, so retries happened");
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        struct AlwaysFail;
        impl io::Read for AlwaysFail {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "down"))
            }
        }
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let e = Dataset::read_text_retrying(AlwaysFail, policy).unwrap_err();
        match e {
            ReadError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected io error, got {other}"),
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        };
        let schedule: Vec<u128> = (0..8).map(|a| policy.backoff(a).as_millis()).collect();
        assert_eq!(schedule, vec![1, 2, 4, 8, 16, 32, 64, 100]);
        // Saturates rather than overflowing at absurd attempt counts.
        assert_eq!(policy.backoff(200), Duration::from_millis(100));
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        struct Denied;
        impl io::Read for Denied {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
            }
        }
        let e = Dataset::read_text_retrying(Denied, RetryPolicy::default()).unwrap_err();
        match e {
            ReadError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::PermissionDenied),
            other => panic!("expected io error, got {other}"),
        }
    }

    #[test]
    fn mentions_component_prefilter() {
        let ds = tiny();
        assert!(mentions_component(&ds, &ComponentFilter::suffix(".sys")));
        assert!(!mentions_component(
            &ds,
            &ComponentFilter::names(["net.sys"])
        ));
    }
}
