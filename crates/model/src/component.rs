//! Component selection and driver taxonomy.
//!
//! The impact analysis takes "the component name(s) used to filter tracing
//! events" (paper §3); the device-driver study instantiates it with the
//! wildcard pattern `*.sys` matched against all function signatures
//! (§5.1). [`ComponentFilter`] implements that matching. [`DriverType`]
//! is the ten-way driver taxonomy of Table 4.

use std::fmt;
use std::sync::Arc;

/// A predicate over component (module) names.
///
/// Supports the simple glob syntax the paper uses: `*` matches any run of
/// characters. Filters can also be an explicit name list or match-all.
///
/// The pattern/name storage is `Arc`-backed so a filter clone is a
/// reference-count bump — filters fan out to one analyzer per scenario
/// and per worker thread.
///
/// ```
/// use tracelens_model::ComponentFilter;
/// let drivers = ComponentFilter::glob("*.sys");
/// assert!(drivers.matches("fs.sys"));
/// assert!(!drivers.matches("browser.exe"));
/// let two = ComponentFilter::names(["fs.sys", "se.sys"]);
/// assert!(two.matches("se.sys"));
/// assert!(!two.matches("fv.sys"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentFilter {
    /// Matches every component.
    Any,
    /// Matches a glob pattern (`*` wildcard only).
    Glob(Arc<str>),
    /// Matches any of an explicit list of component names.
    Names(Arc<[String]>),
}

impl ComponentFilter {
    /// A filter matching all modules whose name matches the glob `pattern`.
    pub fn glob(pattern: &str) -> Self {
        ComponentFilter::Glob(Arc::from(pattern))
    }

    /// A filter matching modules ending with `suffix` — shorthand for
    /// `glob("*<suffix>")`; `ComponentFilter::suffix(".sys")` selects all
    /// device drivers.
    pub fn suffix(suffix: &str) -> Self {
        ComponentFilter::Glob(Arc::from(format!("*{suffix}").as_str()))
    }

    /// A filter matching exactly the given component names.
    pub fn names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ComponentFilter::Names(names.into_iter().map(Into::into).collect())
    }

    /// Whether `module` is selected by this filter.
    pub fn matches(&self, module: &str) -> bool {
        match self {
            ComponentFilter::Any => true,
            ComponentFilter::Glob(p) => glob_match(p, module),
            ComponentFilter::Names(ns) => ns.iter().any(|n| n == module),
        }
    }
}

impl fmt::Display for ComponentFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentFilter::Any => f.write_str("*"),
            ComponentFilter::Glob(p) => f.write_str(p),
            ComponentFilter::Names(ns) => f.write_str(&ns.join(",")),
        }
    }
}

/// Iterative glob matcher supporting `*` (any run of characters).
///
/// Classic two-pointer algorithm with backtracking over the most recent
/// star; linear in practice for the short module names we match.
fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the star absorb one more character.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == '*')
}

/// The ten driver categories of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DriverType {
    /// File-system and general storage drivers (e.g. `fs.sys`).
    FileSystemGeneralStorage,
    /// File-system filter drivers (virtualization, anti-virus filters).
    FileSystemFilter,
    /// Network stack drivers.
    Network,
    /// Storage (full-disk) encryption drivers.
    StorageEncryption,
    /// Motion-triggered disk-protection drivers.
    DiskProtection,
    /// Graphics/GPU drivers.
    Graphics,
    /// Storage backup / shadow-copy drivers.
    StorageBackup,
    /// I/O caching drivers.
    IoCache,
    /// Mouse / input drivers.
    Mouse,
    /// ACPI / power-management drivers.
    Acpi,
}

impl DriverType {
    /// All categories, in Table 4 column order.
    pub const ALL: [DriverType; 10] = [
        DriverType::FileSystemGeneralStorage,
        DriverType::FileSystemFilter,
        DriverType::Network,
        DriverType::StorageEncryption,
        DriverType::DiskProtection,
        DriverType::Graphics,
        DriverType::StorageBackup,
        DriverType::IoCache,
        DriverType::Mouse,
        DriverType::Acpi,
    ];

    /// Short header label as printed in Table 4.
    pub fn label(self) -> &'static str {
        match self {
            DriverType::FileSystemGeneralStorage => "FileSystem,GeneralStorage",
            DriverType::FileSystemFilter => "FileSystemFilter",
            DriverType::Network => "Network",
            DriverType::StorageEncryption => "StorageEncryption",
            DriverType::DiskProtection => "DiskProtection",
            DriverType::Graphics => "Graphics",
            DriverType::StorageBackup => "StorageBackup",
            DriverType::IoCache => "IOCache",
            DriverType::Mouse => "Mouse",
            DriverType::Acpi => "ACPI",
        }
    }

    /// The known simulator module names of this category (the inverse of
    /// [`DriverType::classify`]); useful for scoping an impact analysis
    /// to one driver type via [`ComponentFilter::names`].
    pub fn known_modules(self) -> &'static [&'static str] {
        match self {
            DriverType::FileSystemGeneralStorage => &["fs.sys", "stor.sys"],
            DriverType::FileSystemFilter => &["fv.sys", "av.sys", "flt.sys"],
            DriverType::Network => &["net.sys", "tcpip.sys", "wifi.sys"],
            DriverType::StorageEncryption => &["se.sys"],
            DriverType::DiskProtection => &["dp.sys"],
            DriverType::Graphics => &["graphics.sys", "gpu.sys"],
            DriverType::StorageBackup => &["bk.sys"],
            DriverType::IoCache => &["iocache.sys"],
            DriverType::Mouse => &["mouse.sys"],
            DriverType::Acpi => &["acpi.sys"],
        }
    }

    /// Classifies a driver *module name* into its category using the naming
    /// convention of the tracelens simulator (`fs.sys`, `fv.sys`,
    /// `av.sys`, `net.sys`, `se.sys`, `dp.sys`, `graphics.sys`, `bk.sys`,
    /// `iocache.sys`, `mouse.sys`, `acpi.sys`). Returns `None` for
    /// non-driver modules.
    pub fn classify(module: &str) -> Option<DriverType> {
        let ty = match module {
            "fs.sys" | "stor.sys" => DriverType::FileSystemGeneralStorage,
            "fv.sys" | "av.sys" | "flt.sys" => DriverType::FileSystemFilter,
            "net.sys" | "tcpip.sys" | "wifi.sys" => DriverType::Network,
            "se.sys" => DriverType::StorageEncryption,
            "dp.sys" => DriverType::DiskProtection,
            "graphics.sys" | "gpu.sys" => DriverType::Graphics,
            "bk.sys" => DriverType::StorageBackup,
            "iocache.sys" => DriverType::IoCache,
            "mouse.sys" => DriverType::Mouse,
            "acpi.sys" => DriverType::Acpi,
            _ => return None,
        };
        Some(ty)
    }
}

impl fmt::Display for DriverType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_star_suffix() {
        let f = ComponentFilter::glob("*.sys");
        assert!(f.matches("fs.sys"));
        assert!(f.matches("a.b.sys"));
        assert!(!f.matches("fs.sysx"));
        assert!(!f.matches("browser.exe"));
    }

    #[test]
    fn glob_star_positions() {
        assert!(glob_match("fs*", "fs.sys"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("f*s", "fs"));
        assert!(glob_match("f*s", "fooos"));
        assert!(!glob_match("f*s", "fsx"));
        assert!(glob_match("a*b*c", "a-xx-b-yy-c"));
        assert!(!glob_match("a*b*c", "acb"));
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn suffix_constructor() {
        let f = ComponentFilter::suffix(".sys");
        assert!(f.matches("se.sys"));
        assert!(!f.matches("kernel"));
        assert_eq!(f.to_string(), "*.sys");
    }

    #[test]
    fn names_filter() {
        let f = ComponentFilter::names(["fs.sys", "fv.sys"]);
        assert!(f.matches("fs.sys"));
        assert!(!f.matches("se.sys"));
        assert_eq!(f.to_string(), "fs.sys,fv.sys");
    }

    #[test]
    fn any_matches_everything() {
        assert!(ComponentFilter::Any.matches("whatever"));
        assert_eq!(ComponentFilter::Any.to_string(), "*");
    }

    #[test]
    fn driver_classification() {
        assert_eq!(
            DriverType::classify("fs.sys"),
            Some(DriverType::FileSystemGeneralStorage)
        );
        assert_eq!(
            DriverType::classify("av.sys"),
            Some(DriverType::FileSystemFilter)
        );
        assert_eq!(DriverType::classify("net.sys"), Some(DriverType::Network));
        assert_eq!(DriverType::classify("kernel"), None);
        assert_eq!(DriverType::ALL.len(), 10);
    }

    #[test]
    fn known_modules_round_trip_through_classify() {
        for ty in DriverType::ALL {
            for m in ty.known_modules() {
                assert_eq!(DriverType::classify(m), Some(ty), "module {m}");
            }
        }
    }

    #[test]
    fn driver_labels_nonempty_and_distinct() {
        let labels: std::collections::HashSet<_> =
            DriverType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 10);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
