//! Corruption-tolerant ingestion: repair-or-quarantine for data sets.
//!
//! Real-world traces arrive truncated, clock-skewed, and with dropped or
//! duplicated events; [`Dataset::validate`] only *reports* the damage.
//! [`Dataset::sanitize`] goes further and produces a data set every
//! analysis can safely consume, by applying two rules:
//!
//! * **repair** what has an unambiguous fix — re-sort skewed streams,
//!   drop events referencing unknown stacks, strip stray unwait
//!   targeting, clamp negative instance spans, renumber sparse trace
//!   ids;
//! * **quarantine** what does not — instances referencing missing
//!   traces or undefined scenarios, and duplicate trace streams — so
//!   the rest of the data set stays analyzable.
//!
//! The returned [`SanitizeReport`] quantifies both, in the same
//! violation taxonomy as [`Dataset::validate`], and exposes the
//! *coverage* fractions the study layer reports (how much of the input
//! survived into the analysis). Two guarantees the test suite enforces:
//!
//! 1. the sanitized data set always passes [`Dataset::validate`];
//! 2. sanitizing an already-valid data set is an exact no-op (the
//!    output serializes byte-identically to the input).

use crate::dataset::Dataset;
use crate::event::{Event, EventKind};
use crate::ids::TraceId;
use crate::stream::TraceStream;
use std::collections::BTreeMap;
use std::fmt;

/// Violation-kind label for a duplicated trace id (sanitize-only:
/// `validate` reports the same situation as `stream_id_mismatch`).
pub const DUPLICATE_TRACE_ID: &str = "duplicate_trace_id";

/// What [`Dataset::sanitize`] found and did.
///
/// `violations` counts every problem discovered, keyed by the
/// [`crate::Violation::kind`] taxonomy (plus [`DUPLICATE_TRACE_ID`]);
/// the remaining fields split the handling into repairs and
/// quarantines. The `input_*` fields snapshot the pre-sanitize sizes so
/// coverage is computable from the report alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Problems found, counted per violation kind.
    pub violations: BTreeMap<&'static str, usize>,
    /// Streams whose events had to be re-sorted by timestamp.
    pub resorted_streams: usize,
    /// Streams renumbered to restore dense, position-matching ids.
    pub remapped_traces: usize,
    /// Events dropped: unknown stack ids, or unwaits with missing /
    /// self-targeting woken-thread ids.
    pub dropped_events: usize,
    /// Non-unwait events whose stray woken-thread id was stripped.
    pub stripped_targets: usize,
    /// Instances whose negative span was clamped to empty (`t1 = t0`).
    pub clamped_instances: usize,
    /// Whole trace streams quarantined (duplicate trace ids).
    pub quarantined_traces: usize,
    /// Instances quarantined (missing trace or undefined scenario).
    pub quarantined_instances: usize,
    /// Events lost: dropped individually or gone with a quarantined
    /// stream.
    pub lost_events: usize,
    /// Trace-stream count of the input.
    pub input_traces: usize,
    /// Instance count of the input.
    pub input_instances: usize,
    /// Event count of the input.
    pub input_events: usize,
    /// Transient I/O errors absorbed by retrying reads while ingesting
    /// the input (zero when the data set came from memory). Retries are
    /// about the *transport*, not the data, so they do not affect
    /// [`SanitizeReport::is_clean`].
    pub io_retries: usize,
    /// Binary-cache (`.tlb`) loads abandoned in favor of the text parse
    /// (missing, stale, or corrupt cache). Like [`Self::io_retries`]
    /// this is about the transport — the data set that results is the
    /// same — so it does not affect [`SanitizeReport::is_clean`].
    pub cache_fallbacks: usize,
}

impl SanitizeReport {
    /// Total number of repair actions taken (re-sorts, renumberings,
    /// drops, strips, clamps) — the `sanitize.repaired` counter.
    pub fn repaired(&self) -> usize {
        self.resorted_streams
            + self.remapped_traces
            + self.dropped_events
            + self.stripped_targets
            + self.clamped_instances
    }

    /// Whether the input was already fully valid (nothing repaired or
    /// quarantined; sanitize was a no-op).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.repaired() == 0 && self.quarantined() == 0
    }

    /// Total quarantined items (traces + instances).
    pub fn quarantined(&self) -> usize {
        self.quarantined_traces + self.quarantined_instances
    }

    /// Fraction of input instances that survived into the sanitized
    /// data set; 1.0 for an empty input.
    pub fn instance_coverage(&self) -> f64 {
        coverage(self.input_instances, self.quarantined_instances)
    }

    /// Fraction of input trace streams that survived; 1.0 for an empty
    /// input.
    pub fn trace_coverage(&self) -> f64 {
        coverage(self.input_traces, self.quarantined_traces)
    }

    /// Fraction of input events that survived (events of quarantined
    /// streams count as lost); 1.0 for an empty input.
    pub fn event_coverage(&self) -> f64 {
        coverage(self.input_events, self.lost_events)
    }
}

/// `kept / total` with the empty input counting as full coverage.
fn coverage(total: usize, lost: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        (total - lost.min(total)) as f64 / total as f64
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "sanitize: clean ({} traces / {} instances / {} events)",
                self.input_traces, self.input_instances, self.input_events
            )?;
            if self.io_retries > 0 {
                write!(f, " after {} transient i/o retr(ies)", self.io_retries)?;
            }
            if self.cache_fallbacks > 0 {
                write!(
                    f,
                    " after {} binary-cache fallback(s)",
                    self.cache_fallbacks
                )?;
            }
            return Ok(());
        }
        writeln!(
            f,
            "sanitize: {} repaired, {} trace(s) / {} instance(s) quarantined \
             (coverage: {:.1}% traces, {:.1}% instances, {:.1}% events)",
            self.repaired(),
            self.quarantined_traces,
            self.quarantined_instances,
            self.trace_coverage() * 100.0,
            self.instance_coverage() * 100.0,
            self.event_coverage() * 100.0,
        )?;
        for (kind, n) in &self.violations {
            writeln!(f, "  {kind}: {n}")?;
        }
        if self.io_retries > 0 {
            writeln!(f, "  transient i/o retries: {}", self.io_retries)?;
        }
        if self.cache_fallbacks > 0 {
            writeln!(f, "  binary-cache fallbacks: {}", self.cache_fallbacks)?;
        }
        Ok(())
    }
}

impl Dataset {
    /// Repairs what is repairable, quarantines what is not, and returns
    /// the cleaned data set together with a full accounting.
    ///
    /// The output is guaranteed to pass [`Dataset::validate`]; a valid
    /// input comes back unchanged (and serializes byte-identically).
    /// See the [module docs](self) for the repair / quarantine rules.
    pub fn sanitize(&self) -> (Dataset, SanitizeReport) {
        let mut report = SanitizeReport {
            input_traces: self.streams.len(),
            input_instances: self.instances.len(),
            input_events: self.total_events(),
            ..SanitizeReport::default()
        };

        // --- Streams: restore dense position-matching ids. -----------
        // Keep the first stream per raw id (later duplicates are
        // quarantined) and renumber the survivors densely in raw-id
        // order; instances are remapped through `id_map` below.
        for (position, stream) in self.streams.iter().enumerate() {
            if stream.id().0 as usize != position {
                *report.violations.entry("stream_id_mismatch").or_insert(0) += 1;
            }
        }
        let mut by_raw_id: BTreeMap<u32, &TraceStream> = BTreeMap::new();
        for stream in &self.streams {
            if by_raw_id.insert(stream.id().0, stream).is_some() {
                // Later duplicate wins the map slot; restore the first
                // and quarantine this one.
                *report.violations.entry(DUPLICATE_TRACE_ID).or_insert(0) += 1;
                report.quarantined_traces += 1;
                report.lost_events += stream.len();
            }
        }
        // Re-walk so the *first* occurrence of each id is the survivor.
        by_raw_id.clear();
        for stream in &self.streams {
            by_raw_id.entry(stream.id().0).or_insert(stream);
        }

        let mut id_map: BTreeMap<u32, TraceId> = BTreeMap::new();
        let mut streams = Vec::with_capacity(by_raw_id.len());
        for (dense, (&raw, stream)) in by_raw_id.iter().enumerate() {
            let new_id = TraceId(dense as u32);
            if raw as usize != dense {
                report.remapped_traces += 1;
            }
            id_map.insert(raw, new_id);
            streams.push(sanitize_stream(stream, new_id, &mut report, self));
        }

        // --- Instances: remap, clamp, or quarantine. ------------------
        let mut instances = Vec::with_capacity(self.instances.len());
        for instance in &self.instances {
            let Some(&trace) = id_map.get(&instance.trace.0) else {
                *report
                    .violations
                    .entry("instance_without_stream")
                    .or_insert(0) += 1;
                report.quarantined_instances += 1;
                continue;
            };
            if self.scenario(&instance.scenario).is_none() {
                *report
                    .violations
                    .entry("instance_unknown_scenario")
                    .or_insert(0) += 1;
                report.quarantined_instances += 1;
                continue;
            }
            let mut instance = instance.clone();
            instance.trace = trace;
            if instance.t1 < instance.t0 {
                *report
                    .violations
                    .entry("instance_negative_span")
                    .or_insert(0) += 1;
                report.clamped_instances += 1;
                instance.t1 = instance.t0;
            }
            instances.push(instance);
        }

        let clean = Dataset {
            streams,
            instances,
            stacks: self.stacks.clone(),
            scenarios: self.scenarios.clone(),
        };
        debug_assert!(clean.validate().is_ok(), "sanitize output must validate");
        (clean, report)
    }
}

/// Repairs one stream: drops events with dangling stacks or malformed
/// unwait targeting, strips stray targets, and re-sorts if needed.
fn sanitize_stream(
    stream: &TraceStream,
    new_id: TraceId,
    report: &mut SanitizeReport,
    ds: &Dataset,
) -> TraceStream {
    let mut events: Vec<Event> = Vec::with_capacity(stream.len());
    for e in stream.events() {
        let mut e = *e;
        let dangling_stack =
            ds.stacks.frames(e.stack).is_empty() && ds.stacks.len() <= e.stack.0 as usize;
        if dangling_stack {
            *report.violations.entry("unknown_stack").or_insert(0) += 1;
            report.dropped_events += 1;
            report.lost_events += 1;
            continue;
        }
        match e.kind {
            EventKind::Unwait => {
                if e.wtid.is_none() || e.wtid == Some(e.tid) {
                    *report.violations.entry("malformed_unwait").or_insert(0) += 1;
                    report.dropped_events += 1;
                    report.lost_events += 1;
                    continue;
                }
            }
            _ => {
                if e.wtid.is_some() {
                    *report.violations.entry("malformed_unwait").or_insert(0) += 1;
                    report.stripped_targets += 1;
                    e.wtid = None;
                }
            }
        }
        events.push(e);
    }
    if events.windows(2).any(|w| w[1].t < w[0].t) {
        *report.violations.entry("unsorted_events").or_insert(0) += 1;
        report.resorted_streams += 1;
        // Stable, matching TraceStreamBuilder::finish: simultaneous
        // events keep their relative order.
        events.sort_by_key(|e| e.t);
    }
    TraceStream::from_unchecked_parts(new_id, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ThreadId;
    use crate::scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
    use crate::stack::StackId;
    use crate::stream::TraceStreamBuilder;
    use crate::time::TimeNs;

    fn valid() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(10), TimeNs(20)),
        ));
        let st = ds.stacks.intern_symbols(&["app!Main", "fv.sys!Query"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(5), st);
        b.push_wait(ThreadId(1), TimeNs(5), TimeNs::ZERO, st);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(9), st);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(9),
        });
        ds
    }

    fn bytes(ds: &Dataset) -> Vec<u8> {
        let mut out = Vec::new();
        ds.write_text(&mut out).unwrap();
        out
    }

    #[test]
    fn clean_input_is_byte_identical_noop() {
        let ds = valid();
        let (clean, report) = ds.sanitize();
        assert!(report.is_clean(), "report: {report:?}");
        assert_eq!(report.repaired(), 0);
        assert_eq!(bytes(&ds), bytes(&clean));
        assert_eq!(report.instance_coverage(), 1.0);
        assert_eq!(report.event_coverage(), 1.0);
    }

    #[test]
    fn unsorted_stream_is_resorted() {
        let mut ds = valid();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events.swap(0, 2);
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        assert!(ds.validate().is_err());
        let (clean, report) = ds.sanitize();
        assert_eq!(report.resorted_streams, 1);
        assert_eq!(report.violations["unsorted_events"], 1);
        assert!(clean.validate().is_ok());
        assert_eq!(clean.total_events(), ds.total_events());
    }

    #[test]
    fn dangling_stack_events_are_dropped() {
        let mut ds = valid();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events[1].stack = StackId(999);
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        let (clean, report) = ds.sanitize();
        assert_eq!(report.dropped_events, 1);
        assert_eq!(report.violations["unknown_stack"], 1);
        assert_eq!(clean.total_events(), 2);
        assert!(clean.validate().is_ok());
        assert!(report.event_coverage() < 1.0);
    }

    #[test]
    fn malformed_unwaits_are_dropped_and_targets_stripped() {
        let mut ds = valid();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events[0].wtid = Some(ThreadId(7)); // running event with target
        events[2].wtid = None; // unwait without target
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        let (clean, report) = ds.sanitize();
        assert_eq!(report.stripped_targets, 1);
        assert_eq!(report.dropped_events, 1);
        assert_eq!(report.violations["malformed_unwait"], 2);
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn self_unwait_is_dropped() {
        let mut ds = valid();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events[2].wtid = Some(events[2].tid);
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        let (clean, report) = ds.sanitize();
        assert_eq!(report.dropped_events, 1);
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn dangling_instance_is_quarantined() {
        let mut ds = valid();
        ds.instances.push(ScenarioInstance {
            trace: TraceId(42),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(5),
        });
        let (clean, report) = ds.sanitize();
        assert_eq!(report.quarantined_instances, 1);
        assert_eq!(report.violations["instance_without_stream"], 1);
        assert_eq!(clean.instances.len(), 1);
        assert!(report.instance_coverage() < 1.0);
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn unknown_scenario_instance_is_quarantined() {
        let mut ds = valid();
        ds.instances[0].scenario = ScenarioName::new("Nope");
        let (clean, report) = ds.sanitize();
        assert_eq!(report.quarantined_instances, 1);
        assert!(clean.instances.is_empty());
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn negative_span_is_clamped() {
        let mut ds = valid();
        ds.instances[0].t0 = TimeNs(9);
        ds.instances[0].t1 = TimeNs(3);
        let (clean, report) = ds.sanitize();
        assert_eq!(report.clamped_instances, 1);
        assert_eq!(clean.instances[0].t0, TimeNs(9));
        assert_eq!(clean.instances[0].t1, TimeNs(9));
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn sparse_trace_ids_are_renumbered_and_remapped() {
        let mut ds = valid();
        // Rebuild the single stream under raw id 5; its instance follows.
        let events = ds.streams[0].events().to_vec();
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(5), events);
        ds.instances[0].trace = TraceId(5);
        assert!(ds.validate().is_err());
        let (clean, report) = ds.sanitize();
        assert_eq!(report.remapped_traces, 1);
        assert_eq!(clean.streams[0].id(), TraceId(0));
        assert_eq!(clean.instances[0].trace, TraceId(0));
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn duplicate_trace_id_quarantines_the_later_stream() {
        let mut ds = valid();
        let mut b = TraceStreamBuilder::new(0); // same id as streams[0]
        let st = ds.stacks.intern_symbols(&["dup!X"]);
        b.push_running(ThreadId(3), TimeNs(0), TimeNs(1), st);
        ds.streams.push(b.finish().unwrap());
        let (clean, report) = ds.sanitize();
        assert_eq!(report.quarantined_traces, 1);
        assert_eq!(report.violations[DUPLICATE_TRACE_ID], 1);
        assert_eq!(clean.streams.len(), 1);
        // The first occurrence survives.
        assert_eq!(clean.streams[0].len(), 3);
        assert!(report.trace_coverage() < 1.0);
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut ds = valid();
        let mut events: Vec<Event> = ds.streams[0].events().to_vec();
        events.swap(0, 2);
        events[1].stack = StackId(999);
        ds.streams[0] = TraceStream::from_unchecked_parts(TraceId(0), events);
        ds.instances[0].trace = TraceId(9);
        let (clean, first) = ds.sanitize();
        assert!(!first.is_clean());
        let (again, second) = clean.sanitize();
        assert!(second.is_clean(), "second pass: {second:?}");
        assert_eq!(bytes(&clean), bytes(&again));
    }

    #[test]
    fn io_retries_show_without_dirtying_the_report() {
        let ds = valid();
        let (_, mut report) = ds.sanitize();
        report.io_retries = 3;
        assert!(report.is_clean(), "retries are transport, not data");
        assert!(report.to_string().contains("3 transient i/o retr(ies)"));
    }

    #[test]
    fn cache_fallbacks_show_without_dirtying_the_report() {
        let ds = valid();
        let (_, mut report) = ds.sanitize();
        report.cache_fallbacks = 1;
        assert!(report.is_clean(), "fallbacks are transport, not data");
        assert!(report.to_string().contains("1 binary-cache fallback(s)"));
    }

    #[test]
    fn report_display_lists_kind_counts() {
        let mut ds = valid();
        ds.instances[0].trace = TraceId(9);
        let (_, report) = ds.sanitize();
        let text = report.to_string();
        assert!(text.contains("instance_without_stream: 1"), "{text}");
        assert!(text.contains("quarantined"));
    }
}
