//! Function signatures.
//!
//! A *signature* names a function together with the binary (component)
//! that hosts it, in the conventional `module!Function` notation used by
//! Windows debuggers and throughout the paper, e.g.
//! `fs.sys!AcquireMDU` or `kernel!WaitForObject`.

use std::error::Error;
use std::fmt;

/// A `module!function` signature, stored as owned strings.
///
/// The interned, analysis-side representation is a
/// [`Symbol`](crate::Symbol) over the full signature text; this type is the
/// structured, human-facing form used at construction and reporting
/// boundaries.
///
/// ```
/// use tracelens_model::Signature;
/// let sig: Signature = "fs.sys!AcquireMDU".parse()?;
/// assert_eq!(sig.module(), "fs.sys");
/// assert_eq!(sig.function(), "AcquireMDU");
/// assert_eq!(sig.to_string(), "fs.sys!AcquireMDU");
/// # Ok::<(), tracelens_model::ParseSignatureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    module: String,
    function: String,
}

impl Signature {
    /// Creates a signature from a module and function name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSignatureError`] if either part is empty or contains
    /// the `!` separator.
    pub fn new(module: &str, function: &str) -> Result<Self, ParseSignatureError> {
        if module.is_empty()
            || function.is_empty()
            || module.contains('!')
            || function.contains('!')
        {
            return Err(ParseSignatureError {
                text: format!("{module}!{function}"),
            });
        }
        Ok(Signature {
            module: module.to_owned(),
            function: function.to_owned(),
        })
    }

    /// The hosting component (binary image), e.g. `fs.sys`.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// The function name, e.g. `AcquireMDU`.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// Splits raw signature text into `(module, function)` without
    /// allocating; `None` if `text` is not of the `module!function` form.
    pub fn split(text: &str) -> Option<(&str, &str)> {
        let (m, f) = text.split_once('!')?;
        if m.is_empty() || f.is_empty() || f.contains('!') {
            return None;
        }
        Some((m, f))
    }

    /// The module part of raw signature text, if well-formed.
    pub fn module_of(text: &str) -> Option<&str> {
        Self::split(text).map(|(m, _)| m)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.module, self.function)
    }
}

impl std::str::FromStr for Signature {
    type Err = ParseSignatureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match Signature::split(s) {
            Some((m, f)) => Signature::new(m, f),
            None => Err(ParseSignatureError { text: s.to_owned() }),
        }
    }
}

/// Error produced when signature text is not of the `module!function` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignatureError {
    text: String,
}

impl fmt::Display for ParseSignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid signature syntax: {:?}", self.text)
    }
}

impl Error for ParseSignatureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let sig: Signature = "se.sys!ReadDecrypt".parse().unwrap();
        assert_eq!(sig.module(), "se.sys");
        assert_eq!(sig.function(), "ReadDecrypt");
        assert_eq!(sig.to_string(), "se.sys!ReadDecrypt");
    }

    #[test]
    fn rejects_malformed() {
        assert!("nodelimiter".parse::<Signature>().is_err());
        assert!("!fn".parse::<Signature>().is_err());
        assert!("mod!".parse::<Signature>().is_err());
        assert!("a!b!c".parse::<Signature>().is_err());
        assert!(Signature::new("", "f").is_err());
        assert!(Signature::new("m!x", "f").is_err());
    }

    #[test]
    fn split_borrowed() {
        assert_eq!(Signature::split("fs.sys!Read"), Some(("fs.sys", "Read")));
        assert_eq!(Signature::split("oops"), None);
        assert_eq!(Signature::module_of("fs.sys!Read"), Some("fs.sys"));
    }

    #[test]
    fn error_display_mentions_text() {
        let err = "bad".parse::<Signature>().unwrap_err();
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn ordering_is_lexicographic_by_module_then_function() {
        let a: Signature = "a.sys!Z".parse().unwrap();
        let b: Signature = "b.sys!A".parse().unwrap();
        assert!(a < b);
    }
}
