//! A small string interner.
//!
//! Callstacks repeat the same function names millions of times across a
//! data set; the analyses compare signatures constantly. Interning turns
//! every comparison into a `u32` compare and every set of signatures into
//! a set of integers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An interned string handle. Cheap to copy, compare, and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] (or
/// [`crate::StackTable`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Error returned when resolving a [`Symbol`] against the wrong interner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternError {
    symbol: Symbol,
}

impl fmt::Display for InternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "symbol {:?} is not present in this interner",
            self.symbol
        )
    }
}

impl Error for InternError {}

/// Deduplicating store of strings.
///
/// ```
/// use tracelens_model::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("fs.sys!AcquireMDU");
/// let b = i.intern("fs.sys!AcquireMDU");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), Some("fs.sys!AcquireMDU"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.0 as usize).map(String::as_str)
    }

    /// Resolves a symbol, returning an error suitable for `?` when the
    /// symbol does not belong to this interner.
    pub fn try_resolve(&self, sym: Symbol) -> Result<&str, InternError> {
        self.resolve(sym).ok_or(InternError { symbol: sym })
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

impl crate::heapsize::HeapSize for Interner {
    fn heap_size(&self) -> usize {
        // The index map duplicates every string as its key.
        self.strings.heap_size() + self.index.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        let c = i.intern("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("fv.sys!QueryFileTable");
        assert_eq!(i.resolve(a), Some("fv.sys!QueryFileTable"));
        assert_eq!(i.lookup("fv.sys!QueryFileTable"), Some(a));
        assert_eq!(i.lookup("missing"), None);
    }

    #[test]
    fn try_resolve_reports_foreign_symbols() {
        let i = Interner::new();
        let err = i.try_resolve(Symbol(9)).unwrap_err();
        assert!(err.to_string().contains("sym#9"));
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(all, ["a", "b"]);
        assert!(!i.is_empty());
    }
}
