//! Trace streams: validated, time-ordered event sequences.

use crate::event::{Event, EventKind};
use crate::ids::{EventId, ProcessId, ThreadId, TraceId};
use crate::stack::StackId;
use crate::time::TimeNs;
use std::error::Error;
use std::fmt;

/// A validated trace stream `TS = e0 e1 … e(L−1)` (paper §2.1).
///
/// Events are ordered by timestamp (ties broken by insertion order) and
/// indexed by [`EventId`], which together with the stream's [`TraceId`]
/// identifies an event globally across a data set.
#[derive(Debug, Clone)]
pub struct TraceStream {
    id: TraceId,
    events: Vec<Event>,
}

impl TraceStream {
    /// The stream identifier.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// All events, in timestamp order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given in-stream id.
    pub fn event(&self, id: EventId) -> Option<&Event> {
        self.events.get(id.0 as usize)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the first event, or zero for an empty stream.
    pub fn start(&self) -> TimeNs {
        self.events.first().map(|e| e.t).unwrap_or(TimeNs::ZERO)
    }

    /// Latest end timestamp over all events, or zero for an empty stream.
    pub fn end(&self) -> TimeNs {
        self.events
            .iter()
            .map(Event::end)
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Iterates `(EventId, &Event)` pairs whose start time lies in
    /// `[from, to)`.
    ///
    /// Uses binary search on the sorted timestamps, so the cost is
    /// `O(log n + k)` for `k` results.
    pub fn events_starting_in(
        &self,
        from: TimeNs,
        to: TimeNs,
    ) -> impl Iterator<Item = (EventId, &Event)> {
        let lo = self.events.partition_point(|e| e.t < from);
        self.events[lo..]
            .iter()
            .take_while(move |e| e.t < to)
            .enumerate()
            .map(move |(i, e)| (EventId((lo + i) as u32), e))
    }

    /// Iterates `(EventId, &Event)` for a single thread.
    pub fn events_of_thread(&self, tid: ThreadId) -> impl Iterator<Item = (EventId, &Event)> {
        self.events
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.tid == tid)
            .map(|(i, e)| (EventId(i as u32), e))
    }

    /// A copy of this stream truncated at `at`: only events starting
    /// before `at` are kept (their costs may still extend past it, as in
    /// a real tracing session cut mid-flight). Wait events whose unwait
    /// falls beyond the cut become unpaired — consumers must tolerate
    /// them.
    pub fn truncated(&self, at: TimeNs) -> TraceStream {
        TraceStream {
            id: self.id,
            events: self.events.iter().filter(|e| e.t < at).copied().collect(),
        }
    }

    /// Assembles a stream from raw parts **without any validation or
    /// sorting**. This is the ingestion escape hatch used by the
    /// sanitizer and by fault injection (`tracelens-faults`): it can
    /// represent corrupted streams — unsorted timestamps, malformed
    /// unwait targeting — that [`TraceStreamBuilder::finish`] would
    /// reject. Analyses receiving such a stream are only guaranteed to
    /// behave if it has passed [`crate::Dataset::sanitize`] or
    /// [`crate::Dataset::validate`] first.
    pub fn from_unchecked_parts(id: TraceId, events: Vec<Event>) -> TraceStream {
        TraceStream { id, events }
    }

    /// Finds the earliest unwait event at or after `from` whose `wtid`
    /// equals `woken` — the pairing rule used by Wait-Graph construction.
    pub fn find_unwait_for(&self, woken: ThreadId, from: TimeNs) -> Option<(EventId, &Event)> {
        let lo = self.events.partition_point(|e| e.t < from);
        self.events[lo..]
            .iter()
            .enumerate()
            .find(|(_, e)| e.kind == EventKind::Unwait && e.wtid == Some(woken))
            .map(|(i, e)| (EventId((lo + i) as u32), e))
    }
}

impl crate::heapsize::HeapSize for TraceStream {
    fn heap_size(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<Event>()
    }
}

/// Validation failures produced by [`TraceStreamBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An unwait event is missing its woken-thread id.
    UnwaitWithoutTarget {
        /// Index of the offending event in insertion order.
        index: usize,
    },
    /// A non-unwait event carries a woken-thread id.
    UnexpectedTarget {
        /// Index of the offending event in insertion order.
        index: usize,
    },
    /// An unwait event claims to wake its own thread.
    SelfUnwait {
        /// Index of the offending event in insertion order.
        index: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnwaitWithoutTarget { index } => {
                write!(f, "unwait event at index {index} has no woken-thread id")
            }
            StreamError::UnexpectedTarget { index } => {
                write!(
                    f,
                    "non-unwait event at index {index} carries a woken-thread id"
                )
            }
            StreamError::SelfUnwait { index } => {
                write!(f, "unwait event at index {index} wakes its own thread")
            }
        }
    }
}

impl Error for StreamError {}

/// Incremental builder for a [`TraceStream`].
///
/// Events may be pushed in any order; `finish` sorts them by timestamp
/// (stable, so simultaneous events keep insertion order) and validates
/// unwait targeting.
///
/// ```
/// use tracelens_model::{ProcessId, StackId, ThreadId, TimeNs, TraceStreamBuilder};
/// let mut b = TraceStreamBuilder::new(7);
/// b.push_running(ThreadId(1), TimeNs(2_000), TimeNs(1_000), StackId(0));
/// b.push_running(ThreadId(1), TimeNs(1_000), TimeNs(1_000), StackId(0));
/// let ts = b.finish()?;
/// assert!(ts.events()[0].t < ts.events()[1].t);
/// # Ok::<(), tracelens_model::StreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceStreamBuilder {
    id: TraceId,
    events: Vec<Event>,
    default_pid: ProcessId,
}

impl TraceStreamBuilder {
    /// Starts a builder for trace `id`.
    pub fn new(id: u32) -> Self {
        TraceStreamBuilder {
            id: TraceId(id),
            events: Vec::new(),
            default_pid: ProcessId(0),
        }
    }

    /// Sets the process id stamped on subsequently pushed events.
    pub fn set_process(&mut self, pid: ProcessId) -> &mut Self {
        self.default_pid = pid;
        self
    }

    /// Pushes a raw event.
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Pushes a running (CPU sample) event.
    pub fn push_running(
        &mut self,
        tid: ThreadId,
        t: TimeNs,
        cost: TimeNs,
        stack: StackId,
    ) -> &mut Self {
        self.push(Event {
            kind: EventKind::Running,
            tid,
            pid: self.default_pid,
            t,
            cost,
            stack,
            wtid: None,
        })
    }

    /// Pushes a wait event. `cost` may be zero; Wait-Graph construction
    /// restores it from the paired unwait.
    pub fn push_wait(
        &mut self,
        tid: ThreadId,
        t: TimeNs,
        cost: TimeNs,
        stack: StackId,
    ) -> &mut Self {
        self.push(Event {
            kind: EventKind::Wait,
            tid,
            pid: self.default_pid,
            t,
            cost,
            stack,
            wtid: None,
        })
    }

    /// Pushes an unwait event: thread `tid` wakes thread `woken` at `t`.
    pub fn push_unwait(
        &mut self,
        tid: ThreadId,
        woken: ThreadId,
        t: TimeNs,
        stack: StackId,
    ) -> &mut Self {
        self.push(Event {
            kind: EventKind::Unwait,
            tid,
            pid: self.default_pid,
            t,
            cost: TimeNs::ZERO,
            stack,
            wtid: Some(woken),
        })
    }

    /// Pushes a hardware-service event.
    pub fn push_hardware(
        &mut self,
        tid: ThreadId,
        t: TimeNs,
        cost: TimeNs,
        stack: StackId,
    ) -> &mut Self {
        self.push(Event {
            kind: EventKind::HardwareService,
            tid,
            pid: self.default_pid,
            t,
            cost,
            stack,
            wtid: None,
        })
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates and seals the stream.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] if an unwait event lacks a target thread,
    /// targets its own thread, or a non-unwait event carries a target.
    pub fn finish(mut self) -> Result<TraceStream, StreamError> {
        for (index, e) in self.events.iter().enumerate() {
            match e.kind {
                EventKind::Unwait => match e.wtid {
                    None => return Err(StreamError::UnwaitWithoutTarget { index }),
                    Some(w) if w == e.tid => return Err(StreamError::SelfUnwait { index }),
                    Some(_) => {}
                },
                _ => {
                    if e.wtid.is_some() {
                        return Err(StreamError::UnexpectedTarget { index });
                    }
                }
            }
        }
        self.events.sort_by_key(|e| e.t);
        Ok(TraceStream {
            id: self.id,
            events: self.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_by_time() {
        let mut b = TraceStreamBuilder::new(1);
        b.push_running(ThreadId(1), TimeNs(30), TimeNs(5), StackId(0));
        b.push_running(ThreadId(2), TimeNs(10), TimeNs(5), StackId(0));
        b.push_running(ThreadId(3), TimeNs(20), TimeNs(5), StackId(0));
        let ts = b.finish().unwrap();
        let times: Vec<u64> = ts.events().iter().map(|e| e.t.0).collect();
        assert_eq!(times, [10, 20, 30]);
        assert_eq!(ts.id(), TraceId(1));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn empty_stream() {
        let ts = TraceStreamBuilder::new(0).finish().unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.start(), TimeNs::ZERO);
        assert_eq!(ts.end(), TimeNs::ZERO);
    }

    #[test]
    fn start_end_span_events() {
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(5), TimeNs(10), StackId(0));
        b.push_running(ThreadId(1), TimeNs(8), TimeNs(1), StackId(0));
        let ts = b.finish().unwrap();
        assert_eq!(ts.start(), TimeNs(5));
        assert_eq!(ts.end(), TimeNs(15));
    }

    #[test]
    fn validation_rejects_bad_unwaits() {
        let mut b = TraceStreamBuilder::new(0);
        b.push(Event {
            kind: EventKind::Unwait,
            tid: ThreadId(1),
            pid: ProcessId(0),
            t: TimeNs(1),
            cost: TimeNs::ZERO,
            stack: StackId(0),
            wtid: None,
        });
        assert_eq!(
            b.finish().unwrap_err(),
            StreamError::UnwaitWithoutTarget { index: 0 }
        );

        let mut b = TraceStreamBuilder::new(0);
        b.push_unwait(ThreadId(1), ThreadId(1), TimeNs(1), StackId(0));
        assert_eq!(
            b.finish().unwrap_err(),
            StreamError::SelfUnwait { index: 0 }
        );

        let mut b = TraceStreamBuilder::new(0);
        b.push(Event {
            kind: EventKind::Running,
            tid: ThreadId(1),
            pid: ProcessId(0),
            t: TimeNs(1),
            cost: TimeNs(1),
            stack: StackId(0),
            wtid: Some(ThreadId(2)),
        });
        assert_eq!(
            b.finish().unwrap_err(),
            StreamError::UnexpectedTarget { index: 0 }
        );
    }

    #[test]
    fn range_query_half_open() {
        let mut b = TraceStreamBuilder::new(0);
        for t in [10u64, 20, 30, 40] {
            b.push_running(ThreadId(1), TimeNs(t), TimeNs(1), StackId(0));
        }
        let ts = b.finish().unwrap();
        let hits: Vec<u64> = ts
            .events_starting_in(TimeNs(20), TimeNs(40))
            .map(|(_, e)| e.t.0)
            .collect();
        assert_eq!(hits, [20, 30]);
    }

    #[test]
    fn range_query_ids_are_stream_indices() {
        let mut b = TraceStreamBuilder::new(0);
        for t in [10u64, 20, 30] {
            b.push_running(ThreadId(1), TimeNs(t), TimeNs(1), StackId(0));
        }
        let ts = b.finish().unwrap();
        let ids: Vec<u32> = ts
            .events_starting_in(TimeNs(20), TimeNs(31))
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(ids, [1, 2]);
        assert_eq!(ts.event(EventId(2)).unwrap().t, TimeNs(30));
    }

    #[test]
    fn thread_filter() {
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(1), TimeNs(1), StackId(0));
        b.push_running(ThreadId(2), TimeNs(2), TimeNs(1), StackId(0));
        b.push_running(ThreadId(1), TimeNs(3), TimeNs(1), StackId(0));
        let ts = b.finish().unwrap();
        assert_eq!(ts.events_of_thread(ThreadId(1)).count(), 2);
        assert_eq!(ts.events_of_thread(ThreadId(9)).count(), 0);
    }

    #[test]
    fn unwait_pairing_lookup() {
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, StackId(0));
        b.push_unwait(ThreadId(2), ThreadId(3), TimeNs(15), StackId(0));
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(20), StackId(0));
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), StackId(0));
        let ts = b.finish().unwrap();
        let (_, e) = ts.find_unwait_for(ThreadId(1), TimeNs(10)).unwrap();
        assert_eq!(e.t, TimeNs(20));
        // Searching after the first match finds the later one.
        let (_, e2) = ts.find_unwait_for(ThreadId(1), TimeNs(21)).unwrap();
        assert_eq!(e2.t, TimeNs(30));
        assert!(ts.find_unwait_for(ThreadId(9), TimeNs(0)).is_none());
    }
}
