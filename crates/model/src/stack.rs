//! Interned callstacks.
//!
//! Every tracing event carries a callstack (`e.S` in the paper). Stacks
//! repeat heavily within and across traces, so they are deduplicated in a
//! [`StackTable`]: a stack becomes a [`StackId`], each frame a
//! [`Symbol`] over its `module!function` signature text.
//!
//! Frame order convention: **index 0 is the outermost caller** (stack
//! bottom, e.g. the thread entry point) and the **last index is the
//! innermost frame** (the function executing when the event fired).

use crate::component::ComponentFilter;
use crate::intern::{Interner, Symbol};
use crate::signature::Signature;
use std::collections::HashMap;
use std::fmt;

/// Handle to an interned callstack in a [`StackTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackId(pub u32);

impl fmt::Debug for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stack#{}", self.0)
    }
}

/// Deduplicating store of callstacks and their frame signatures.
///
/// ```
/// use tracelens_model::{ComponentFilter, StackTable};
/// let mut t = StackTable::new();
/// let id = t.intern_symbols(&["kernel!OpenFile", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
/// let drivers = ComponentFilter::suffix(".sys");
/// let top = t.top_component_symbol(id, &drivers).expect("a driver frame");
/// assert_eq!(t.symbols().resolve(top), Some("fv.sys!QueryFileTable"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct StackTable {
    symbols: Interner,
    stacks: Vec<Vec<Symbol>>,
    /// Frame-hash → candidate stack ids. Keying by hash instead of by
    /// an owned `Vec<Symbol>` means interning a new stack materializes
    /// its frame vector exactly once (in `stacks`); hash collisions
    /// resolve by comparing candidates against the stored vectors.
    index: HashMap<u64, Vec<StackId>>,
}

/// FNV-1a over the little-endian frame-symbol ids.
fn hash_frames(frames: &[Symbol]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for s in frames {
        for b in s.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl StackTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a stack given as frame symbols (outermost first).
    ///
    /// A hit allocates nothing; a miss copies `frames` exactly once.
    pub fn intern(&mut self, frames: &[Symbol]) -> StackId {
        let candidates = self.index.entry(hash_frames(frames)).or_default();
        if let Some(&id) = candidates
            .iter()
            .find(|&&id| self.stacks[id.0 as usize].as_slice() == frames)
        {
            return id;
        }
        let id = StackId(self.stacks.len() as u32);
        self.stacks.push(frames.to_vec());
        candidates.push(id);
        id
    }

    /// Interns a stack given as raw signature strings (outermost first),
    /// interning each frame string along the way.
    pub fn intern_symbols(&mut self, frames: &[&str]) -> StackId {
        let syms: Vec<Symbol> = frames.iter().map(|f| self.symbols.intern(f)).collect();
        self.intern(&syms)
    }

    /// Interns a single frame string, without creating a stack.
    pub fn intern_frame(&mut self, frame: &str) -> Symbol {
        self.symbols.intern(frame)
    }

    /// The frames of `id`, outermost first. Empty slice for unknown ids.
    pub fn frames(&self, id: StackId) -> &[Symbol] {
        self.stacks
            .get(id.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The frame-symbol interner (for resolving [`Symbol`]s to text).
    pub fn symbols(&self) -> &Interner {
        &self.symbols
    }

    /// Resolves all frames of `id` to text, outermost first.
    pub fn resolve_frames(&self, id: StackId) -> Vec<&str> {
        self.frames(id)
            .iter()
            .filter_map(|&s| self.symbols.resolve(s))
            .collect()
    }

    /// The innermost ("topmost") frame of `id` whose module matches
    /// `filter` — the paper's *signature of an event with respect to the
    /// chosen components*. `None` if no frame matches.
    pub fn top_component_symbol(&self, id: StackId, filter: &ComponentFilter) -> Option<Symbol> {
        self.frames(id)
            .iter()
            .rev()
            .find(|&&sym| self.symbol_matches(sym, filter))
            .copied()
    }

    /// Whether any frame of `id` matches `filter`.
    pub fn contains_component(&self, id: StackId, filter: &ComponentFilter) -> bool {
        self.frames(id)
            .iter()
            .any(|&sym| self.symbol_matches(sym, filter))
    }

    /// Whether a single frame symbol's module matches `filter`.
    pub fn symbol_matches(&self, sym: Symbol, filter: &ComponentFilter) -> bool {
        self.symbols
            .resolve(sym)
            .and_then(Signature::module_of)
            .is_some_and(|m| filter.matches(m))
    }

    /// Number of distinct stacks interned.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stacks have been interned.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Precomputes the per-stack answers of [`Self::top_component_symbol`]
    /// and [`Self::contains_component`] for one filter.
    ///
    /// The glob/name matching runs once per distinct *frame symbol* (and
    /// once per distinct stack to fold frames), after which every hot-path
    /// query is an array index. Build one view per analysis pass; the view
    /// is immutable and snapshot-consistent with the table at build time.
    pub fn filter_view(&self, filter: &ComponentFilter) -> FilterView {
        let mut symbol_matches = vec![false; self.symbols.len()];
        for (sym, _) in self.symbols.iter() {
            symbol_matches[sym.0 as usize] = self.symbol_matches(sym, filter);
        }
        let mut top = Vec::with_capacity(self.stacks.len());
        let mut contains = Vec::with_capacity(self.stacks.len());
        for frames in &self.stacks {
            let t = frames
                .iter()
                .rev()
                .find(|&&sym| symbol_matches[sym.0 as usize])
                .copied();
            top.push(t);
            contains.push(t.is_some());
        }
        FilterView { top, contains }
    }
}

impl crate::heapsize::HeapSize for StackTable {
    fn heap_size(&self) -> usize {
        // The index holds only hashes and ids; every frame vector is
        // stored exactly once, in `stacks`.
        self.symbols.heap_size() + self.stacks.heap_size() + self.index.heap_size()
    }
}

/// Precomputed filter-match cache over the stacks of one [`StackTable`].
///
/// Answers the two questions the analysis hot paths ask about every wait
/// node — "which is the innermost matching frame?" and "does any frame
/// match?" — in O(1), replacing per-node string resolution and glob
/// matching. Produced by [`StackTable::filter_view`]; only valid for
/// [`StackId`]s from the table it was built from (stacks interned after
/// the view was built fall back to the miss answers `None`/`false`).
#[derive(Debug, Clone)]
pub struct FilterView {
    top: Vec<Option<Symbol>>,
    contains: Vec<bool>,
}

impl FilterView {
    /// The innermost frame of `id` matching the view's filter — the
    /// cached answer of [`StackTable::top_component_symbol`].
    pub fn top_component_symbol(&self, id: StackId) -> Option<Symbol> {
        self.top.get(id.0 as usize).copied().flatten()
    }

    /// Whether any frame of `id` matches the view's filter — the cached
    /// answer of [`StackTable::contains_component`].
    pub fn contains_component(&self, id: StackId) -> bool {
        self.contains.get(id.0 as usize).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> StackTable {
        StackTable::new()
    }

    #[test]
    fn intern_deduplicates() {
        let mut t = table();
        let a = t.intern_symbols(&["kernel!A", "fs.sys!B"]);
        let b = t.intern_symbols(&["kernel!A", "fs.sys!B"]);
        let c = t.intern_symbols(&["kernel!A"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn intern_bucket_index_stays_consistent_at_scale() {
        let mut t = table();
        let mut ids = Vec::new();
        for i in 0..500 {
            let frames = [
                t.intern_frame(&format!("m{}!f", i % 7)),
                t.intern_frame(&format!("m!f{i}")),
            ];
            ids.push(t.intern(&frames));
        }
        assert_eq!(t.len(), 500);
        // Every stack re-interns to its original id.
        for (i, &id) in ids.iter().enumerate() {
            let frames = [
                t.intern_frame(&format!("m{}!f", i % 7)),
                t.intern_frame(&format!("m!f{i}")),
            ];
            assert_eq!(t.intern(&frames), id);
        }
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn frames_resolve_in_order() {
        let mut t = table();
        let id = t.intern_symbols(&["kernel!A", "fs.sys!B"]);
        assert_eq!(t.resolve_frames(id), ["kernel!A", "fs.sys!B"]);
    }

    #[test]
    fn unknown_stack_is_empty() {
        let t = table();
        assert!(t.frames(StackId(99)).is_empty());
    }

    #[test]
    fn top_component_symbol_prefers_innermost() {
        let mut t = table();
        let id = t.intern_symbols(&[
            "app!Main",
            "fv.sys!QueryFileTable",
            "kernel!CallDriver",
            "fs.sys!AcquireMDU",
        ]);
        let f = ComponentFilter::suffix(".sys");
        let top = t.top_component_symbol(id, &f).unwrap();
        assert_eq!(t.symbols().resolve(top), Some("fs.sys!AcquireMDU"));
    }

    #[test]
    fn component_containment() {
        let mut t = table();
        let with = t.intern_symbols(&["app!Main", "net.sys!Send"]);
        let without = t.intern_symbols(&["app!Main", "kernel!Sleep"]);
        let f = ComponentFilter::suffix(".sys");
        assert!(t.contains_component(with, &f));
        assert!(!t.contains_component(without, &f));
    }

    #[test]
    fn empty_stack_has_no_component() {
        let mut t = table();
        let id = t.intern(&[]);
        let f = ComponentFilter::suffix(".sys");
        assert_eq!(t.top_component_symbol(id, &f), None);
    }

    #[test]
    fn filter_view_agrees_with_direct_queries() {
        let mut t = table();
        let ids = [
            t.intern_symbols(&["app!Main", "fv.sys!Query", "kernel!Call", "fs.sys!Acquire"]),
            t.intern_symbols(&["app!Main", "kernel!Sleep"]),
            t.intern(&[]),
            t.intern_symbols(&["net.sys!Send"]),
        ];
        let f = ComponentFilter::suffix(".sys");
        let view = t.filter_view(&f);
        for id in ids {
            assert_eq!(
                view.top_component_symbol(id),
                t.top_component_symbol(id, &f)
            );
            assert_eq!(view.contains_component(id), t.contains_component(id, &f));
        }
        // Ids beyond the snapshot answer as misses.
        assert_eq!(view.top_component_symbol(StackId(999)), None);
        assert!(!view.contains_component(StackId(999)));
    }
}
