//! Virtual time: integer nanoseconds since trace start.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// The same newtype is used for both instants and durations; the trace
/// origin is `TimeNs(0)`. Saturating arithmetic is deliberately *not*
/// provided: overflow in a trace analysis is a logic error and should
/// panic in debug builds.
///
/// ```
/// use tracelens_model::TimeNs;
/// let t = TimeNs::from_millis(2) + TimeNs::from_micros(500);
/// assert_eq!(t.as_nanos(), 2_500_000);
/// assert_eq!(t.as_millis_f64(), 2.5);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeNs(pub u64);

impl TimeNs {
    /// The zero instant / empty duration.
    pub const ZERO: TimeNs = TimeNs(0);
    /// The maximum representable time.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration from `self` to `later`, or [`TimeNs::ZERO`] if `later`
    /// precedes `self`.
    pub fn saturating_span_to(self, later: TimeNs) -> TimeNs {
        TimeNs(later.0.saturating_sub(self.0))
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: TimeNs) -> Option<TimeNs> {
        self.0.checked_sub(rhs.0).map(TimeNs)
    }

    /// The smaller of two times.
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }

    /// The larger of two times.
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// Fraction `self / denom` as an `f64`; returns 0.0 when `denom` is zero.
    pub fn ratio(self, denom: TimeNs) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Human scale: pick the largest unit that keeps 3 significant digits.
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeNs {
    fn sub_assign(&mut self, rhs: TimeNs) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeNs {
    type Output = TimeNs;
    fn mul(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 * rhs)
    }
}

impl Div<u64> for TimeNs {
    type Output = TimeNs;
    fn div(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 / rhs)
    }
}

impl Sum for TimeNs {
    fn sum<I: Iterator<Item = TimeNs>>(iter: I) -> TimeNs {
        iter.fold(TimeNs::ZERO, Add::add)
    }
}

impl From<u64> for TimeNs {
    fn from(ns: u64) -> Self {
        TimeNs(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(TimeNs::from_millis(1), TimeNs(1_000_000));
        assert_eq!(TimeNs::from_micros(1), TimeNs(1_000));
        assert_eq!(TimeNs::from_secs(1), TimeNs(1_000_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = TimeNs(100);
        let b = TimeNs(40);
        assert_eq!(a + b, TimeNs(140));
        assert_eq!(a - b, TimeNs(60));
        assert_eq!(a * 3, TimeNs(300));
        assert_eq!(a / 4, TimeNs(25));
        let mut c = a;
        c += b;
        assert_eq!(c, TimeNs(140));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_span() {
        assert_eq!(TimeNs(10).saturating_span_to(TimeNs(25)), TimeNs(15));
        assert_eq!(TimeNs(25).saturating_span_to(TimeNs(10)), TimeNs::ZERO);
    }

    #[test]
    fn checked_sub() {
        assert_eq!(TimeNs(5).checked_sub(TimeNs(3)), Some(TimeNs(2)));
        assert_eq!(TimeNs(3).checked_sub(TimeNs(5)), None);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(TimeNs(5).ratio(TimeNs::ZERO), 0.0);
        assert!((TimeNs(1).ratio(TimeNs(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_of_iter() {
        let total: TimeNs = [TimeNs(1), TimeNs(2), TimeNs(3)].into_iter().sum();
        assert_eq!(total, TimeNs(6));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(TimeNs(999).to_string(), "999ns");
        assert_eq!(TimeNs(1_500).to_string(), "1.500us");
        assert_eq!(TimeNs(2_500_000).to_string(), "2.500ms");
        assert_eq!(TimeNs(1_250_000_000).to_string(), "1.250s");
    }

    #[test]
    fn min_max() {
        assert_eq!(TimeNs(3).min(TimeNs(7)), TimeNs(3));
        assert_eq!(TimeNs(3).max(TimeNs(7)), TimeNs(7));
    }
}
