//! Application scenarios and scenario instances.
//!
//! A *scenario* is a named user-visible operation (e.g.
//! `BrowserTabCreate`) with developer-specified performance thresholds; a
//! *scenario instance* is one execution of that scenario recorded in a
//! trace stream (paper §2.1).

use crate::ids::{ThreadId, TraceId};
use crate::time::TimeNs;
use std::fmt;

/// Name of an application scenario.
///
/// A thin string wrapper: the paper's data set has 1,364 scenario names,
/// so this is open-ended rather than an enum. The eight scenarios of the
/// evaluation are provided as constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioName(pub String);

impl ScenarioName {
    /// The eight selected scenarios of the paper's Table 1.
    pub const SELECTED: [&'static str; 8] = [
        "AppAccessControl",
        "AppNonResponsive",
        "BrowserFrameCreate",
        "BrowserTabClose",
        "BrowserTabCreate",
        "BrowserTabSwitch",
        "MenuDisplay",
        "WebPageNavigation",
    ];

    /// Creates a scenario name.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioName(name.into())
    }

    /// The name text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ScenarioName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ScenarioName {
    fn from(s: &str) -> Self {
        ScenarioName(s.to_owned())
    }
}

/// Developer-specified performance expectation for a scenario:
/// `t_fast` is the upper bound of normal performance, `t_slow` the lower
/// bound of degradation (§4.2.1). Instances between the two are discarded
/// from contrast mining, giving the classes a clean margin
/// (`T_slow − T_fast ≫ 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    t_fast: TimeNs,
    t_slow: TimeNs,
}

impl Thresholds {
    /// Creates a threshold pair.
    ///
    /// # Panics
    ///
    /// Panics if `t_fast >= t_slow`; the contrast classes would overlap.
    pub fn new(t_fast: TimeNs, t_slow: TimeNs) -> Self {
        assert!(
            t_fast < t_slow,
            "t_fast ({t_fast}) must be strictly below t_slow ({t_slow})"
        );
        Thresholds { t_fast, t_slow }
    }

    /// Upper bound of normal performance.
    pub fn fast(&self) -> TimeNs {
        self.t_fast
    }

    /// Lower bound of degraded performance.
    pub fn slow(&self) -> TimeNs {
        self.t_slow
    }

    /// The contrast ratio `T_slow / T_fast` used by the common-pattern
    /// contrast criterion (§4.2.3).
    pub fn contrast_ratio(&self) -> f64 {
        self.t_slow.0 as f64 / self.t_fast.0 as f64
    }

    /// Classifies a duration: `Some(true)` = fast class, `Some(false)` =
    /// slow class, `None` = in the margin between the thresholds.
    pub fn classify(&self, duration: TimeNs) -> Option<bool> {
        if duration < self.t_fast {
            Some(true)
        } else if duration > self.t_slow {
            Some(false)
        } else {
            None
        }
    }
}

/// A scenario with its thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The scenario's name.
    pub name: ScenarioName,
    /// The scenario's performance thresholds.
    pub thresholds: Thresholds,
}

impl Scenario {
    /// Creates a scenario from a name and thresholds.
    pub fn new(name: impl Into<ScenarioName>, thresholds: Thresholds) -> Self {
        Scenario {
            name: name.into(),
            thresholds,
        }
    }
}

/// One recorded execution of a scenario: the tuple
/// `⟨TS, S, TID, t0, t1⟩` of §2.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioInstance {
    /// The trace stream holding this instance.
    pub trace: TraceId,
    /// The scenario being executed.
    pub scenario: ScenarioName,
    /// The initiating thread.
    pub tid: ThreadId,
    /// Instance start time.
    pub t0: TimeNs,
    /// Instance end time.
    pub t1: TimeNs,
}

impl ScenarioInstance {
    /// The instance's recorded execution time `t1 − t0`.
    pub fn duration(&self) -> TimeNs {
        self.t0.saturating_span_to(self.t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_scenarios_match_table1() {
        assert_eq!(ScenarioName::SELECTED.len(), 8);
        assert!(ScenarioName::SELECTED.contains(&"BrowserTabCreate"));
        assert_eq!(ScenarioName::new("MenuDisplay").to_string(), "MenuDisplay");
    }

    #[test]
    fn thresholds_classify() {
        let th = Thresholds::new(TimeNs::from_millis(300), TimeNs::from_millis(500));
        assert_eq!(th.classify(TimeNs::from_millis(100)), Some(true));
        assert_eq!(th.classify(TimeNs::from_millis(400)), None);
        assert_eq!(th.classify(TimeNs::from_millis(800)), Some(false));
        assert!((th.contrast_ratio() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(th.fast(), TimeNs::from_millis(300));
        assert_eq!(th.slow(), TimeNs::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "must be strictly below")]
    fn thresholds_reject_inverted() {
        let _ = Thresholds::new(TimeNs::from_millis(500), TimeNs::from_millis(300));
    }

    #[test]
    fn instance_duration() {
        let i = ScenarioInstance {
            trace: TraceId(0),
            scenario: "X".into(),
            tid: ThreadId(1),
            t0: TimeNs(100),
            t1: TimeNs(350),
        };
        assert_eq!(i.duration(), TimeNs(250));
    }

    #[test]
    fn boundary_durations_fall_in_margin() {
        let th = Thresholds::new(TimeNs(300), TimeNs(500));
        assert_eq!(th.classify(TimeNs(300)), None);
        assert_eq!(th.classify(TimeNs(500)), None);
        assert_eq!(th.classify(TimeNs(299)), Some(true));
        assert_eq!(th.classify(TimeNs(501)), Some(false));
    }
}
