//! Application scenarios and scenario instances.
//!
//! A *scenario* is a named user-visible operation (e.g.
//! `BrowserTabCreate`) with developer-specified performance thresholds; a
//! *scenario instance* is one execution of that scenario recorded in a
//! trace stream (paper §2.1).

use crate::ids::{ThreadId, TraceId};
use crate::time::TimeNs;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Name of an application scenario, interned process-wide.
///
/// The paper's data set has 1,364 scenario names, so this is open-ended
/// rather than an enum — but names repeat across hundreds of thousands
/// of scenario instances and flow through every analysis layer, so they
/// are interned: a `ScenarioName` is a `Copy`able `u32` handle into a
/// global name table, equality is an integer compare, and the text is
/// resolved only at render time. The eight scenarios of the evaluation
/// are provided as constants.
///
/// Interning is process-global (names are not dataset-scoped the way
/// callstacks are): each distinct name's text is stored once for the
/// lifetime of the process, which is bounded by the number of distinct
/// scenario names ever seen — thousands, not millions.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioName(u32);

/// The process-wide scenario-name table behind [`ScenarioName`].
struct NameTable {
    names: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn name_table() -> &'static RwLock<NameTable> {
    static TABLE: OnceLock<RwLock<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(NameTable {
            names: Vec::new(),
            index: HashMap::new(),
        })
    })
}

impl ScenarioName {
    /// The eight selected scenarios of the paper's Table 1.
    pub const SELECTED: [&'static str; 8] = [
        "AppAccessControl",
        "AppNonResponsive",
        "BrowserFrameCreate",
        "BrowserTabClose",
        "BrowserTabCreate",
        "BrowserTabSwitch",
        "MenuDisplay",
        "WebPageNavigation",
    ];

    /// Creates (interns) a scenario name.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        {
            let table = name_table().read().expect("name table poisoned");
            if let Some(&id) = table.index.get(name) {
                return ScenarioName(id);
            }
        }
        let mut table = name_table().write().expect("name table poisoned");
        if let Some(&id) = table.index.get(name) {
            return ScenarioName(id);
        }
        // First sighting of this name in the process: store its text
        // once, for the process lifetime.
        let text: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(table.names.len()).expect("fewer than 2^32 scenario names");
        table.names.push(text);
        table.index.insert(text, id);
        ScenarioName(id)
    }

    /// The name text.
    pub fn as_str(&self) -> &'static str {
        name_table().read().expect("name table poisoned").names[self.0 as usize]
    }

    /// The interned id — stable within a process, meaningless across
    /// processes. Useful as a deterministic tie-breaker only alongside
    /// a primary order on the text.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ScenarioName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScenarioName({:?})", self.as_str())
    }
}

/// Ordered by name text (not intern id), so `BTreeMap<ScenarioName, _>`
/// iterates scenarios alphabetically regardless of interning order —
/// report output must not depend on which dataset was loaded first.
impl Ord for ScenarioName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for ScenarioName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for ScenarioName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for ScenarioName {
    fn from(s: &str) -> Self {
        ScenarioName::new(s)
    }
}

impl From<String> for ScenarioName {
    fn from(s: String) -> Self {
        ScenarioName::new(s)
    }
}

/// Developer-specified performance expectation for a scenario:
/// `t_fast` is the upper bound of normal performance, `t_slow` the lower
/// bound of degradation (§4.2.1). Instances between the two are discarded
/// from contrast mining, giving the classes a clean margin
/// (`T_slow − T_fast ≫ 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    t_fast: TimeNs,
    t_slow: TimeNs,
}

impl Thresholds {
    /// Creates a threshold pair.
    ///
    /// # Panics
    ///
    /// Panics if `t_fast >= t_slow`; the contrast classes would overlap.
    pub fn new(t_fast: TimeNs, t_slow: TimeNs) -> Self {
        assert!(
            t_fast < t_slow,
            "t_fast ({t_fast}) must be strictly below t_slow ({t_slow})"
        );
        Thresholds { t_fast, t_slow }
    }

    /// Upper bound of normal performance.
    pub fn fast(&self) -> TimeNs {
        self.t_fast
    }

    /// Lower bound of degraded performance.
    pub fn slow(&self) -> TimeNs {
        self.t_slow
    }

    /// The contrast ratio `T_slow / T_fast` used by the common-pattern
    /// contrast criterion (§4.2.3).
    pub fn contrast_ratio(&self) -> f64 {
        self.t_slow.0 as f64 / self.t_fast.0 as f64
    }

    /// Classifies a duration: `Some(true)` = fast class, `Some(false)` =
    /// slow class, `None` = in the margin between the thresholds.
    pub fn classify(&self, duration: TimeNs) -> Option<bool> {
        if duration < self.t_fast {
            Some(true)
        } else if duration > self.t_slow {
            Some(false)
        } else {
            None
        }
    }
}

/// A scenario with its thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The scenario's name.
    pub name: ScenarioName,
    /// The scenario's performance thresholds.
    pub thresholds: Thresholds,
}

impl Scenario {
    /// Creates a scenario from a name and thresholds.
    pub fn new(name: impl Into<ScenarioName>, thresholds: Thresholds) -> Self {
        Scenario {
            name: name.into(),
            thresholds,
        }
    }
}

/// One recorded execution of a scenario: the tuple
/// `⟨TS, S, TID, t0, t1⟩` of §2.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioInstance {
    /// The trace stream holding this instance.
    pub trace: TraceId,
    /// The scenario being executed.
    pub scenario: ScenarioName,
    /// The initiating thread.
    pub tid: ThreadId,
    /// Instance start time.
    pub t0: TimeNs,
    /// Instance end time.
    pub t1: TimeNs,
}

impl ScenarioInstance {
    /// The instance's recorded execution time `t1 − t0`.
    pub fn duration(&self) -> TimeNs {
        self.t0.saturating_span_to(self.t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_scenarios_match_table1() {
        assert_eq!(ScenarioName::SELECTED.len(), 8);
        assert!(ScenarioName::SELECTED.contains(&"BrowserTabCreate"));
        assert_eq!(ScenarioName::new("MenuDisplay").to_string(), "MenuDisplay");
    }

    #[test]
    fn thresholds_classify() {
        let th = Thresholds::new(TimeNs::from_millis(300), TimeNs::from_millis(500));
        assert_eq!(th.classify(TimeNs::from_millis(100)), Some(true));
        assert_eq!(th.classify(TimeNs::from_millis(400)), None);
        assert_eq!(th.classify(TimeNs::from_millis(800)), Some(false));
        assert!((th.contrast_ratio() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(th.fast(), TimeNs::from_millis(300));
        assert_eq!(th.slow(), TimeNs::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "must be strictly below")]
    fn thresholds_reject_inverted() {
        let _ = Thresholds::new(TimeNs::from_millis(500), TimeNs::from_millis(300));
    }

    #[test]
    fn instance_duration() {
        let i = ScenarioInstance {
            trace: TraceId(0),
            scenario: "X".into(),
            tid: ThreadId(1),
            t0: TimeNs(100),
            t1: TimeNs(350),
        };
        assert_eq!(i.duration(), TimeNs(250));
    }

    #[test]
    fn boundary_durations_fall_in_margin() {
        let th = Thresholds::new(TimeNs(300), TimeNs(500));
        assert_eq!(th.classify(TimeNs(300)), None);
        assert_eq!(th.classify(TimeNs(500)), None);
        assert_eq!(th.classify(TimeNs(299)), Some(true));
        assert_eq!(th.classify(TimeNs(501)), Some(false));
    }
}
