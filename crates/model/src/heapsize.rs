//! Cheap heap-cost accounting for resource governance.
//!
//! The governance layer (`tracelens-pool`'s admission controller) needs
//! to know roughly how many bytes a unit of analysis will keep live —
//! *before* running it and without allocator hooks. [`HeapSize`]
//! answers that with plain arithmetic over element counts and
//! `size_of`: capacities times element sizes, plus the deep sizes of
//! nested containers. The numbers are estimates — allocator slack,
//! `HashMap` control metadata beyond one byte per slot, and small
//! per-allocation headers are not modeled — but they are deterministic,
//! monotone in the data, and cheap enough to compute on every admission
//! decision.

use crate::dataset::Dataset;
use crate::event::Event;
use crate::ids::{EventId, ProcessId, ThreadId, TraceId};
use crate::intern::Symbol;
use crate::scenario::{Scenario, ScenarioInstance, ScenarioName};
use crate::stack::StackId;
use crate::time::TimeNs;
use std::collections::HashMap;
use std::mem::size_of;

/// Estimated bytes of heap owned by a value, excluding
/// `size_of::<Self>()` itself (the inline part is the container's
/// element size and is accounted for by the container).
pub trait HeapSize {
    /// Estimated owned heap bytes.
    fn heap_size(&self) -> usize;
}

macro_rules! inline_only {
    ($($t:ty),* $(,)?) => {$(
        impl HeapSize for $t {
            fn heap_size(&self) -> usize {
                0
            }
        }
    )*};
}

// Plain-old-data values own no heap; their bytes live inline in
// whatever container holds them.
inline_only!(
    u8,
    u16,
    u32,
    u64,
    usize,
    Event,
    EventId,
    ProcessId,
    ThreadId,
    TraceId,
    TimeNs,
    Symbol,
    StackId,
    ScenarioName,
    Scenario,
    ScenarioInstance,
);

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for HashMap<K, V> {
    fn heap_size(&self) -> usize {
        // One slot is a (K, V) pair plus roughly one control byte.
        self.capacity() * (size_of::<K>() + size_of::<V>() + 1)
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl HeapSize for Dataset {
    fn heap_size(&self) -> usize {
        self.streams.heap_size()
            + self.instances.heap_size()
            + self.scenarios.heap_size()
            + self.stacks.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackTable;
    use crate::stream::TraceStreamBuilder;

    #[test]
    fn scalar_values_own_no_heap() {
        let e = Event {
            kind: crate::event::EventKind::Running,
            tid: ThreadId(1),
            pid: ProcessId(1),
            t: TimeNs(0),
            cost: TimeNs(1),
            stack: StackId(0),
            wtid: None,
        };
        assert_eq!(7u64.heap_size(), 0);
        assert_eq!(e.heap_size(), 0);
        assert_eq!(Symbol(3).heap_size(), 0);
    }

    #[test]
    fn vec_counts_capacity_and_children() {
        let v: Vec<u32> = Vec::with_capacity(8);
        assert_eq!(v.heap_size(), 8 * 4);
        let nested = vec![vec![1u8; 3], vec![2u8; 5]];
        assert!(nested.heap_size() >= 2 * size_of::<Vec<u8>>() + 8);
    }

    #[test]
    fn stream_heap_grows_with_events() {
        let mut stacks = StackTable::new();
        let s = stacks.intern_symbols(&["kernel!Main", "fv.sys!Op"]);
        let mut b = TraceStreamBuilder::new(0);
        for i in 0..100u64 {
            b.push_running(ThreadId(1), TimeNs(i * 1_000), TimeNs(500), s);
        }
        let big = b.finish().expect("well-formed").heap_size();
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(500), s);
        let small = b.finish().expect("well-formed").heap_size();
        assert!(big > small);
        assert!(big >= 100 * size_of::<Event>());
    }

    #[test]
    fn stack_table_heap_counts_strings() {
        let mut t = StackTable::new();
        t.intern_symbols(&["kernel!Main", "fv.sys!QueryFileTable"]);
        assert!(t.heap_size() > "kernel!Main".len() + "fv.sys!QueryFileTable".len());
    }
}
