//! Identifier newtypes.
//!
//! Traces juggle several unrelated integer id spaces (threads, processes,
//! trace streams, events); newtypes keep them statically distinct.

use std::fmt;

/// Identifier of a thread within a trace stream.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifier of a process within a trace stream.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

/// Identifier of a trace stream within a data set.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u32);

/// Index of an event inside its trace stream.
///
/// Combined with the [`TraceId`] it forms a globally unique event identity,
/// which the impact analysis uses to deduplicate wait events shared by
/// multiple scenario instances (the `Dwaitdist` metric).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

macro_rules! impl_id_fmt {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl From<u32> for $ty {
            fn from(raw: u32) -> Self {
                $ty(raw)
            }
        }
    };
}

impl_id_fmt!(ThreadId, "T");
impl_id_fmt!(ProcessId, "P");
impl_id_fmt!(TraceId, "trace#");
impl_id_fmt!(EventId, "e");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(ProcessId(7).to_string(), "P7");
        assert_eq!(TraceId(1).to_string(), "trace#1");
        assert_eq!(EventId(42).to_string(), "e42");
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
    }

    #[test]
    fn conversions_and_ordering() {
        assert_eq!(ThreadId::from(5), ThreadId(5));
        assert!(EventId(1) < EventId(2));
        assert_eq!(TraceId::default(), TraceId(0));
    }
}
