//! Inferring scenario instances from raw streams.
//!
//! The paper assumes a set of predefined scenarios whose instances are
//! already delimited ("performance analysts have a set of predefined
//! scenarios that are used to capture scenario-related execution
//! traces", §2.1). Real trace sources don't always carry such markers;
//! this module reconstructs instance spans from an initiating thread's
//! activity: a maximal run of events separated by idle gaps shorter than
//! a threshold is one instance.

use crate::ids::ThreadId;
use crate::scenario::{ScenarioInstance, ScenarioName};
use crate::stream::TraceStream;
use crate::time::TimeNs;

/// Splits the activity of `tid` in `stream` into instance spans of
/// `scenario`: consecutive events whose inter-event gap (from one
/// event's end to the next event's start) is below `min_gap` belong to
/// the same instance.
///
/// Wait events carry zero raw cost in unpaired streams; their paired
/// duration is unknown here, so gaps are measured between event *start*
/// times when an event has zero cost. Returns spans in time order.
pub fn infer_instances(
    stream: &TraceStream,
    tid: ThreadId,
    scenario: &ScenarioName,
    min_gap: TimeNs,
) -> Vec<ScenarioInstance> {
    let mut spans: Vec<(TimeNs, TimeNs)> = Vec::new();
    let mut current: Option<(TimeNs, TimeNs)> = None;
    for (_, e) in stream.events_of_thread(tid) {
        let (start, end) = (e.t, e.end());
        match current {
            None => current = Some((start, end)),
            Some((s, prev_end)) => {
                if start.checked_sub(prev_end.max(s)).unwrap_or(TimeNs::ZERO) >= min_gap {
                    spans.push((s, prev_end));
                    current = Some((start, end));
                } else {
                    current = Some((s, prev_end.max(end)));
                }
            }
        }
    }
    if let Some(span) = current {
        spans.push(span);
    }
    spans
        .into_iter()
        .map(|(t0, t1)| ScenarioInstance {
            trace: stream.id(),
            scenario: *scenario,
            tid,
            t0,
            t1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackId;
    use crate::stream::TraceStreamBuilder;

    fn stream(spans: &[(u64, u64)]) -> TraceStream {
        let mut b = TraceStreamBuilder::new(0);
        for &(t, cost) in spans {
            b.push_running(ThreadId(1), TimeNs(t), TimeNs(cost), StackId(0));
        }
        b.finish().unwrap()
    }

    #[test]
    fn contiguous_activity_is_one_instance() {
        let s = stream(&[(0, 10), (10, 10), (25, 5)]);
        let out = infer_instances(&s, ThreadId(1), &ScenarioName::new("S"), TimeNs(50));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t0, TimeNs(0));
        assert_eq!(out[0].t1, TimeNs(30));
    }

    #[test]
    fn large_gap_splits_instances() {
        let s = stream(&[(0, 10), (200, 10), (215, 5)]);
        let out = infer_instances(&s, ThreadId(1), &ScenarioName::new("S"), TimeNs(50));
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].t0, out[0].t1), (TimeNs(0), TimeNs(10)));
        assert_eq!((out[1].t0, out[1].t1), (TimeNs(200), TimeNs(220)));
    }

    #[test]
    fn gap_exactly_at_threshold_splits() {
        let s = stream(&[(0, 10), (60, 5)]);
        let out = infer_instances(&s, ThreadId(1), &ScenarioName::new("S"), TimeNs(50));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn idle_thread_yields_nothing() {
        let s = stream(&[]);
        assert!(infer_instances(&s, ThreadId(1), &ScenarioName::new("S"), TimeNs(50)).is_empty());
        let s2 = stream(&[(0, 10)]);
        assert!(infer_instances(&s2, ThreadId(9), &ScenarioName::new("S"), TimeNs(50)).is_empty());
    }

    #[test]
    fn wait_events_extend_the_span_via_start_times() {
        // A zero-cost wait at t=30 keeps the instance alive even though
        // the previous event ended at 10, provided the gap stays small.
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), StackId(0));
        b.push_wait(ThreadId(1), TimeNs(30), TimeNs::ZERO, StackId(0));
        b.push_running(ThreadId(1), TimeNs(35), TimeNs(5), StackId(0));
        let s = b.finish().unwrap();
        let out = infer_instances(&s, ThreadId(1), &ScenarioName::new("S"), TimeNs(50));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t1, TimeNs(40));
    }
}
