//! Data-set integrity validation.
//!
//! Analyses assume structural invariants that hold for simulator output
//! and freshly parsed files but may not for hand-assembled data sets.
//! [`Dataset::validate`] checks them all and reports every violation.

use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::ids::TraceId;
use std::error::Error;
use std::fmt;

/// One integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `streams[i].id() != i` — streams must be dense and in order so
    /// `TraceId` can index them.
    StreamIdMismatch {
        /// Position in `streams`.
        index: usize,
        /// The id found there.
        found: TraceId,
    },
    /// An instance references a trace id with no stream.
    InstanceWithoutStream {
        /// Index into `instances`.
        index: usize,
        /// The dangling trace id.
        trace: TraceId,
    },
    /// An instance ends before it starts.
    InstanceNegativeSpan {
        /// Index into `instances`.
        index: usize,
    },
    /// An instance's scenario has no definition (no thresholds).
    InstanceUnknownScenario {
        /// Index into `instances`.
        index: usize,
        /// The undefined scenario name.
        scenario: String,
    },
    /// An event references a stack id not present in the stack table.
    UnknownStack {
        /// The trace holding the event.
        trace: TraceId,
        /// The event's index in the stream.
        event: usize,
    },
    /// Events of a stream are not sorted by timestamp.
    UnsortedEvents {
        /// The offending trace.
        trace: TraceId,
    },
    /// A non-unwait event carries a woken-thread id, or an unwait lacks
    /// one (normally impossible through the builder).
    MalformedUnwait {
        /// The trace holding the event.
        trace: TraceId,
        /// The event's index in the stream.
        event: usize,
    },
}

impl Violation {
    /// Short snake-case label of the violation kind, used for per-kind
    /// counting in [`ValidationError::counts_by_kind`] and in
    /// [`crate::SanitizeReport`].
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::StreamIdMismatch { .. } => "stream_id_mismatch",
            Violation::InstanceWithoutStream { .. } => "instance_without_stream",
            Violation::InstanceNegativeSpan { .. } => "instance_negative_span",
            Violation::InstanceUnknownScenario { .. } => "instance_unknown_scenario",
            Violation::UnknownStack { .. } => "unknown_stack",
            Violation::UnsortedEvents { .. } => "unsorted_events",
            Violation::MalformedUnwait { .. } => "malformed_unwait",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::StreamIdMismatch { index, found } => {
                write!(f, "stream at position {index} has id {found}")
            }
            Violation::InstanceWithoutStream { index, trace } => {
                write!(f, "instance {index} references missing {trace}")
            }
            Violation::InstanceNegativeSpan { index } => {
                write!(f, "instance {index} ends before it starts")
            }
            Violation::InstanceUnknownScenario { index, scenario } => {
                write!(f, "instance {index} has undefined scenario {scenario:?}")
            }
            Violation::UnknownStack { trace, event } => {
                write!(f, "event {event} of {trace} references an unknown stack")
            }
            Violation::UnsortedEvents { trace } => {
                write!(f, "{trace} has out-of-order events")
            }
            Violation::MalformedUnwait { trace, event } => {
                write!(f, "event {event} of {trace} has malformed unwait targeting")
            }
        }
    }
}

/// Error wrapper carrying all violations found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Every violation, in discovery order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "data set failed validation ({} problems):",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl Error for ValidationError {}

impl ValidationError {
    /// Violation totals grouped by [`Violation::kind`], sorted by kind
    /// label — the summary the CLI `validate` command prints.
    pub fn counts_by_kind(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.kind()).or_insert(0) += 1;
        }
        counts
    }
}

impl Dataset {
    /// Checks all structural invariants, returning every violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] listing each problem found; `Ok` if
    /// the data set is internally consistent.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut violations = Vec::new();
        for (index, stream) in self.streams.iter().enumerate() {
            if stream.id().0 as usize != index {
                violations.push(Violation::StreamIdMismatch {
                    index,
                    found: stream.id(),
                });
            }
            let mut last = None;
            for (ei, e) in stream.events().iter().enumerate() {
                if let Some(prev) = last {
                    if e.t < prev {
                        violations.push(Violation::UnsortedEvents { trace: stream.id() });
                        break;
                    }
                }
                last = Some(e.t);
                if self.stacks.frames(e.stack).is_empty() && self.stacks.len() <= e.stack.0 as usize
                {
                    violations.push(Violation::UnknownStack {
                        trace: stream.id(),
                        event: ei,
                    });
                }
                let bad_unwait = match e.kind {
                    EventKind::Unwait => e.wtid.is_none() || e.wtid == Some(e.tid),
                    _ => e.wtid.is_some(),
                };
                if bad_unwait {
                    violations.push(Violation::MalformedUnwait {
                        trace: stream.id(),
                        event: ei,
                    });
                }
            }
        }
        for (index, i) in self.instances.iter().enumerate() {
            if self.streams.get(i.trace.0 as usize).is_none() {
                violations.push(Violation::InstanceWithoutStream {
                    index,
                    trace: i.trace,
                });
            }
            if i.t1 < i.t0 {
                violations.push(Violation::InstanceNegativeSpan { index });
            }
            if self.scenario(&i.scenario).is_none() {
                violations.push(Violation::InstanceUnknownScenario {
                    index,
                    scenario: i.scenario.as_str().to_owned(),
                });
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ValidationError { violations })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ThreadId;
    use crate::scenario::{Scenario, ScenarioInstance, ScenarioName, Thresholds};
    use crate::stream::TraceStreamBuilder;
    use crate::time::TimeNs;

    fn valid() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(10), TimeNs(20)),
        ));
        let st = ds.stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(5), st);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(5),
        });
        ds
    }

    #[test]
    fn valid_dataset_passes() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn dangling_instance_is_reported() {
        let mut ds = valid();
        ds.instances[0].trace = TraceId(7);
        let err = ds.validate().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::InstanceWithoutStream { .. })));
        assert!(err.to_string().contains("trace#7"));
    }

    #[test]
    fn negative_span_is_reported() {
        let mut ds = valid();
        ds.instances[0].t0 = TimeNs(9);
        ds.instances[0].t1 = TimeNs(3);
        let err = ds.validate().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::InstanceNegativeSpan { .. })));
    }

    #[test]
    fn unknown_scenario_is_reported() {
        let mut ds = valid();
        ds.scenarios.clear();
        let err = ds.validate().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::InstanceUnknownScenario { .. })));
    }

    #[test]
    fn stream_id_mismatch_is_reported() {
        let mut ds = valid();
        let mut b = TraceStreamBuilder::new(5); // should be 1
        let st = ds.stacks.intern_symbols(&["a!b"]);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(1), st);
        ds.streams.push(b.finish().unwrap());
        let err = ds.validate().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StreamIdMismatch { index: 1, .. })));
    }

    #[test]
    fn multiple_violations_accumulate() {
        let mut ds = valid();
        ds.instances[0].trace = TraceId(7);
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("Unknown"),
            tid: ThreadId(1),
            t0: TimeNs(5),
            t1: TimeNs(1),
        });
        let err = ds.validate().unwrap_err();
        assert!(err.violations.len() >= 3);
    }
}
