//! A data set: many trace streams plus their scenario instances.

use crate::scenario::{Scenario, ScenarioInstance, ScenarioName};
use crate::stack::StackTable;
use crate::stream::TraceStream;
use crate::time::TimeNs;
use std::collections::BTreeMap;

/// A collection of trace streams under analysis, with the scenario
/// instances recorded in them and a shared callstack table.
///
/// This is the unit both analyses consume: the paper's study runs over a
/// data set of ~19,500 streams / ~505,500 scenario instances.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The trace streams, indexed by their [`crate::TraceId`] value.
    pub streams: Vec<TraceStream>,
    /// All scenario instances across all streams.
    pub instances: Vec<ScenarioInstance>,
    /// Callstack table shared by every stream in the set.
    pub stacks: StackTable,
    /// The scenarios present in the set, with their thresholds.
    pub scenarios: Vec<Scenario>,
}

impl Dataset {
    /// Creates an empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stream holding `instance`.
    pub fn stream_of(&self, instance: &ScenarioInstance) -> Option<&TraceStream> {
        self.streams.get(instance.trace.0 as usize)
    }

    /// The scenario definition for `name`.
    pub fn scenario(&self, name: &ScenarioName) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| &s.name == name)
    }

    /// Instances of one scenario.
    pub fn instances_of<'a>(
        &'a self,
        name: &ScenarioName,
    ) -> impl Iterator<Item = &'a ScenarioInstance> + 'a {
        let name = *name;
        self.instances.iter().filter(move |i| i.scenario == name)
    }

    /// Total recorded execution time: the sum of instance durations
    /// (the paper's `Dscn` numerator source).
    pub fn total_instance_time(&self) -> TimeNs {
        self.instances.iter().map(ScenarioInstance::duration).sum()
    }

    /// Instance counts per scenario, sorted by name.
    pub fn instance_counts(&self) -> BTreeMap<ScenarioName, usize> {
        let mut counts = BTreeMap::new();
        for i in &self.instances {
            *counts.entry(i.scenario).or_insert(0) += 1;
        }
        counts
    }

    /// Total number of events across all streams.
    pub fn total_events(&self) -> usize {
        self.streams.iter().map(TraceStream::len).sum()
    }

    /// A copy of the data set with every stream truncated at `at` (see
    /// [`TraceStream::truncated`]): instances starting at or after the
    /// cut are dropped, the rest have their end clipped. Used to test
    /// analysis robustness against mid-flight tracing cuts.
    pub fn truncated(&self, at: TimeNs) -> Dataset {
        Dataset {
            streams: self.streams.iter().map(|s| s.truncated(at)).collect(),
            instances: self
                .instances
                .iter()
                .filter(|i| i.t0 < at)
                .map(|i| ScenarioInstance {
                    t1: i.t1.min(at),
                    ..i.clone()
                })
                .collect(),
            stacks: self.stacks.clone(),
            scenarios: self.scenarios.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TraceId};
    use crate::scenario::Thresholds;
    use crate::stream::TraceStreamBuilder;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new();
        ds.streams
            .push(TraceStreamBuilder::new(0).finish().unwrap());
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("A"),
            Thresholds::new(TimeNs(10), TimeNs(20)),
        ));
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: "A".into(),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(30),
        });
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: "B".into(),
            tid: ThreadId(2),
            t0: TimeNs(5),
            t1: TimeNs(10),
        });
        ds
    }

    #[test]
    fn lookups() {
        let ds = tiny();
        assert!(ds.scenario(&"A".into()).is_some());
        assert!(ds.scenario(&"Z".into()).is_none());
        assert_eq!(ds.instances_of(&"A".into()).count(), 1);
        assert_eq!(ds.total_instance_time(), TimeNs(35));
        assert_eq!(ds.total_events(), 0);
        assert!(ds.stream_of(&ds.instances[0]).is_some());
    }

    #[test]
    fn counts_group_by_scenario() {
        let ds = tiny();
        let counts = ds.instance_counts();
        assert_eq!(counts[&ScenarioName::new("A")], 1);
        assert_eq!(counts[&ScenarioName::new("B")], 1);
    }
}
