//! Property-based tests for the trace model.

use proptest::prelude::*;
use tracelens_model::{
    ComponentFilter, Interner, Signature, StackTable, ThreadId, Thresholds, TimeNs,
    TraceStreamBuilder,
};

/// Reference glob matcher: simple recursive semantics of `*`.
fn glob_ref(pattern: &[char], text: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('*', rest)) => (0..=text.len()).any(|i| glob_ref(rest, &text[i..])),
        Some((&c, rest)) => text.first() == Some(&c) && glob_ref(rest, &text[1..]),
    }
}

proptest! {
    #[test]
    fn glob_matches_reference(pattern in "[a-c*]{0,8}", text in "[a-c]{0,8}") {
        let expected = glob_ref(
            &pattern.chars().collect::<Vec<_>>(),
            &text.chars().collect::<Vec<_>>(),
        );
        let got = ComponentFilter::glob(&pattern).matches(&text);
        prop_assert_eq!(got, expected, "pattern={} text={}", pattern, text);
    }

    #[test]
    fn glob_literal_matches_itself(text in "[a-z.!]{1,12}") {
        prop_assert!(ComponentFilter::glob(&text).matches(&text));
    }

    #[test]
    fn suffix_filter_matches_any_prefix(prefix in "[a-z]{0,8}", suffix in "[a-z.]{1,6}") {
        let f = ComponentFilter::suffix(&suffix);
        let module = format!("{prefix}{suffix}");
        prop_assert!(f.matches(&module));
    }

    #[test]
    fn time_arithmetic_round_trips(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let (ta, tb) = (TimeNs(a), TimeNs(b));
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.min(tb) + ta.max(tb), ta + tb);
        prop_assert_eq!(ta.saturating_span_to(tb), tb.checked_sub(ta).unwrap_or(TimeNs::ZERO));
        if b > 0 {
            let r = ta.ratio(tb);
            prop_assert!(r >= 0.0);
            if a <= b { prop_assert!(r <= 1.0 + 1e-12); }
        }
    }

    #[test]
    fn interner_round_trips(words in prop::collection::vec("[a-z!.]{1,10}", 0..20)) {
        let mut i = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(i.resolve(*s), Some(w.as_str()));
            prop_assert_eq!(i.lookup(w), Some(*s));
        }
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(i.len(), distinct.len());
    }

    #[test]
    fn signature_parse_round_trips(m in "[a-z]{1,6}(\\.sys)?", f in "[A-Za-z]{1,10}") {
        let text = format!("{m}!{f}");
        let sig: Signature = text.parse().unwrap();
        prop_assert_eq!(sig.module(), m.as_str());
        prop_assert_eq!(sig.function(), f.as_str());
        prop_assert_eq!(sig.to_string(), text);
    }

    #[test]
    fn thresholds_classify_is_consistent(fast in 1u64..1000, gap in 1u64..1000, d in 0u64..3000) {
        let th = Thresholds::new(TimeNs(fast), TimeNs(fast + gap));
        match th.classify(TimeNs(d)) {
            Some(true) => prop_assert!(d < fast),
            Some(false) => prop_assert!(d > fast + gap),
            None => prop_assert!(d >= fast && d <= fast + gap),
        }
    }

    #[test]
    fn stream_builder_sorts_events(times in prop::collection::vec(0u64..10_000, 1..40)) {
        let mut stacks = StackTable::new();
        let s = stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        for &t in &times {
            b.push_running(ThreadId(1), TimeNs(t), TimeNs(1), s);
        }
        let ts = b.finish().unwrap();
        prop_assert_eq!(ts.len(), times.len());
        for w in ts.events().windows(2) {
            prop_assert!(w[0].t <= w[1].t);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let got: Vec<u64> = ts.events().iter().map(|e| e.t.0).collect();
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn top_component_symbol_is_a_matching_frame(
        frames in prop::collection::vec("([a-z]{1,4}\\.sys|app|kernel)!F", 1..8)
    ) {
        let mut stacks = StackTable::new();
        let refs: Vec<&str> = frames.iter().map(String::as_str).collect();
        let id = stacks.intern_symbols(&refs);
        let filter = ComponentFilter::suffix(".sys");
        match stacks.top_component_symbol(id, &filter) {
            Some(sym) => {
                let text = stacks.symbols().resolve(sym).unwrap();
                prop_assert!(frames.iter().any(|f| f == text));
                prop_assert!(text.contains(".sys!"));
                // It is the innermost matching frame.
                let last_match = frames.iter().rev().find(|f| f.contains(".sys!")).unwrap();
                prop_assert_eq!(text, last_match.as_str());
            }
            None => prop_assert!(frames.iter().all(|f| !f.contains(".sys!"))),
        }
        prop_assert_eq!(
            stacks.contains_component(id, &filter),
            frames.iter().any(|f| f.contains(".sys!"))
        );
    }
}
