//! Fail-operational execution: supervised parallel maps.
//!
//! [`Pool::map`](crate::Pool::map) propagates the first worker panic to
//! the caller — correct for internal invariant violations, fatal for a
//! fleet-scale study where a single pathological trace can poison one
//! analyzer unit out of thousands. [`Pool::supervised_map`] extends the
//! ingestion layer's repair-vs-quarantine philosophy to execution:
//!
//! * every unit runs under `catch_unwind`; a panic quarantines **that
//!   unit only** and surfaces as a typed [`UnitFailure`] instead of
//!   aborting the batch;
//! * panicked units are retried up to [`SupervisePolicy::max_retries`]
//!   times — the retry decision depends only on the unit and its
//!   attempt count, never on wall clock, so a deterministic workload
//!   yields a byte-identical outcome at every job count;
//! * an optional **soft deadline** bounds each attempt: a unit that
//!   finishes over budget has its result discarded and is quarantined
//!   as [`FailureReason::DeadlineExceeded`]. (Threads cannot be killed
//!   safely, so the deadline is detected after the fact — "soft" — and
//!   the recorded reason carries only the configured budget, not the
//!   measured wall time, keeping reports reproducible.)
//!
//! The batch outcome is an [`ExecutionReport`]: the execution-layer
//! sibling of the ingestion layer's `SanitizeReport`, accounting for
//! every unit the batch could not complete so partial results are never
//! mistaken for full ones.
//!
//! While a supervised batch is in flight the pool also installs a
//! scoped [panic hook](std::panic::set_hook) that replaces the default
//! multi-line backtrace dump of each quarantined unit with one
//! structured stderr line; panics on non-supervised threads are
//! delegated to the previously installed hook, which is restored when
//! the last supervised batch ends.

use crate::Pool;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe, PanicHookInfo};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a supervised batch treats misbehaving units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisePolicy {
    /// Soft per-attempt deadline. A unit whose attempt takes longer is
    /// quarantined (its computed result is discarded so slow and fast
    /// runs of the same workload stay distinguishable). `None` — the
    /// default — disables deadline accounting entirely, including its
    /// per-unit clock reads.
    pub unit_deadline: Option<Duration>,
    /// How many times a *panicked* unit is re-run before it is
    /// quarantined. Deadline-exceeded units are never retried: their
    /// result already exists and a retry would only double the stall.
    pub max_retries: usize,
}

impl Default for SupervisePolicy {
    /// No deadline, one retry.
    fn default() -> Self {
        SupervisePolicy {
            unit_deadline: None,
            max_retries: 1,
        }
    }
}

impl SupervisePolicy {
    /// Convenience constructor from CLI-shaped knobs: a deadline in
    /// milliseconds (`0` = none) and a retry bound.
    pub fn from_knobs(unit_deadline_ms: u64, max_retries: usize) -> SupervisePolicy {
        SupervisePolicy {
            unit_deadline: (unit_deadline_ms > 0).then(|| Duration::from_millis(unit_deadline_ms)),
            max_retries,
        }
    }
}

/// Why a unit was quarantined.
///
/// Deliberately contains no measured wall time: failure reasons are
/// rendered into reports that must be byte-identical across job counts
/// and checkpoint-resume boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// Every attempt panicked; `payload` is the final panic message
    /// (`&str`/`String` payloads verbatim, a placeholder otherwise).
    Panic {
        /// The panic payload rendered as text.
        payload: String,
    },
    /// The attempt completed but took longer than the configured soft
    /// deadline.
    DeadlineExceeded {
        /// The configured per-attempt budget.
        deadline: Duration,
    },
    /// The unit was shed by the admission controller before running:
    /// its estimated memory cost alone exceeds the batch budget and the
    /// governance policy does not allow degrading it (see
    /// [`crate::GovernPolicy`]).
    OverBudget {
        /// Estimated live bytes the unit would have held.
        estimated_bytes: u64,
        /// The configured batch budget.
        budget_bytes: u64,
    },
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Panic { payload } => write!(f, "panic: {payload}"),
            FailureReason::DeadlineExceeded { deadline } => {
                write!(f, "exceeded soft deadline ({}ms)", deadline.as_millis())
            }
            FailureReason::OverBudget {
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "over budget: estimated {} KiB exceeds the {} KiB budget",
                estimated_bytes >> 10,
                budget_bytes >> 10
            ),
        }
    }
}

/// Caller-supplied description of one work unit, used to label its
/// [`UnitFailure`] if it is quarantined.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitMeta {
    /// Human-readable unit label, e.g. `scenario:BrowserTabCreate` or
    /// `stream:17`.
    pub unit: String,
    /// The scenario this unit analyzes, if scenario-scoped.
    pub scenario: Option<String>,
    /// The trace-stream id this unit analyzes, if stream-scoped.
    pub stream: Option<u32>,
    /// Scenario instances whose analysis this unit carries; lost if the
    /// unit is quarantined.
    pub instances: usize,
}

impl UnitMeta {
    /// A labelled unit with no further attribution.
    pub fn labeled(unit: impl Into<String>) -> UnitMeta {
        UnitMeta {
            unit: unit.into(),
            ..UnitMeta::default()
        }
    }

    /// Attaches the scenario name.
    pub fn for_scenario(mut self, scenario: impl Into<String>) -> UnitMeta {
        self.scenario = Some(scenario.into());
        self
    }

    /// Attaches the trace-stream id.
    pub fn for_stream(mut self, stream: u32) -> UnitMeta {
        self.stream = Some(stream);
        self
    }

    /// Records how many scenario instances ride on this unit.
    pub fn carrying(mut self, instances: usize) -> UnitMeta {
        self.instances = instances;
        self
    }
}

/// One quarantined unit: what failed, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// Position of the unit in its batch.
    pub index: usize,
    /// Pipeline stage of the batch (e.g. `impact`, `scenario`).
    pub stage: &'static str,
    /// Unit label from [`UnitMeta`].
    pub unit: String,
    /// Scenario attribution, if any.
    pub scenario: Option<String>,
    /// Trace-stream attribution, if any.
    pub stream: Option<u32>,
    /// Scenario instances lost with this unit.
    pub instances: usize,
    /// Why the unit was quarantined.
    pub reason: FailureReason,
    /// Attempts made (1 + retries actually performed).
    pub attempts: usize,
}

impl fmt::Display for UnitFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} (attempts: {})",
            self.unit, self.stage, self.reason, self.attempts
        )
    }
}

/// What a supervised batch (or a whole supervised study) completed and
/// what it had to give up — the execution-layer `SanitizeReport`.
///
/// Contains no wall-clock measurements, so two runs of the same
/// deterministic workload produce equal reports regardless of job
/// count, scheduling, or checkpoint resume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Work units supervised.
    pub units: usize,
    /// Units that produced a result, including [`restored`] ones and
    /// units that recovered on retry.
    ///
    /// [`restored`]: ExecutionReport::restored
    pub completed: usize,
    /// Completed units whose result was loaded from a checkpoint
    /// instead of executed (a subset of [`completed`]).
    ///
    /// [`completed`]: ExecutionReport::completed
    pub restored: usize,
    /// Units that panicked at least once but completed on a retry.
    pub recovered: usize,
    /// Retry attempts performed across all units.
    pub retries: usize,
    /// The quarantined units, in batch order.
    pub failures: Vec<UnitFailure>,
}

impl ExecutionReport {
    /// Quarantined unit count.
    pub fn quarantined(&self) -> usize {
        self.failures.len()
    }

    /// `true` when every unit completed on its first attempt.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.retries == 0
    }

    /// Fraction of units that produced a result, in `[0, 1]` (`1.0`
    /// for an empty batch).
    pub fn completion_rate(&self) -> f64 {
        if self.units == 0 {
            1.0
        } else {
            self.completed as f64 / self.units as f64
        }
    }

    /// Scenario instances lost with quarantined units.
    pub fn lost_instances(&self) -> usize {
        self.failures.iter().map(|f| f.instances).sum()
    }

    /// Merges another report (e.g. a later pipeline stage) into this
    /// one; failures keep their per-batch indices.
    pub fn absorb(&mut self, other: ExecutionReport) {
        self.units += other.units;
        self.completed += other.completed;
        self.restored += other.restored;
        self.recovered += other.recovered;
        self.retries += other.retries;
        self.failures.extend(other.failures);
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "supervised: {}/{} units completed ({} restored, {} recovered, \
             {} retries), {} quarantined",
            self.completed,
            self.units,
            self.restored,
            self.recovered,
            self.retries,
            self.quarantined()
        )?;
        for failure in &self.failures {
            write!(f, "\n  {failure}")?;
        }
        Ok(())
    }
}

/// Per-unit outcome of a supervised run, before batch aggregation.
struct UnitOutcome<R> {
    result: Result<R, FailureReason>,
    attempts: usize,
}

impl Pool {
    /// [`Pool::map`](crate::Pool::map) with panic isolation, bounded
    /// retry, and a soft per-unit deadline.
    ///
    /// Applies `f` to every item; the result vector holds `Some` for
    /// completed units (in input order, exactly as `map`) and `None`
    /// for quarantined ones, which the returned [`ExecutionReport`]
    /// accounts for with `meta(index, item)` attribution.
    ///
    /// Everything about the outcome is deterministic for deterministic
    /// `f` — retry decisions depend only on the unit and its attempt
    /// count — **except** deadline quarantines, which depend on real
    /// execution time; callers wanting reproducible deadline behavior
    /// must keep honest units far below the budget (the fault-injection
    /// tests sleep several multiples of it).
    pub fn supervised_map<T, R, F, M>(
        &self,
        items: &[T],
        stage: &'static str,
        policy: &SupervisePolicy,
        meta: M,
        f: F,
    ) -> (Vec<Option<R>>, ExecutionReport)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        M: Fn(usize, &T) -> UnitMeta,
    {
        let _span = self.telemetry().span(tracelens_obs::stage::SUPERVISE);
        let _hook = PanicIsolation::install();
        let outcomes = self.map(items, |i, item| run_unit(i, item, policy, &f));
        let mut report = ExecutionReport {
            units: items.len(),
            ..ExecutionReport::default()
        };
        let mut results = Vec::with_capacity(items.len());
        for (index, (outcome, item)) in outcomes.into_iter().zip(items).enumerate() {
            report.retries += outcome.attempts - 1;
            match outcome.result {
                Ok(r) => {
                    report.completed += 1;
                    if outcome.attempts > 1 {
                        report.recovered += 1;
                    }
                    results.push(Some(r));
                }
                Err(reason) => {
                    let m = meta(index, item);
                    report.failures.push(UnitFailure {
                        index,
                        stage,
                        unit: m.unit,
                        scenario: m.scenario,
                        stream: m.stream,
                        instances: m.instances,
                        reason,
                        attempts: outcome.attempts,
                    });
                    results.push(None);
                }
            }
        }
        let telemetry = self.telemetry();
        if telemetry.enabled() {
            telemetry.count("supervisor.units", report.units as u64);
            telemetry.count("supervisor.completed", report.completed as u64);
            telemetry.count("supervisor.retries", report.retries as u64);
            telemetry.count("supervisor.recovered", report.recovered as u64);
            telemetry.count("supervisor.quarantined", report.quarantined() as u64);
            let deadline = report
                .failures
                .iter()
                .filter(|u| matches!(u.reason, FailureReason::DeadlineExceeded { .. }))
                .count();
            telemetry.count("supervisor.deadline_exceeded", deadline as u64);
            telemetry.count(
                "supervisor.panics",
                (report.quarantined() - deadline) as u64,
            );
        }
        (results, report)
    }
}

/// Runs one unit under the policy: catch, time, retry.
fn run_unit<T, R, F>(index: usize, item: &T, policy: &SupervisePolicy, f: &F) -> UnitOutcome<R>
where
    F: Fn(usize, &T) -> R,
{
    let mut attempts = 0;
    loop {
        attempts += 1;
        let started = policy.unit_deadline.map(|_| Instant::now());
        let attempt = {
            let _unit = SupervisedUnitScope::enter();
            catch_unwind(AssertUnwindSafe(|| f(index, item)))
        };
        match attempt {
            Ok(result) => {
                if let (Some(deadline), Some(started)) = (policy.unit_deadline, started) {
                    if started.elapsed() > deadline {
                        return UnitOutcome {
                            result: Err(FailureReason::DeadlineExceeded { deadline }),
                            attempts,
                        };
                    }
                }
                return UnitOutcome {
                    result: Ok(result),
                    attempts,
                };
            }
            Err(payload) => {
                if attempts > policy.max_retries {
                    return UnitOutcome {
                        result: Err(FailureReason::Panic {
                            payload: payload_text(payload.as_ref()),
                        }),
                        attempts,
                    };
                }
                // Retry: the decision depends only on the attempt count,
                // so a deterministic unit fails (or recovers) identically
                // at every job count.
            }
        }
    }
}

/// Renders a panic payload as text (`&str` / `String` verbatim).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

thread_local! {
    /// Whether the current thread is inside a supervised unit attempt —
    /// the panic hook consults this to decide between the structured
    /// one-liner and delegation to the previous hook.
    static IN_SUPERVISED_UNIT: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is executing a supervised unit".
struct SupervisedUnitScope;

impl SupervisedUnitScope {
    fn enter() -> SupervisedUnitScope {
        IN_SUPERVISED_UNIT.with(|c| c.set(true));
        SupervisedUnitScope
    }
}

impl Drop for SupervisedUnitScope {
    fn drop(&mut self) {
        IN_SUPERVISED_UNIT.with(|c| c.set(false));
    }
}

type PanicHook = Box<dyn Fn(&PanicHookInfo<'_>) + Send + Sync>;

/// Process-wide isolation state: how many supervised batches are in
/// flight and the hook that was installed before the first of them.
struct IsolationState {
    depth: usize,
    previous: Option<PanicHook>,
}

static ISOLATION: Mutex<IsolationState> = Mutex::new(IsolationState {
    depth: 0,
    previous: None,
});

fn isolation_state() -> std::sync::MutexGuard<'static, IsolationState> {
    // A panicking supervised unit cannot poison this lock (the hook
    // only reads), but stay robust anyway.
    ISOLATION.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scoped panic-hook replacement: one structured stderr line per
/// supervised-unit panic instead of the default multi-line backtrace;
/// panics elsewhere delegate to the previously installed hook, which is
/// restored when the last concurrent guard drops.
struct PanicIsolation;

impl PanicIsolation {
    fn install() -> PanicIsolation {
        let mut state = isolation_state();
        state.depth += 1;
        if state.depth == 1 {
            state.previous = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|info| {
                if IN_SUPERVISED_UNIT.with(|c| c.get()) {
                    let location = info
                        .location()
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "<unknown>".to_owned());
                    eprintln!(
                        "tracelens-pool: supervised unit panicked at {location}: {} \
                         (unit quarantined; backtrace suppressed)",
                        payload_text(info.payload())
                    );
                } else if let Some(previous) = &isolation_state().previous {
                    previous(info);
                }
            }));
        }
        PanicIsolation
    }
}

impl Drop for PanicIsolation {
    fn drop(&mut self) {
        let mut state = isolation_state();
        state.depth -= 1;
        if state.depth == 0 {
            if let Some(previous) = state.previous.take() {
                drop(state); // set_hook must not run under the lock
                std::panic::set_hook(previous);
            }
        }
    }
}

/// The panic hook is process-global and the test harness runs tests
/// concurrently: tests that run supervised batches (here and in the
/// `govern` module) take this in read mode; the hook-restoration test
/// takes it in write mode so it observes the hook with no other batch
/// in flight.
#[cfg(test)]
pub(crate) mod test_gate {
    use std::sync::RwLock;

    pub(crate) static HOOK_GATE: RwLock<()> = RwLock::new(());

    pub(crate) fn batch_gate() -> std::sync::RwLockReadGuard<'static, ()> {
        HOOK_GATE.read().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::test_gate::{batch_gate, HOOK_GATE};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn no_meta<T>(i: usize, _: &T) -> UnitMeta {
        UnitMeta::labeled(format!("unit:{i}"))
    }

    #[test]
    fn clean_batch_completes_everything() {
        let _gate = batch_gate();
        for jobs in [1, 4] {
            let items: Vec<u32> = (0..40).collect();
            let (results, report) = Pool::new(jobs).supervised_map(
                &items,
                "test",
                &SupervisePolicy::default(),
                no_meta,
                |_, &x| x * 2,
            );
            let values: Vec<u32> = results.into_iter().map(|r| r.unwrap()).collect();
            let expect: Vec<u32> = items.iter().map(|x| x * 2).collect();
            assert_eq!(values, expect, "jobs={jobs}");
            assert!(report.is_clean());
            assert_eq!(report.completed, 40);
            assert_eq!(report.completion_rate(), 1.0);
        }
    }

    #[test]
    fn panicking_units_are_quarantined_not_fatal() {
        let _gate = batch_gate();
        let items: Vec<u32> = (0..32).collect();
        let policy = SupervisePolicy {
            max_retries: 0,
            ..SupervisePolicy::default()
        };
        for jobs in [1, 2, 8] {
            let (results, report) =
                Pool::new(jobs).supervised_map(&items, "test", &policy, no_meta, |_, &x| {
                    if x % 10 == 3 {
                        panic!("poisoned unit {x}");
                    }
                    x
                });
            assert_eq!(results.iter().filter(|r| r.is_none()).count(), 3);
            assert_eq!(report.quarantined(), 3, "jobs={jobs}");
            assert_eq!(report.completed, 29);
            let f = &report.failures[0];
            assert_eq!(f.index, 3);
            assert_eq!(f.unit, "unit:3");
            assert_eq!(f.stage, "test");
            assert_eq!(
                f.reason,
                FailureReason::Panic {
                    payload: "poisoned unit 3".to_owned()
                }
            );
            assert_eq!(f.attempts, 1);
        }
    }

    #[test]
    fn outcome_is_identical_at_every_job_count() {
        let _gate = batch_gate();
        let items: Vec<u32> = (0..64).collect();
        let policy = SupervisePolicy {
            max_retries: 2,
            ..SupervisePolicy::default()
        };
        let run = |jobs: usize| {
            Pool::new(jobs).supervised_map(&items, "test", &policy, no_meta, |_, &x| {
                if x % 7 == 5 {
                    panic!("always fails: {x}");
                }
                x + 1
            })
        };
        let (seq_results, seq_report) = run(1);
        for jobs in [2, 8] {
            let (results, report) = run(jobs);
            assert_eq!(results, seq_results, "jobs={jobs}");
            assert_eq!(report, seq_report, "jobs={jobs}");
        }
        // Every quarantined unit exhausted 1 + max_retries attempts.
        assert!(seq_report.failures.iter().all(|f| f.attempts == 3));
        assert_eq!(seq_report.retries, seq_report.quarantined() * 2);
    }

    #[test]
    fn flaky_units_recover_on_retry() {
        let _gate = batch_gate();
        let items: Vec<u32> = (0..8).collect();
        let failures = AtomicUsize::new(0);
        let policy = SupervisePolicy {
            max_retries: 1,
            ..SupervisePolicy::default()
        };
        // Unit 4 panics on its first attempt only.
        let (results, report) =
            Pool::sequential().supervised_map(&items, "test", &policy, no_meta, |_, &x| {
                if x == 4 && failures.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                x
            });
        assert!(results.iter().all(|r| r.is_some()));
        assert_eq!(report.quarantined(), 0);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.retries, 1);
        assert!(!report.is_clean(), "a retry happened");
    }

    #[test]
    fn slow_units_exceed_the_soft_deadline() {
        let _gate = batch_gate();
        let items: Vec<u32> = (0..6).collect();
        let policy = SupervisePolicy {
            unit_deadline: Some(Duration::from_millis(40)),
            max_retries: 3,
        };
        let (results, report) =
            Pool::new(3).supervised_map(&items, "test", &policy, no_meta, |_, &x| {
                if x == 2 {
                    std::thread::sleep(Duration::from_millis(300));
                }
                x
            });
        assert!(results[2].is_none(), "slow unit result is discarded");
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 5);
        assert_eq!(report.quarantined(), 1);
        let f = &report.failures[0];
        assert_eq!(
            f.reason,
            FailureReason::DeadlineExceeded {
                deadline: Duration::from_millis(40)
            }
        );
        assert_eq!(f.attempts, 1, "deadline quarantine never retries");
        assert_eq!(
            f.to_string(),
            "unit:2 [test] exceeded soft deadline (40ms) (attempts: 1)"
        );
    }

    #[test]
    fn meta_attribution_reaches_the_failure() {
        let _gate = batch_gate();
        let items = ["a", "b"];
        let policy = SupervisePolicy {
            max_retries: 0,
            ..SupervisePolicy::default()
        };
        let (_, report) = Pool::sequential().supervised_map(
            &items,
            "scenario",
            &policy,
            |i, s: &&str| {
                UnitMeta::labeled(format!("scenario:{s}"))
                    .for_scenario(*s)
                    .for_stream(i as u32)
                    .carrying(7)
            },
            |_, s: &&str| {
                if *s == "b" {
                    panic!("bad scenario");
                }
                1
            },
        );
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.unit, "scenario:b");
        assert_eq!(f.scenario.as_deref(), Some("b"));
        assert_eq!(f.stream, Some(1));
        assert_eq!(f.instances, 7);
        assert_eq!(report.lost_instances(), 7);
    }

    #[test]
    fn panic_hook_is_restored_after_the_batch() {
        let _gate = HOOK_GATE.write().unwrap_or_else(|e| e.into_inner());
        // Install a sentinel hook, run a supervised batch with panics,
        // then panic outside supervision: the sentinel must fire.
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        {
            let hits = std::sync::Arc::clone(&hits);
            let _ = std::panic::take_hook(); // drop whatever the harness had
            std::panic::set_hook(Box::new(move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let items = [1u32, 2, 3];
        let policy = SupervisePolicy {
            max_retries: 0,
            ..SupervisePolicy::default()
        };
        let (_, report) = Pool::new(2).supervised_map(&items, "test", &policy, no_meta, |_, &x| {
            if x == 2 {
                panic!("supervised panic");
            }
            x
        });
        assert_eq!(report.quarantined(), 1);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            0,
            "supervised panics must not reach the previous hook"
        );
        let unsupervised = std::panic::catch_unwind(|| panic!("outside"));
        assert!(unsupervised.is_err());
        assert_eq!(
            hits.load(Ordering::Relaxed),
            1,
            "the previous hook must be restored after the batch"
        );
        let _ = std::panic::take_hook();
    }

    #[test]
    fn execution_report_absorb_and_display() {
        let mut a = ExecutionReport {
            units: 3,
            completed: 2,
            restored: 1,
            recovered: 0,
            retries: 1,
            failures: vec![UnitFailure {
                index: 2,
                stage: "impact",
                unit: "stream:9".to_owned(),
                scenario: None,
                stream: Some(9),
                instances: 4,
                reason: FailureReason::Panic {
                    payload: "boom".to_owned(),
                },
                attempts: 2,
            }],
        };
        let b = ExecutionReport {
            units: 2,
            completed: 2,
            ..ExecutionReport::default()
        };
        a.absorb(b);
        assert_eq!(a.units, 5);
        assert_eq!(a.completed, 4);
        assert_eq!(a.quarantined(), 1);
        assert_eq!(a.lost_instances(), 4);
        assert!((a.completion_rate() - 0.8).abs() < 1e-12);
        let text = a.to_string();
        assert!(text.contains("4/5 units completed"), "{text}");
        assert!(text.contains("stream:9 [impact] panic: boom"), "{text}");
        assert!(ExecutionReport::default().is_clean());
        assert_eq!(ExecutionReport::default().completion_rate(), 1.0);
    }

    #[test]
    fn empty_batch_is_clean() {
        let _gate = batch_gate();
        let (results, report) = Pool::new(4).supervised_map(
            &[] as &[u8],
            "test",
            &SupervisePolicy::default(),
            no_meta,
            |_, &x| x,
        );
        assert!(results.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.units, 0);
    }
}
