//! Resource governance: memory budgets, admission control, and graceful
//! degradation for supervised batches.
//!
//! A fleet-scale study cannot assume every unit of analysis fits in
//! memory — one multi-gigabyte pathological trace, or a batch admitted
//! too eagerly, can OOM the whole run. This module makes the batch run
//! under an explicit byte budget:
//!
//! 1. Every unit's live-heap cost is **estimated before it runs**
//!    (callers derive estimates from `tracelens-model`'s `HeapSize`
//!    accounting — plain arithmetic, no allocator hooks).
//! 2. A sequential **admission plan** walks the units in input order
//!    against a modeled live-bytes ledger. A unit is *admitted* while
//!    the in-flight window fits the budget; once it would not, the
//!    controller models draining the window (backpressure) and the unit
//!    is *queued* behind it. A unit whose own estimate exceeds the
//!    whole budget can never run whole: it is either *degraded* (run
//!    on a bounded slice of its input, with an explicit [`Degradation`]
//!    record) or *shed* as a typed
//!    [`FailureReason::OverBudget`] quarantine — the batch never
//!    aborts.
//! 3. The decisions are applied by [`Pool::governed_supervised_map`]
//!    and accounted in a [`GovernReport`]: admitted + queued +
//!    degraded + shed always equals the unit count.
//!
//! Determinism: the plan depends only on the unit order, the estimates,
//! and the policy — never on thread scheduling — so the shed and
//! degraded unit sets are identical at every job count, and an
//! unlimited budget reduces the whole layer to a no-op that is
//! byte-identical to an ungoverned run.

use crate::supervise::{ExecutionReport, FailureReason, SupervisePolicy, UnitFailure, UnitMeta};
use crate::Pool;
use std::fmt;

/// How the admission controller treats a unit whose estimated cost
/// alone exceeds the whole budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverBudgetAction {
    /// Quarantine the unit as [`FailureReason::OverBudget`] without
    /// running it (the default: never risk the budget).
    #[default]
    Shed,
    /// Run the unit on a budget-bounded slice of its input, recording
    /// an explicit [`Degradation`].
    Degrade,
}

/// The memory-governance policy of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernPolicy {
    /// Modeled live-bytes budget; `None` disables governance entirely
    /// (every unit is admitted, nothing is queued, degraded, or shed).
    pub budget_bytes: Option<u64>,
    /// What to do with units that cannot fit the budget even alone.
    pub action: OverBudgetAction,
}

impl GovernPolicy {
    /// No budget: governance is a no-op.
    pub fn unlimited() -> GovernPolicy {
        GovernPolicy::default()
    }

    /// A policy with a budget of `mb` mebibytes (`0` = unlimited).
    pub fn with_budget_mb(mb: u64) -> GovernPolicy {
        GovernPolicy {
            budget_bytes: (mb > 0).then_some(mb << 20),
            action: OverBudgetAction::default(),
        }
    }

    /// Sets the over-budget action.
    pub fn on_over_budget(mut self, action: OverBudgetAction) -> GovernPolicy {
        self.action = action;
        self
    }

    /// Whether a finite budget is in force.
    pub fn is_governed(&self) -> bool {
        self.budget_bytes.is_some()
    }
}

/// An explicit record of how an over-budget unit was degraded so it
/// could run inside the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// The unit's estimated live bytes had it run whole.
    pub estimated_bytes: u64,
    /// The budget it had to fit.
    pub budget_bytes: u64,
    /// Fraction of the unit's input it is allowed to retain, in
    /// thousandths (integer arithmetic keeps the plan `Eq` and
    /// deterministic). Always in `1..=1000`.
    pub retain_per_mille: u32,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded to {}.{}% of input (estimated {} KiB vs {} KiB budget)",
            self.retain_per_mille / 10,
            self.retain_per_mille % 10,
            self.estimated_bytes >> 10,
            self.budget_bytes >> 10
        )
    }
}

/// The admission controller's verdict for one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Runs whole within the current in-flight window.
    Admitted,
    /// Runs whole, but only after the in-flight window drains
    /// (backpressure).
    Queued,
    /// Runs on a bounded input slice.
    Degraded(Degradation),
    /// Never runs; quarantined as [`FailureReason::OverBudget`].
    Shed,
}

/// One unit's admission decision, kept in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitDecision {
    /// Position of the unit in its batch.
    pub index: usize,
    /// Unit label from [`UnitMeta`].
    pub unit: String,
    /// Estimated live bytes of the whole unit.
    pub estimated_bytes: u64,
    /// The verdict.
    pub admission: Admission,
}

/// What the admission controller decided for a batch.
///
/// Invariant: `admitted + queued + degraded + shed == units` — every
/// unit is accounted for exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GovernReport {
    /// The budget in force (`None` = governance disabled).
    pub budget_bytes: Option<u64>,
    /// Units considered.
    pub units: usize,
    /// Units admitted into the current window.
    pub admitted: usize,
    /// Units delayed behind a window drain.
    pub queued: usize,
    /// Units run on a degraded input slice.
    pub degraded: usize,
    /// Units quarantined without running.
    pub shed: usize,
    /// Peak of the modeled live-bytes ledger.
    pub peak_estimated_bytes: u64,
    /// Per-unit decisions, in input order.
    pub decisions: Vec<UnitDecision>,
}

impl GovernReport {
    /// Whether a finite budget was in force.
    pub fn is_governed(&self) -> bool {
        self.budget_bytes.is_some()
    }

    /// Units the controller did not admit whole without delay.
    pub fn constrained(&self) -> usize {
        self.queued + self.degraded + self.shed
    }

    /// Merges another batch's report into this one (decision indices
    /// stay per-batch, like [`ExecutionReport::absorb`]).
    pub fn absorb(&mut self, other: GovernReport) {
        self.budget_bytes = self.budget_bytes.or(other.budget_bytes);
        self.units += other.units;
        self.admitted += other.admitted;
        self.queued += other.queued;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.peak_estimated_bytes = self.peak_estimated_bytes.max(other.peak_estimated_bytes);
        self.decisions.extend(other.decisions);
    }
}

impl fmt::Display for GovernReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget_bytes {
            None => write!(f, "governance off: {} units admitted", self.admitted),
            Some(budget) => write!(
                f,
                "governed: {} units under a {} KiB budget — {} admitted, \
                 {} queued, {} degraded, {} shed (peak estimate {} KiB)",
                self.units,
                budget >> 10,
                self.admitted,
                self.queued,
                self.degraded,
                self.shed,
                self.peak_estimated_bytes >> 10
            ),
        }
    }
}

/// Computes the admission plan for a batch of `(label, estimated
/// bytes)` units under `policy`.
///
/// Pure and sequential: the verdicts depend only on the input order,
/// the estimates, and the policy, so a parallel executor applying them
/// reaches the same shed/degraded/queued sets at every job count.
pub fn plan_admission(estimates: &[(String, u64)], policy: &GovernPolicy) -> GovernReport {
    let mut report = GovernReport {
        budget_bytes: policy.budget_bytes,
        units: estimates.len(),
        decisions: Vec::with_capacity(estimates.len()),
        ..GovernReport::default()
    };
    let mut live: u64 = 0;
    for (index, (unit, est)) in estimates.iter().enumerate() {
        let est = *est;
        let admission = match policy.budget_bytes {
            None => {
                live = live.saturating_add(est);
                Admission::Admitted
            }
            Some(budget) => {
                if live.saturating_add(est) <= budget {
                    live = live.saturating_add(est);
                    Admission::Admitted
                } else {
                    // Backpressure: model the in-flight window draining
                    // before this unit is reconsidered.
                    live = 0;
                    if est <= budget {
                        live = est;
                        Admission::Queued
                    } else {
                        match policy.action {
                            OverBudgetAction::Degrade => {
                                live = budget;
                                Admission::Degraded(Degradation {
                                    estimated_bytes: est,
                                    budget_bytes: budget,
                                    retain_per_mille: retain_per_mille(est, budget),
                                })
                            }
                            OverBudgetAction::Shed => Admission::Shed,
                        }
                    }
                }
            }
        };
        match admission {
            Admission::Admitted => report.admitted += 1,
            Admission::Queued => report.queued += 1,
            Admission::Degraded(_) => report.degraded += 1,
            Admission::Shed => report.shed += 1,
        }
        report.peak_estimated_bytes = report.peak_estimated_bytes.max(live);
        report.decisions.push(UnitDecision {
            index,
            unit: unit.clone(),
            estimated_bytes: est,
            admission,
        });
    }
    debug_assert_eq!(
        report.admitted + report.queued + report.degraded + report.shed,
        report.units
    );
    report
}

/// `budget / est` as a per-mille fraction, clamped into `1..=1000`.
fn retain_per_mille(est: u64, budget: u64) -> u32 {
    if est == 0 {
        return 1000;
    }
    let pm = (budget.saturating_mul(1000) / est).min(1000);
    pm.max(1) as u32
}

impl Pool {
    /// [`Pool::supervised_map`](crate::Pool::supervised_map) under a
    /// memory budget.
    ///
    /// `cost(index, item)` estimates the live bytes the unit holds
    /// while running; [`plan_admission`] turns the estimates into
    /// per-unit verdicts before anything executes. Admitted and queued
    /// units run whole (`f` receives `None`); degraded units run with
    /// their [`Degradation`] record (`f` is responsible for bounding
    /// its input accordingly); shed units never run — their slot is
    /// `None` and a [`FailureReason::OverBudget`] failure joins the
    /// [`ExecutionReport`].
    ///
    /// With an unlimited policy this is exactly `supervised_map`: same
    /// results, same report, plus an all-admitted [`GovernReport`].
    #[allow(clippy::too_many_arguments)]
    pub fn governed_supervised_map<T, R, F, M, C>(
        &self,
        items: &[T],
        stage: &'static str,
        policy: &SupervisePolicy,
        govern: &GovernPolicy,
        cost: C,
        meta: M,
        f: F,
    ) -> (Vec<Option<R>>, ExecutionReport, GovernReport)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, Option<&Degradation>) -> R + Sync,
        M: Fn(usize, &T) -> UnitMeta,
        C: Fn(usize, &T) -> u64,
    {
        let estimates: Vec<(String, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, item)| (meta(i, item).unit, cost(i, item)))
            .collect();
        let plan = plan_admission(&estimates, govern);
        let telemetry = self.telemetry();
        if telemetry.enabled() && govern.is_governed() {
            telemetry.gauge(
                "govern.estimated_live_bytes",
                plan.peak_estimated_bytes.min(i64::MAX as u64) as i64,
            );
            telemetry.count("govern.admitted", plan.admitted as u64);
            telemetry.count("govern.queued", plan.queued as u64);
            telemetry.count("govern.degraded", plan.degraded as u64);
            telemetry.count("govern.shed", plan.shed as u64);
        }
        let decisions = &plan.decisions;
        let (raw, mut report) = self.supervised_map(items, stage, policy, &meta, |i, item| {
            match &decisions[i].admission {
                Admission::Shed => None,
                Admission::Degraded(d) => Some(f(i, item, Some(d))),
                Admission::Admitted | Admission::Queued => Some(f(i, item, None)),
            }
        });
        // Unwrap the shed-skip layer: a shed unit "completed" a trivial
        // closure above; re-account it as a typed quarantine.
        let mut results = Vec::with_capacity(items.len());
        for (index, slot) in raw.into_iter().enumerate() {
            match slot {
                Some(Some(r)) => results.push(Some(r)),
                Some(None) => {
                    let m = meta(index, &items[index]);
                    report.completed -= 1;
                    report.failures.push(UnitFailure {
                        index,
                        stage,
                        unit: m.unit,
                        scenario: m.scenario,
                        stream: m.stream,
                        instances: m.instances,
                        reason: FailureReason::OverBudget {
                            estimated_bytes: decisions[index].estimated_bytes,
                            budget_bytes: govern.budget_bytes.unwrap_or(0),
                        },
                        attempts: 0,
                    });
                    results.push(None);
                }
                None => results.push(None),
            }
        }
        // Quarantines arrive from two sources (the supervisor and the
        // shed pass); keep the report's batch-order invariant.
        report.failures.sort_by_key(|u| u.index);
        (results, report, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::test_gate::batch_gate;

    fn units(costs: &[u64]) -> Vec<(String, u64)> {
        costs
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("unit:{i}"), c))
            .collect()
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let plan = plan_admission(&units(&[100, 200, u64::MAX]), &GovernPolicy::unlimited());
        assert_eq!(plan.admitted, 3);
        assert_eq!(plan.constrained(), 0);
        assert!(!plan.is_governed());
    }

    #[test]
    fn window_overflow_queues_fitting_units() {
        let policy = GovernPolicy {
            budget_bytes: Some(250),
            action: OverBudgetAction::Shed,
        };
        let plan = plan_admission(&units(&[100, 100, 100, 100]), &policy);
        // 100+100 admitted; the third would overflow → window drains,
        // unit queued; the fourth fits behind it again.
        assert_eq!(plan.admitted, 3);
        assert_eq!(plan.queued, 1);
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.peak_estimated_bytes, 200);
        assert_eq!(plan.decisions[2].admission, Admission::Queued);
    }

    #[test]
    fn oversized_units_shed_or_degrade_by_policy() {
        let shed = plan_admission(
            &units(&[500]),
            &GovernPolicy {
                budget_bytes: Some(100),
                action: OverBudgetAction::Shed,
            },
        );
        assert_eq!(shed.shed, 1);
        let degrade = plan_admission(
            &units(&[500]),
            &GovernPolicy {
                budget_bytes: Some(100),
                action: OverBudgetAction::Degrade,
            },
        );
        assert_eq!(degrade.degraded, 1);
        match degrade.decisions[0].admission {
            Admission::Degraded(d) => {
                assert_eq!(d.retain_per_mille, 200);
                assert_eq!(d.estimated_bytes, 500);
                assert_eq!(d.budget_bytes, 100);
            }
            ref other => panic!("expected degradation, got {other:?}"),
        }
    }

    #[test]
    fn every_unit_is_accounted_for() {
        for budget in [1, 50, 150, 1000, u64::MAX] {
            let policy = GovernPolicy {
                budget_bytes: Some(budget),
                action: OverBudgetAction::Degrade,
            };
            let plan = plan_admission(&units(&[0, 10, 200, 35, 7, 999, 1]), &policy);
            assert_eq!(
                plan.admitted + plan.queued + plan.degraded + plan.shed,
                plan.units,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn retain_per_mille_is_clamped() {
        assert_eq!(retain_per_mille(0, 100), 1000);
        assert_eq!(retain_per_mille(100_000_000, 1), 1);
        assert_eq!(retain_per_mille(2000, 1000), 500);
    }

    #[test]
    fn governed_map_with_unlimited_budget_matches_supervised() {
        let _gate = batch_gate();
        let pool = Pool::sequential();
        let items: Vec<u64> = (0..10).collect();
        let policy = SupervisePolicy::default();
        let (plain, plain_report) = pool.supervised_map(
            &items,
            "t",
            &policy,
            |i, _| UnitMeta::labeled(format!("u{i}")),
            |_, &x| x * 2,
        );
        let (governed, gov_report, plan) = pool.governed_supervised_map(
            &items,
            "t",
            &policy,
            &GovernPolicy::unlimited(),
            |_, &x| x,
            |i, _| UnitMeta::labeled(format!("u{i}")),
            |_, &x, d| {
                assert!(d.is_none());
                x * 2
            },
        );
        assert_eq!(plain, governed);
        assert_eq!(plain_report, gov_report);
        assert_eq!(plan.admitted, 10);
    }

    #[test]
    fn governed_map_sheds_oversized_units_without_running_them() {
        let _gate = batch_gate();
        let pool = Pool::new(2);
        let items: Vec<u64> = vec![10, 10_000, 10];
        let policy = SupervisePolicy::default();
        let govern = GovernPolicy {
            budget_bytes: Some(100),
            action: OverBudgetAction::Shed,
        };
        let (results, report, plan) = pool.governed_supervised_map(
            &items,
            "t",
            &policy,
            &govern,
            |_, &x| x,
            |i, _| UnitMeta::labeled(format!("u{i}")).carrying(1),
            |_, &x, _| {
                assert!(x <= 100, "oversized unit must not run");
                x
            },
        );
        assert_eq!(results, vec![Some(10), None, Some(10)]);
        assert_eq!(plan.shed, 1);
        assert_eq!(report.completed, 2);
        assert_eq!(report.quarantined(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.instances, 1);
        assert!(matches!(
            failure.reason,
            FailureReason::OverBudget {
                estimated_bytes: 10_000,
                budget_bytes: 100
            }
        ));
        assert_eq!(failure.attempts, 0);
    }

    #[test]
    fn governed_map_passes_degradation_to_the_unit() {
        let _gate = batch_gate();
        let pool = Pool::sequential();
        let items: Vec<u64> = vec![400];
        let govern = GovernPolicy {
            budget_bytes: Some(100),
            action: OverBudgetAction::Degrade,
        };
        let (results, report, plan) = pool.governed_supervised_map(
            &items,
            "t",
            &SupervisePolicy::default(),
            &govern,
            |_, &x| x,
            |i, _| UnitMeta::labeled(format!("u{i}")),
            |_, _, d| d.expect("degraded unit gets its record").retain_per_mille,
        );
        assert_eq!(results, vec![Some(250)]);
        assert_eq!(plan.degraded, 1);
        assert!(report.failures.is_empty());
    }
}
