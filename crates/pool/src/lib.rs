//! # tracelens-pool
//!
//! A zero-dependency parallel execution layer for the analysis pipeline:
//! std-only (`std::thread` + atomics), deterministic, and aware of the
//! `--jobs N` / `TRACELENS_JOBS` knob every tracelens binary honors.
//!
//! The core primitive is [`Pool::map`]: apply a function to every item
//! of a slice on `jobs` worker threads and return the results **in input
//! order**, so a parallel run is byte-identical to a sequential one as
//! long as the function itself is deterministic. Work distribution is
//! chunked self-scheduling (workers claim the next unclaimed index from
//! a shared atomic counter), which load-balances skewed item costs the
//! same way a work-stealing deque would for this fan-out/fan-in shape —
//! without unsafe code or per-item channels.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results are merged in input order; nothing about
//!    thread scheduling can leak into the output.
//! 2. **Sequential fidelity.** A pool with `jobs == 1` never spawns a
//!    thread: [`Pool::map`] degenerates to a plain iterator loop, so the
//!    `--jobs 1` path *is* the sequential implementation, not a
//!    single-threaded simulation of the parallel one.
//! 3. **Zero dependencies.** Scoped threads (`std::thread::scope`) let
//!    workers borrow the items and the closure directly; no channels,
//!    no `'static` bounds, no allocation per item beyond the result.
//!
//! Telemetry: a pool built [`Pool::with_telemetry`] reports
//! `pool.tasks` / `pool.batches` / `pool.steals` / `pool.parks`
//! counters, a `pool.queue_depth` gauge and histogram (remaining items
//! observed at each claim), a `pool.task_wait_ns` queue-wait histogram
//! (ready-to-claim gaps per worker), and a `pool.worker_busy_ns`
//! per-worker busy-time histogram, so stage timings can be split per
//! worker in the run report. When the sink is an event recorder (the
//! `selftrace` crate), each parallel batch additionally traces one
//! `pool.join` barrier wait on the spawning thread, woken by the last
//! worker to finish — the ETW-shaped wait/unwait edge the wait-graph
//! meta-analysis pairs up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod govern;
mod supervise;

pub use govern::{
    plan_admission, Admission, Degradation, GovernPolicy, GovernReport, OverBudgetAction,
    UnitDecision,
};
pub use supervise::{ExecutionReport, FailureReason, SupervisePolicy, UnitFailure, UnitMeta};

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use tracelens_obs::{waitpoint, Telemetry};

/// Environment variable overriding the default worker count, honored by
/// [`Pool::auto`] (and therefore by every pipeline entry point that
/// defaults its pool). `--jobs N` flags take precedence over it.
pub const JOBS_ENV: &str = "TRACELENS_JOBS";

/// A parallel-map executor with a fixed worker count.
///
/// Cheap to clone and to construct; worker threads are scoped to each
/// [`Pool::map`] call, so an idle pool holds no OS resources.
///
/// ```
/// use tracelens_pool::Pool;
/// let pool = Pool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
    telemetry: Telemetry,
}

impl Default for Pool {
    /// [`Pool::auto`]: the `TRACELENS_JOBS` / `available_parallelism`
    /// default.
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool with exactly `jobs` workers; `0` means "auto" (the
    /// [`JOBS_ENV`] variable if set and valid, otherwise
    /// [`std::thread::available_parallelism`]).
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 { default_jobs() } else { jobs };
        Pool {
            jobs,
            telemetry: Telemetry::noop(),
        }
    }

    /// The environment/hardware default: `TRACELENS_JOBS` if set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn auto() -> Pool {
        Pool::new(0)
    }

    /// A single-worker pool: [`Pool::map`] runs inline on the calling
    /// thread. This is the exact sequential pipeline, used both as the
    /// `--jobs 1` path and as the inner pool of stages that already fan
    /// out at a coarser granularity.
    pub fn sequential() -> Pool {
        Pool {
            jobs: 1,
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle; every subsequent [`Pool::map`] batch
    /// then reports pool counters and per-worker busy-time histograms
    /// through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Pool {
        self.telemetry = telemetry;
        self
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The telemetry handle this pool reports through (a noop handle
    /// unless one was attached with [`Pool::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether this pool will actually spawn threads for multi-item
    /// batches.
    pub fn is_parallel(&self) -> bool {
        self.jobs > 1
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// `f` receives `(index, &item)`; it must be deterministic for the
    /// parallel and sequential paths to agree. Panics inside `f` are
    /// propagated to the caller after all workers have stopped.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.jobs <= 1 || items.len() <= 1 {
            if self.telemetry.enabled() {
                self.telemetry.count("pool.batches", 1);
                self.telemetry.count("pool.tasks", items.len() as u64);
            }
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.jobs.min(items.len());
        if self.telemetry.enabled() {
            self.telemetry.count("pool.batches", 1);
            self.telemetry.count("pool.tasks", items.len() as u64);
            self.telemetry.gauge("pool.workers", workers as i64);
        }
        let next = AtomicUsize::new(0);
        // Self-tracing: the spawning thread blocks in exactly one
        // barrier wait per batch; the worker whose countdown decrement
        // reaches zero — the last to finish — emits the single matching
        // wake. One pairable wait/unwait edge, no strays.
        let spawner = self.telemetry.thread_token();
        let remaining = AtomicUsize::new(workers);
        let context = self.telemetry.propagation_context();
        let join_wait = self.telemetry.wait(waitpoint::POOL_JOIN);
        // Each worker collects (index, result) pairs; merging by index
        // afterwards keeps the output independent of scheduling.
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|s| {
            let (next, remaining, f, telemetry) = (&next, &remaining, &f, &self.telemetry);
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    // The fair-share chunk of worker `w` under static
                    // partitioning; claims outside it are steals.
                    let fair = (w * items.len() / workers, (w + 1) * items.len() / workers);
                    s.spawn(move || {
                        telemetry.bind_thread("worker", w as u32);
                        let _cx =
                            context.map(|cx| telemetry.span_with_parent(cx.name, Some(cx.id)));
                        let started = std::time::Instant::now();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            let mut ready = std::time::Instant::now();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= items.len() {
                                    if telemetry.enabled() {
                                        telemetry.count("pool.parks", 1);
                                    }
                                    break;
                                }
                                if telemetry.enabled() {
                                    // Time between being ready for work
                                    // and claiming it: queue wait.
                                    let waited = ready.elapsed().as_nanos();
                                    telemetry.record(
                                        "pool.task_wait_ns",
                                        u64::try_from(waited).unwrap_or(u64::MAX),
                                    );
                                    let depth = (items.len() - i) as u64;
                                    telemetry.record("pool.queue_depth", depth);
                                    telemetry.gauge("pool.queue_depth", depth as i64);
                                    if i < fair.0 || i >= fair.1 {
                                        telemetry.count("pool.steals", 1);
                                    }
                                }
                                local.push((i, f(i, &items[i])));
                                ready = std::time::Instant::now();
                            }
                        }));
                        if telemetry.enabled() {
                            let busy = started.elapsed().as_nanos();
                            telemetry.record(
                                "pool.worker_busy_ns",
                                u64::try_from(busy).unwrap_or(u64::MAX),
                            );
                        }
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            if let Some(token) = spawner {
                                telemetry.wake(waitpoint::POOL_JOIN, token);
                            }
                        }
                        out.map(|()| local)
                    })
                })
                .collect();
            for h in handles {
                match h.join().expect("pool worker thread never aborts") {
                    Ok(local) => parts.push(local),
                    Err(p) => panic = Some(p),
                }
            }
        });
        // The barrier wait ends here: merging results below is running
        // time on the spawning thread, not blocked time.
        drop(join_wait);
        if let Some(p) = panic {
            resume_unwind(p);
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for part in parts {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Runs two independent closures, in parallel when the pool is.
    /// Returns `(a(), b())`.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.jobs <= 1 {
            return (a(), b());
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut rb: Option<RB> = None;
        let ra = std::thread::scope(|s| {
            let hb = s.spawn(|| catch_unwind(AssertUnwindSafe(b)));
            let ra = catch_unwind(AssertUnwindSafe(a));
            match hb.join().expect("pool worker thread never aborts") {
                Ok(v) => rb = Some(v),
                Err(p) => panic = Some(p),
            }
            ra
        });
        // `a`'s panic wins (it is what a sequential run would hit first).
        match ra {
            Ok(ra) => {
                if let Some(p) = panic {
                    resume_unwind(p);
                }
                (ra, rb.expect("b completed without panicking"))
            }
            Err(p) => resume_unwind(p),
        }
    }
}

/// The auto worker count: [`JOBS_ENV`] if parseable and positive,
/// otherwise available parallelism, otherwise 1.
fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        for jobs in [1, 2, 4, 8] {
            let pool = Pool::new(jobs);
            let items: Vec<u64> = (0..257).collect();
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_matches_sequential_under_skew() {
        // Wildly uneven task costs must not affect result order.
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &x: &u64| {
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let seq = Pool::sequential().map(&items, work);
        let par = Pool::new(8).map(&items, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = Pool::new(3).map(&items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert!(pool.map(&[] as &[u8], |_, &x| x).is_empty());
        assert_eq!(pool.map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert!(Pool::new(0).jobs() >= 1);
        assert!(Pool::auto().jobs() >= 1);
        assert_eq!(Pool::sequential().jobs(), 1);
        assert!(!Pool::sequential().is_parallel());
        assert!(Pool::new(2).is_parallel());
    }

    #[test]
    fn join_returns_both_results() {
        for jobs in [1, 4] {
            let pool = Pool::new(jobs);
            let (a, b) = pool.join(|| 2 + 2, || "ok".to_owned());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn map_propagates_worker_panics() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(&items, |_, &x| {
                if x == 17 {
                    panic!("boom on 17");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let r = std::panic::catch_unwind(|| Pool::new(2).join(|| panic!("left"), || 1));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| Pool::new(2).join(|| 1, || panic!("right")));
        assert!(r.is_err());
    }

    #[test]
    fn telemetry_counts_batches_and_tasks() {
        use tracelens_obs::CollectingSink;
        let (t, sink) = CollectingSink::telemetry();
        let pool = Pool::new(2).with_telemetry(t);
        let _ = pool.map(&[1, 2, 3, 4], |_, &x: &i32| x);
        let report = sink.report();
        let json = report.to_json();
        assert!(json.contains("pool.tasks"), "{json}");
        assert!(json.contains("pool.worker_busy_ns"), "{json}");
    }

    #[test]
    fn telemetry_reports_contention_metrics() {
        use tracelens_obs::CollectingSink;
        let (t, sink) = CollectingSink::telemetry();
        let pool = Pool::new(3).with_telemetry(t);
        let items: Vec<u64> = (0..50).collect();
        let _ = pool.map(&items, |_, &x| x * 2);
        let report = sink.report();
        // Queue-wait time: one observation per claimed task.
        let waits = &report.metrics.histograms["pool.task_wait_ns"];
        assert_eq!(waits.n(), 50);
        // Every worker parks exactly once, when the queue drains.
        assert_eq!(report.metrics.counters["pool.parks"], 3);
        // The queue-depth gauge saw the final claims.
        assert!(report.metrics.gauges.contains_key("pool.queue_depth"));
        // Self-scheduling off a shared counter: claims outside the
        // static fair-share chunk are counted as steals (possibly zero
        // on an unloaded machine, but the counter must exist).
        let _ = report.metrics.counters.get("pool.steals");
    }

    /// Minimal recorder for the wait/wake protocol of `Pool::map`.
    #[derive(Default)]
    struct WaitLog {
        events: std::sync::Mutex<Vec<String>>,
    }

    impl tracelens_obs::TelemetrySink for WaitLog {
        fn span_enter(
            &self,
            _name: &'static str,
            _parent: Option<tracelens_obs::SpanId>,
        ) -> tracelens_obs::SpanId {
            tracelens_obs::SpanId(0)
        }
        fn span_exit(&self, _id: tracelens_obs::SpanId, _elapsed_ns: u64) {}
        fn counter_add(&self, _name: &'static str, _delta: u64) {}
        fn gauge_set(&self, _name: &'static str, _value: i64) {}
        fn histogram_record(&self, _name: &'static str, _value: u64) {}
        fn thread_token(&self) -> Option<u64> {
            Some(1)
        }
        fn wait_begin(&self, name: &'static str, _parent: Option<tracelens_obs::SpanId>) -> u64 {
            self.events.lock().unwrap().push(format!("wait {name}"));
            9
        }
        fn wait_end(&self, token: u64, _elapsed_ns: u64) {
            self.events.lock().unwrap().push(format!("end {token}"));
        }
        fn wake(&self, name: &'static str, target: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("wake {name} -> {target}"));
        }
    }

    #[test]
    fn parallel_batch_traces_one_join_wait_and_one_wake() {
        let sink = std::sync::Arc::new(WaitLog::default());
        let t = Telemetry::with_sink(
            std::sync::Arc::clone(&sink) as std::sync::Arc<dyn tracelens_obs::TelemetrySink>
        );
        let pool = Pool::new(4).with_telemetry(t);
        let items: Vec<u64> = (0..32).collect();
        let _ = pool.map(&items, |_, &x| x + 1);
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec!["wait pool.join", "wake pool.join -> 1", "end 9"],
            "exactly one barrier wait, woken once by the last worker"
        );
    }

    #[test]
    fn sequential_batch_traces_no_waits() {
        let sink = std::sync::Arc::new(WaitLog::default());
        let t = Telemetry::with_sink(
            std::sync::Arc::clone(&sink) as std::sync::Arc<dyn tracelens_obs::TelemetrySink>
        );
        let pool = Pool::sequential().with_telemetry(t);
        let _ = pool.map(&[1u8, 2, 3], |_, &x| x);
        assert!(sink.events.lock().unwrap().is_empty());
    }
}
