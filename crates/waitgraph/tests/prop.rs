//! Property-based tests: Wait-Graph construction over randomized streams
//! must uphold its structural invariants and never panic.

use proptest::prelude::*;
use tracelens_model::{
    EventKind, ScenarioInstance, ScenarioName, StackTable, ThreadId, TimeNs, TraceId,
    TraceStreamBuilder,
};
use tracelens_waitgraph::{NodeKind, StreamIndex, WaitGraph};

#[derive(Debug, Clone)]
enum RawEvent {
    Running { tid: u8, t: u16, cost: u8 },
    Wait { tid: u8, t: u16 },
    Unwait { tid: u8, woken: u8, t: u16 },
    Hardware { tid: u8, t: u16, cost: u8 },
}

fn raw_event() -> impl Strategy<Value = RawEvent> {
    prop_oneof![
        (0u8..4, 0u16..1000, 1u8..20).prop_map(|(tid, t, cost)| RawEvent::Running { tid, t, cost }),
        (0u8..4, 0u16..1000).prop_map(|(tid, t)| RawEvent::Wait { tid, t }),
        (0u8..4, 0u8..4, 0u16..1000).prop_map(|(tid, woken, t)| RawEvent::Unwait { tid, woken, t }),
        (0u8..4, 0u16..1000, 1u8..20).prop_map(|(tid, t, cost)| RawEvent::Hardware {
            tid,
            t,
            cost
        }),
    ]
}

/// Builds a valid stream from arbitrary raw events (self-unwaits are
/// redirected to the next thread id to satisfy validation).
fn build_stream(events: &[RawEvent], stacks: &mut StackTable) -> tracelens_model::TraceStream {
    let s = stacks.intern_symbols(&["mod.sys!Fn", "kernel!Op"]);
    let mut b = TraceStreamBuilder::new(0);
    for e in events {
        match *e {
            RawEvent::Running { tid, t, cost } => {
                b.push_running(
                    ThreadId(tid as u32),
                    TimeNs(t as u64),
                    TimeNs(cost as u64),
                    s,
                );
            }
            RawEvent::Wait { tid, t } => {
                b.push_wait(ThreadId(tid as u32), TimeNs(t as u64), TimeNs::ZERO, s);
            }
            RawEvent::Unwait { tid, woken, t } => {
                let woken = if woken == tid { (tid + 1) % 4 } else { woken };
                b.push_unwait(
                    ThreadId(tid as u32),
                    ThreadId(woken as u32),
                    TimeNs(t as u64),
                    s,
                );
            }
            RawEvent::Hardware { tid, t, cost } => {
                b.push_hardware(
                    ThreadId(tid as u32),
                    TimeNs(t as u64),
                    TimeNs(cost as u64),
                    s,
                );
            }
        }
    }
    b.finish().expect("builder output is valid")
}

fn instance(tid: u8) -> ScenarioInstance {
    ScenarioInstance {
        trace: TraceId(0),
        scenario: ScenarioName::new("P"),
        tid: ThreadId(tid as u32),
        t0: TimeNs(0),
        t1: TimeNs(2000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn construction_never_panics_and_holds_invariants(
        events in prop::collection::vec(raw_event(), 0..60),
        tid in 0u8..4,
    ) {
        let mut stacks = StackTable::new();
        let stream = build_stream(&events, &mut stacks);
        let index = StreamIndex::new(&stream);
        let graph = WaitGraph::build(&stream, &index, &instance(tid));

        for (_, id) in graph.dfs() {
            let node = graph.node(id);
            // Only wait nodes have children (edges start at wait events).
            if !node.kind.is_wait() {
                prop_assert!(node.children.is_empty());
            }
            // Nodes reference real events of the right kind.
            let e = stream.event(node.event).expect("node references an event");
            match node.kind {
                NodeKind::Running => prop_assert_eq!(e.kind, EventKind::Running),
                NodeKind::Hardware => prop_assert_eq!(e.kind, EventKind::HardwareService),
                NodeKind::Wait { .. } | NodeKind::UnpairedWait => {
                    prop_assert_eq!(e.kind, EventKind::Wait)
                }
            }
            prop_assert_eq!(e.tid, node.tid);

            // Paired waits: duration equals the pairing span; children
            // belong to the signalling thread and overlap the interval.
            if let NodeKind::Wait { unwait, unwait_tid, .. } = node.kind {
                let u = stream.event(unwait).expect("unwait exists");
                prop_assert_eq!(u.kind, EventKind::Unwait);
                prop_assert_eq!(u.wtid, Some(node.tid));
                prop_assert_eq!(node.duration, node.t.saturating_span_to(u.t));
                for &c in &node.children {
                    let child = graph.node(c);
                    prop_assert_eq!(child.tid, unwait_tid);
                    // Child starts before the wait resolves.
                    prop_assert!(child.t < u.t || node.duration == TimeNs::ZERO);
                }
            }
        }

        // Roots belong to the initiating thread.
        for &r in graph.roots() {
            prop_assert_eq!(graph.node(r).tid, ThreadId(tid as u32));
        }
    }

    #[test]
    fn index_effective_ends_cover_costs(
        events in prop::collection::vec(raw_event(), 0..60),
    ) {
        let mut stacks = StackTable::new();
        let stream = build_stream(&events, &mut stacks);
        let index = StreamIndex::new(&stream);
        for (i, e) in stream.events().iter().enumerate() {
            let id = tracelens_model::EventId(i as u32);
            let end = index.effective_end(id);
            if e.kind == EventKind::Wait {
                // Paired waits end at the unwait; unpaired at their start.
                prop_assert!(end >= e.t);
            } else {
                prop_assert_eq!(end, e.end());
            }
        }
    }

    #[test]
    fn overlap_query_agrees_with_naive_scan(
        events in prop::collection::vec(raw_event(), 0..60),
        from in 0u64..1500,
        len in 1u64..400,
        tid in 0u8..4,
    ) {
        let mut stacks = StackTable::new();
        let stream = build_stream(&events, &mut stacks);
        let index = StreamIndex::new(&stream);
        let (from, to) = (TimeNs(from), TimeNs(from + len));
        let got = index.thread_events_overlapping(&stream, ThreadId(tid as u32), from, to);
        // Naive reference: per-thread events whose [t, effective_end)
        // intersects [from, to) — modulo the contiguity assumption the
        // index exploits, the fast path must never return wrong events
        // and never miss events that *start* inside the window.
        for &id in &got {
            let e = stream.event(id).unwrap();
            prop_assert_eq!(e.tid, ThreadId(tid as u32));
            prop_assert!(e.t < to);
        }
        for (i, e) in stream.events().iter().enumerate() {
            if e.tid == ThreadId(tid as u32) && e.t >= from && e.t < to {
                prop_assert!(
                    got.contains(&tracelens_model::EventId(i as u32)),
                    "event starting in window missed"
                );
            }
        }
    }
}
