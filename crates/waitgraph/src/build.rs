//! Wait-Graph construction from a trace stream and a scenario instance.

use crate::graph::{Node, NodeId, NodeKind, WaitGraph};
use crate::index::StreamIndex;
use std::collections::HashSet;
use tracelens_model::{EventId, EventKind, ScenarioInstance, TimeNs, TraceStream};

/// Hard cap on wait-chain recursion depth; real propagation chains are
/// shallow (the paper bounds mining at segment length 5), and the cap
/// guards against pathological pairings in malformed streams.
const MAX_DEPTH: usize = 64;

impl WaitGraph {
    /// Builds the Wait Graph of `instance` over `stream`.
    ///
    /// Roots are the initiating thread's events overlapping the instance
    /// window `[t0, t1)`. Each wait event is paired with the earliest
    /// unwait targeting its thread at or after the wait start; its
    /// children are the signalling thread's events within the wait
    /// interval, recursively. Wait events whose unwait is missing (e.g.
    /// truncated traces) become [`NodeKind::UnpairedWait`] leaves with
    /// their duration clipped to the enclosing interval.
    pub fn build(
        stream: &TraceStream,
        index: &StreamIndex,
        instance: &ScenarioInstance,
    ) -> WaitGraph {
        debug_assert_eq!(stream.id(), instance.trace, "instance/stream mismatch");
        let mut b = Builder {
            stream,
            index,
            nodes: Vec::new(),
        };
        let mut roots = Vec::new();
        let mut path = HashSet::new();
        for id in index.thread_events_overlapping(stream, instance.tid, instance.t0, instance.t1) {
            if let Some(n) = b.add_event(id, instance.t1, &mut path, 0) {
                roots.push(n);
            }
        }
        WaitGraph::from_parts(stream.id(), b.nodes, roots)
    }

    /// [`WaitGraph::build`] with telemetry: reports graph/node counters
    /// and a per-graph build-time histogram through `telemetry`. With a
    /// disabled handle this is exactly `build` — no timing, no counting.
    pub fn build_traced(
        stream: &TraceStream,
        index: &StreamIndex,
        instance: &ScenarioInstance,
        telemetry: &tracelens_obs::Telemetry,
    ) -> WaitGraph {
        if !telemetry.enabled() {
            return WaitGraph::build(stream, index, instance);
        }
        let start = std::time::Instant::now();
        let graph = WaitGraph::build(stream, index, instance);
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.count("waitgraph.graphs", 1);
        telemetry.count("waitgraph.nodes", graph.node_count() as u64);
        telemetry.record("waitgraph.build_ns", elapsed);
        graph
    }

    /// Builds the Wait Graphs of many instances of one stream, fanning
    /// the per-instance builds out over `pool`.
    ///
    /// Each instance's graph is independent (the builder only reads the
    /// stream and index), so this is an order-preserving parallel map:
    /// `result[i]` is the graph of `instances[i]` regardless of job
    /// count, and with a sequential pool this is exactly a `build_traced`
    /// loop. Telemetry counters are merged in completion order — counter
    /// sums are order-independent.
    pub fn build_all(
        stream: &TraceStream,
        index: &StreamIndex,
        instances: &[ScenarioInstance],
        pool: &tracelens_pool::Pool,
        telemetry: &tracelens_obs::Telemetry,
    ) -> Vec<WaitGraph> {
        pool.map(instances, |_, instance| {
            WaitGraph::build_traced(stream, index, instance, telemetry)
        })
    }
}

struct Builder<'a> {
    stream: &'a TraceStream,
    index: &'a StreamIndex,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds the node for event `id`, recursing into wait chains.
    /// `clip_end` bounds unpaired-wait durations; `path` holds the wait
    /// events on the current recursion path (cycle guard).
    fn add_event(
        &mut self,
        id: EventId,
        clip_end: TimeNs,
        path: &mut HashSet<EventId>,
        depth: usize,
    ) -> Option<NodeId> {
        let e = *self.stream.event(id)?;
        match e.kind {
            EventKind::Unwait => None,
            EventKind::Running => Some(self.push(Node {
                event: id,
                kind: NodeKind::Running,
                tid: e.tid,
                stack: e.stack,
                t: e.t,
                duration: e.cost,
                children: Vec::new(),
            })),
            EventKind::HardwareService => Some(self.push(Node {
                event: id,
                kind: NodeKind::Hardware,
                tid: e.tid,
                stack: e.stack,
                t: e.t,
                duration: e.cost,
                children: Vec::new(),
            })),
            EventKind::Wait => {
                let pair = self.index.pair_unwait(self.stream, e.tid, e.t);
                let cyclic = path.contains(&id) || depth >= MAX_DEPTH;
                match pair {
                    Some(u_id) if !cyclic => {
                        let u = *self.stream.event(u_id).expect("paired event exists");
                        let duration = e.t.saturating_span_to(u.t);
                        // Reserve the node slot so parents precede children.
                        let node_id = self.push(Node {
                            event: id,
                            kind: NodeKind::Wait {
                                unwait: u_id,
                                unwait_stack: u.stack,
                                unwait_tid: u.tid,
                            },
                            tid: e.tid,
                            stack: e.stack,
                            t: e.t,
                            duration,
                            children: Vec::new(),
                        });
                        path.insert(id);
                        let mut children = Vec::new();
                        for cid in
                            self.index
                                .thread_events_overlapping(self.stream, u.tid, e.t, u.t)
                        {
                            if let Some(c) = self.add_event(cid, u.t, path, depth + 1) {
                                children.push(c);
                            }
                        }
                        path.remove(&id);
                        self.nodes[node_id.0 as usize].children = children;
                        Some(node_id)
                    }
                    _ => {
                        // Unpaired (or cyclic/over-deep): a leaf whose
                        // duration is clipped to the enclosing interval.
                        let duration = e.cost.max(e.t.saturating_span_to(clip_end));
                        Some(self.push(Node {
                            event: id,
                            kind: NodeKind::UnpairedWait,
                            tid: e.tid,
                            stack: e.stack,
                            t: e.t,
                            duration,
                            children: Vec::new(),
                        }))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ScenarioName, StackTable, ThreadId, TraceId, TraceStreamBuilder};

    fn instance(tid: u32, t0: u64, t1: u64) -> ScenarioInstance {
        ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("T"),
            tid: ThreadId(tid),
            t0: TimeNs(t0),
            t1: TimeNs(t1),
        }
    }

    /// T1 waits at 10; T2 runs [10,20), unwaits T1 at 20.
    fn simple_chain() -> TraceStream {
        let mut stacks = StackTable::new();
        let s = stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), s);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, s);
        b.push_running(ThreadId(2), TimeNs(10), TimeNs(10), s);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(20), s);
        b.push_running(ThreadId(1), TimeNs(20), TimeNs(5), s);
        b.finish().unwrap()
    }

    #[test]
    fn simple_wait_chain_is_restored() {
        let s = simple_chain();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(1, 0, 25));
        assert_eq!(wg.roots().len(), 3); // run, wait, run
        let wait_root = wg
            .roots()
            .iter()
            .map(|&r| wg.node(r))
            .find(|n| n.kind.is_wait())
            .expect("wait root");
        assert_eq!(wait_root.duration, TimeNs(10));
        assert_eq!(wait_root.children.len(), 1);
        let child = wg.node(wait_root.children[0]);
        assert_eq!(child.kind, NodeKind::Running);
        assert_eq!(child.tid, ThreadId(2));
    }

    #[test]
    fn nested_chain_two_levels() {
        // T1 waits at 10 for T2; T2 waits at 10 for T3; T3 runs [10,30),
        // unwaits T2 at 30; T2 runs [30,35), unwaits T1 at 35.
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, s0);
        b.push_wait(ThreadId(2), TimeNs(10), TimeNs::ZERO, s0);
        b.push_running(ThreadId(3), TimeNs(10), TimeNs(20), s0);
        b.push_unwait(ThreadId(3), ThreadId(2), TimeNs(30), s0);
        b.push_running(ThreadId(2), TimeNs(30), TimeNs(5), s0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(35), s0);
        let s = b.finish().unwrap();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(1, 0, 40));
        assert_eq!(wg.roots().len(), 1);
        let root = wg.node(wg.roots()[0]);
        assert_eq!(root.duration, TimeNs(25)); // 10 → 35
                                               // Children: T2's wait (recursing to T3) and T2's running event.
        assert_eq!(root.children.len(), 2);
        let nested_wait = root
            .children
            .iter()
            .map(|&c| wg.node(c))
            .find(|n| n.kind.is_wait())
            .expect("nested wait");
        assert_eq!(nested_wait.duration, TimeNs(20)); // 10 → 30
        let leaf = wg.node(nested_wait.children[0]);
        assert_eq!(leaf.tid, ThreadId(3));
        assert_eq!(leaf.duration, TimeNs(20));
    }

    #[test]
    fn unpaired_wait_clips_to_window() {
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, s0);
        let s = b.finish().unwrap();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(1, 0, 50));
        let root = wg.node(wg.roots()[0]);
        assert_eq!(root.kind, NodeKind::UnpairedWait);
        assert_eq!(root.duration, TimeNs(40));
    }

    #[test]
    fn events_outside_window_are_excluded() {
        let s = simple_chain();
        let idx = StreamIndex::new(&s);
        // Window [21, 26): only the last running event.
        let wg = WaitGraph::build(&s, &idx, &instance(1, 21, 26));
        // The running event [20,25) spans 21 and is included; nothing else.
        assert_eq!(wg.roots().len(), 1);
        assert_eq!(wg.node(wg.roots()[0]).t, TimeNs(20));
    }

    #[test]
    fn unwait_events_never_become_nodes() {
        let s = simple_chain();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(2, 0, 25));
        for n in wg.nodes() {
            assert!(matches!(
                n.kind,
                NodeKind::Running
                    | NodeKind::Wait { .. }
                    | NodeKind::Hardware
                    | NodeKind::UnpairedWait
            ));
            let e = s.event(n.event).unwrap();
            assert_ne!(e.kind, EventKind::Unwait);
        }
    }

    #[test]
    fn mutual_wait_cycle_is_cut() {
        // Pathological stream: T1 waits, T2 "unwaits" T1 but T2's own
        // wait pairs back through T1 — forged to exercise the guard.
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["a!b"]);
        // Simultaneous waits with crossing unwaits force re-entry into
        // the same wait event on the recursion path.
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(5), TimeNs::ZERO, s0);
        b.push_wait(ThreadId(2), TimeNs(5), TimeNs::ZERO, s0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(10), s0);
        b.push_unwait(ThreadId(1), ThreadId(2), TimeNs(9), s0);
        let s = b.finish().unwrap();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(1, 0, 20));
        // Must terminate; the inner re-entry of T1's wait becomes a leaf.
        assert!(wg.node_count() >= 2);
        assert!(wg.nodes().iter().any(|n| n.kind == NodeKind::UnpairedWait));
    }

    #[test]
    fn build_all_matches_sequential_builds() {
        let s = simple_chain();
        let idx = StreamIndex::new(&s);
        let instances = vec![
            instance(1, 0, 25),
            instance(2, 0, 25),
            instance(1, 21, 26),
            instance(1, 0, 25),
        ];
        let telemetry = tracelens_obs::Telemetry::noop();
        let expected: Vec<WaitGraph> = instances
            .iter()
            .map(|i| WaitGraph::build(&s, &idx, i))
            .collect();
        for jobs in [1, 2, 4] {
            let pool = tracelens_pool::Pool::new(jobs);
            let got = WaitGraph::build_all(&s, &idx, &instances, &pool, &telemetry);
            assert_eq!(got.len(), expected.len(), "jobs={jobs}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.roots(), e.roots(), "jobs={jobs}");
                assert_eq!(g.node_count(), e.node_count(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn hardware_events_become_leaves() {
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["kernel!Worker", "DiskService!Transfer"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, s0);
        b.push_hardware(ThreadId(2), TimeNs(0), TimeNs(30), s0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), s0);
        let s = b.finish().unwrap();
        let idx = StreamIndex::new(&s);
        let wg = WaitGraph::build(&s, &idx, &instance(1, 0, 40));
        let root = wg.node(wg.roots()[0]);
        assert_eq!(root.children.len(), 1);
        let hw = wg.node(root.children[0]);
        assert_eq!(hw.kind, NodeKind::Hardware);
        assert_eq!(hw.duration, TimeNs(30));
    }
}
