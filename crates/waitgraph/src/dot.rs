//! Graphviz (DOT) rendering of Wait Graphs, for inspection and examples.

use crate::graph::{NodeKind, WaitGraph};
use std::fmt::Write as _;
use tracelens_model::StackTable;

impl WaitGraph {
    /// Renders the graph in Graphviz DOT syntax. Node labels show the
    /// event kind, the innermost callstack frame, and the duration.
    pub fn to_dot(&self, stacks: &StackTable) -> String {
        let mut out =
            String::from("digraph waitgraph {\n  rankdir=TB;\n  node [shape=box,fontsize=10];\n");
        for (_, id) in self.dfs() {
            let n = self.node(id);
            let frame = stacks
                .frames(n.stack)
                .last()
                .and_then(|&s| stacks.symbols().resolve(s))
                .unwrap_or("?");
            let (kind, shape) = match n.kind {
                NodeKind::Running => ("run", "box"),
                NodeKind::Wait { .. } => ("wait", "ellipse"),
                NodeKind::UnpairedWait => ("wait?", "ellipse"),
                NodeKind::Hardware => ("hw", "hexagon"),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{} {}\\n{} {}\",shape={}];",
                id.0,
                kind,
                n.tid,
                escape(frame),
                n.duration,
                shape
            );
            for &c in &n.children {
                let _ = writeln!(out, "  n{} -> n{};", id.0, c.0);
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::index::StreamIndex;
    use crate::WaitGraph;
    use tracelens_model::{
        ScenarioInstance, ScenarioName, StackTable, ThreadId, TimeNs, TraceId, TraceStreamBuilder,
    };

    #[test]
    fn dot_output_is_wellformed() {
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["app!Main", "fs.sys!Read"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, s0);
        b.push_running(ThreadId(2), TimeNs(0), TimeNs(5), s0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(5), s0);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let wg = WaitGraph::build(
            &stream,
            &idx,
            &ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("T"),
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(10),
            },
        );
        let dot = wg.to_dot(&stacks);
        assert!(dot.starts_with("digraph waitgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("fs.sys!Read"));
        assert!(dot.contains("->"));
    }
}
