//! The Wait Graph structure (Definition 1).

use std::fmt;
use tracelens_model::{EventId, StackId, ThreadId, TimeNs, TraceId};

/// Handle to a node within a [`WaitGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a Wait-Graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A running (CPU sample) event.
    Running,
    /// A wait event, already paired with its unwait event: `unwait_*`
    /// describe the signalling side, used later when the Aggregated Wait
    /// Graph merges the pair into a single waiting node.
    Wait {
        /// The paired unwait event in the source stream.
        unwait: EventId,
        /// Callstack of the unwait event.
        unwait_stack: StackId,
        /// Thread that signalled.
        unwait_tid: ThreadId,
    },
    /// A wait event whose unwait was never observed (truncated trace);
    /// its duration is clipped to the instance end.
    UnpairedWait,
    /// A hardware-service event.
    Hardware,
}

impl NodeKind {
    /// Whether this node is a (paired or unpaired) wait.
    pub fn is_wait(&self) -> bool {
        matches!(self, NodeKind::Wait { .. } | NodeKind::UnpairedWait)
    }
}

/// One node: a tracing event plus its propagation children.
#[derive(Debug, Clone)]
pub struct Node {
    /// The source event's id within its trace stream.
    pub event: EventId,
    /// Kind and pairing information.
    pub kind: NodeKind,
    /// Thread that emitted the event.
    pub tid: ThreadId,
    /// Event callstack.
    pub stack: StackId,
    /// Event start time.
    pub t: TimeNs,
    /// Event duration; for wait nodes this is the *restored* duration
    /// (unwait timestamp minus wait timestamp).
    pub duration: TimeNs,
    /// Children: nodes whose operations execute within this node's wait
    /// interval (only wait nodes have children).
    pub children: Vec<NodeId>,
}

/// A Wait Graph for a single scenario instance (Definition 1).
///
/// Nodes form a forest: roots are the top-level events of the initiating
/// thread within the instance window; every edge starts at a wait node.
/// The same source *event* may back multiple nodes (two waits can be
/// signalled through the same thread), which is how cost propagation
/// across instances manifests.
#[derive(Debug, Clone)]
pub struct WaitGraph {
    trace: TraceId,
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl WaitGraph {
    pub(crate) fn from_parts(trace: TraceId, nodes: Vec<Node>, roots: Vec<NodeId>) -> Self {
        WaitGraph {
            trace,
            nodes,
            roots,
        }
    }

    /// The trace stream this graph was built from.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Root node ids (top-level events of the initiating thread).
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes in creation order (parents before their children).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates nodes in depth-first pre-order from the roots, yielding
    /// `(depth, NodeId)`.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs {
            graph: self,
            stack: self.roots.iter().rev().map(|&r| (0, r)).collect(),
        }
    }

    /// The *dominant path* of the instance: starting from the
    /// longest-duration root wait, repeatedly descend into the child
    /// with the largest duration — the operation that explains the bulk
    /// of each wait. Empty if the graph has no wait roots.
    ///
    /// This is the chain an analyst walks in Figure 1: UI wait → worker
    /// wait → … → the disk service at the bottom.
    pub fn dominant_path(&self) -> Vec<NodeId> {
        let Some(&root) = self
            .roots
            .iter()
            .filter(|&&r| self.node(r).kind.is_wait())
            .max_by_key(|&&r| self.node(r).duration)
        else {
            return Vec::new();
        };
        let mut path = vec![root];
        let mut cur = root;
        loop {
            let node = self.node(cur);
            let Some(&next) = node.children.iter().max_by_key(|&&c| self.node(c).duration) else {
                break;
            };
            path.push(next);
            cur = next;
        }
        path
    }
}

impl tracelens_model::HeapSize for Node {
    fn heap_size(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl tracelens_model::HeapSize for WaitGraph {
    fn heap_size(&self) -> usize {
        self.nodes.heap_size() + self.roots.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// Depth-first pre-order traversal over a [`WaitGraph`].
#[derive(Debug)]
pub struct Dfs<'a> {
    graph: &'a WaitGraph,
    stack: Vec<(usize, NodeId)>,
}

impl Iterator for Dfs<'_> {
    type Item = (usize, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let (depth, id) = self.stack.pop()?;
        let node = self.graph.node(id);
        for &c in node.children.iter().rev() {
            self.stack.push((depth + 1, c));
        }
        Some((depth, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackId;

    fn leaf(event: u32, t: u64, dur: u64) -> Node {
        Node {
            event: EventId(event),
            kind: NodeKind::Running,
            tid: ThreadId(1),
            stack: StackId(0),
            t: TimeNs(t),
            duration: TimeNs(dur),
            children: Vec::new(),
        }
    }

    #[test]
    fn dfs_preorder() {
        // root wait -> [leaf a, leaf b]
        let mut root = Node {
            event: EventId(0),
            kind: NodeKind::Wait {
                unwait: EventId(9),
                unwait_stack: StackId(0),
                unwait_tid: ThreadId(2),
            },
            tid: ThreadId(1),
            stack: StackId(0),
            t: TimeNs(0),
            duration: TimeNs(10),
            children: vec![NodeId(1), NodeId(2)],
        };
        root.children = vec![NodeId(1), NodeId(2)];
        let g = WaitGraph::from_parts(
            TraceId(0),
            vec![root, leaf(1, 1, 2), leaf(2, 3, 2)],
            vec![NodeId(0)],
        );
        let order: Vec<(usize, u32)> = g.dfs().map(|(d, n)| (d, n.0)).collect();
        assert_eq!(order, [(0, 0), (1, 1), (1, 2)]);
        assert_eq!(g.node_count(), 3);
        assert!(!g.is_empty());
        assert!(g.node(NodeId(0)).kind.is_wait());
        assert!(!g.node(NodeId(1)).kind.is_wait());
    }

    #[test]
    fn empty_graph() {
        let g = WaitGraph::from_parts(TraceId(3), Vec::new(), Vec::new());
        assert!(g.is_empty());
        assert_eq!(g.dfs().count(), 0);
        assert_eq!(g.trace(), TraceId(3));
        assert!(g.dominant_path().is_empty());
    }

    fn wait(event: u32, t: u64, dur: u64, children: Vec<NodeId>) -> Node {
        Node {
            event: EventId(event),
            kind: NodeKind::Wait {
                unwait: EventId(99),
                unwait_stack: StackId(0),
                unwait_tid: ThreadId(2),
            },
            tid: ThreadId(1),
            stack: StackId(0),
            t: TimeNs(t),
            duration: TimeNs(dur),
            children,
        }
    }

    #[test]
    fn dominant_path_follows_largest_children() {
        // Root wait [0,100); children: a short leaf and a nested wait
        // carrying most of the time, whose own child is the disk op.
        let nodes = vec![
            wait(0, 0, 100, vec![NodeId(1), NodeId(2)]), // n0 root
            leaf(1, 20, 20),                             // n1 ends 40
            wait(2, 10, 85, vec![NodeId(3)]),            // n2 ends 95
            leaf(3, 30, 60),                             // n3 ends 90
        ];
        let g = WaitGraph::from_parts(TraceId(0), nodes, vec![NodeId(0)]);
        let path: Vec<u32> = g.dominant_path().iter().map(|n| n.0).collect();
        assert_eq!(path, [0, 2, 3]);
    }

    #[test]
    fn dominant_path_picks_longest_wait_root() {
        let nodes = vec![
            wait(0, 0, 10, vec![]),
            wait(1, 20, 50, vec![]),
            leaf(2, 80, 100), // running roots are not chain starts
        ];
        let g = WaitGraph::from_parts(TraceId(0), nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(g.dominant_path(), vec![NodeId(1)]);
    }
}
