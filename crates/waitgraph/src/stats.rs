//! Summary statistics over a Wait Graph.

use crate::graph::{NodeKind, WaitGraph};
use tracelens_model::TimeNs;

/// Aggregate statistics of one [`WaitGraph`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total nodes.
    pub nodes: usize,
    /// Wait nodes (paired + unpaired).
    pub wait_nodes: usize,
    /// Running nodes.
    pub running_nodes: usize,
    /// Hardware-service nodes.
    pub hardware_nodes: usize,
    /// Maximum depth (root = 0); zero for an empty graph.
    pub max_depth: usize,
    /// Sum of root-level wait durations.
    pub root_wait_time: TimeNs,
    /// Sum of hardware-service durations anywhere in the graph.
    pub hardware_time: TimeNs,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &WaitGraph) -> GraphStats {
        let mut s = GraphStats::default();
        for (depth, id) in graph.dfs() {
            let n = graph.node(id);
            s.nodes += 1;
            s.max_depth = s.max_depth.max(depth);
            match n.kind {
                NodeKind::Wait { .. } | NodeKind::UnpairedWait => {
                    s.wait_nodes += 1;
                    if depth == 0 {
                        s.root_wait_time += n.duration;
                    }
                }
                NodeKind::Running => s.running_nodes += 1,
                NodeKind::Hardware => {
                    s.hardware_nodes += 1;
                    s.hardware_time += n.duration;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::StreamIndex;
    use tracelens_model::{
        ScenarioInstance, ScenarioName, StackTable, ThreadId, TimeNs, TraceId, TraceStreamBuilder,
    };

    #[test]
    fn counts_kinds_and_depth() {
        let mut stacks = StackTable::new();
        let s0 = stacks.intern_symbols(&["a!b"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, s0);
        b.push_hardware(ThreadId(2), TimeNs(0), TimeNs(8), s0);
        b.push_running(ThreadId(2), TimeNs(8), TimeNs(2), s0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(10), s0);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let wg = crate::WaitGraph::build(
            &stream,
            &idx,
            &ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("T"),
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(20),
            },
        );
        let stats = GraphStats::of(&wg);
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.wait_nodes, 1);
        assert_eq!(stats.running_nodes, 1);
        assert_eq!(stats.hardware_nodes, 1);
        assert_eq!(stats.max_depth, 1);
        assert_eq!(stats.root_wait_time, TimeNs(10));
        assert_eq!(stats.hardware_time, TimeNs(8));
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let wg = crate::WaitGraph::from_parts(TraceId(0), Vec::new(), Vec::new());
        assert_eq!(GraphStats::of(&wg), GraphStats::default());
    }
}
