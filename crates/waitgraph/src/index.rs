//! Per-stream indices that make Wait-Graph construction near-linear.
//!
//! A stream is shared by every scenario instance recorded in it, so the
//! index is built once per stream and reused across instance graphs.

use std::collections::{HashMap, HashSet};
use tracelens_model::{EventId, EventKind, HeapSize, ThreadId, TimeNs, TraceStream};

/// Precomputed lookup structures over one [`TraceStream`]:
///
/// * per-thread event lists (sorted by time) for wait-interval queries,
/// * per-woken-thread unwait lists for wait/unwait pairing,
/// * per-event *effective ends*: for wait events the timestamp of the
///   paired unwait (their raw cost is zero until restored), for other
///   events `t + cost`.
#[derive(Debug, Clone)]
pub struct StreamIndex {
    /// tid → events of that thread, in time order.
    by_thread: HashMap<ThreadId, Vec<EventId>>,
    /// woken tid → unwait events targeting it, in time order.
    unwaits_for: HashMap<ThreadId, Vec<EventId>>,
    /// event id → effective end timestamp.
    effective_end: Vec<TimeNs>,
    /// Wait events with no pairable unwait (truncated or lossy traces).
    orphan_waits: usize,
    /// Unwait events never selected as any wait's pair (their wait was
    /// dropped, or they predate every wait of the woken thread).
    stray_unwaits: usize,
}

impl StreamIndex {
    /// Builds the index for `stream`.
    pub fn new(stream: &TraceStream) -> Self {
        let mut by_thread: HashMap<ThreadId, Vec<EventId>> = HashMap::new();
        let mut unwaits_for: HashMap<ThreadId, Vec<EventId>> = HashMap::new();
        for (i, e) in stream.events().iter().enumerate() {
            let id = EventId(i as u32);
            by_thread.entry(e.tid).or_default().push(id);
            if e.kind == EventKind::Unwait {
                if let Some(w) = e.wtid {
                    unwaits_for.entry(w).or_default().push(id);
                }
            }
        }
        let mut index = StreamIndex {
            by_thread,
            unwaits_for,
            effective_end: Vec::with_capacity(stream.len()),
            orphan_waits: 0,
            stray_unwaits: 0,
        };
        let mut paired: HashSet<EventId> = HashSet::new();
        let mut total_unwaits = 0usize;
        for (i, e) in stream.events().iter().enumerate() {
            if e.kind == EventKind::Unwait {
                total_unwaits += 1;
            }
            let end = if e.kind == EventKind::Wait {
                match index.pair_unwait(stream, e.tid, e.t) {
                    Some(u) => {
                        paired.insert(u);
                        stream.event(u).map(|u| u.t).unwrap_or(e.end())
                    }
                    None => {
                        index.orphan_waits += 1;
                        e.end()
                    }
                }
            } else {
                e.end()
            };
            debug_assert_eq!(index.effective_end.len(), i);
            index.effective_end.push(end);
        }
        index.stray_unwaits = total_unwaits - paired.len();
        index
    }

    /// Wait events of this stream whose unwait is missing — the lossy
    /// reality Wait-Graph construction turns into
    /// [`crate::NodeKind::UnpairedWait`] leaves. Zero on pristine
    /// simulator output.
    pub fn orphan_waits(&self) -> usize {
        self.orphan_waits
    }

    /// Unwait events never selected as any wait's pair. They are
    /// counted here and otherwise ignored by graph construction (an
    /// unwait never becomes a node). Zero on pristine simulator output.
    pub fn stray_unwaits(&self) -> usize {
        self.stray_unwaits
    }

    /// [`StreamIndex::new`] with telemetry: reports index counters and a
    /// per-stream indexing-time histogram. With a disabled handle this
    /// is exactly `new`.
    pub fn new_traced(stream: &TraceStream, telemetry: &tracelens_obs::Telemetry) -> Self {
        if !telemetry.enabled() {
            return StreamIndex::new(stream);
        }
        let start = std::time::Instant::now();
        let index = StreamIndex::new(stream);
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.count("waitgraph.indices", 1);
        telemetry.count("waitgraph.indexed_events", stream.len() as u64);
        telemetry.record("waitgraph.index_ns", elapsed);
        if index.orphan_waits > 0 {
            telemetry.count("waitgraph.orphan_waits", index.orphan_waits as u64);
        }
        if index.stray_unwaits > 0 {
            telemetry.count("waitgraph.stray_unwaits", index.stray_unwaits as u64);
        }
        index
    }

    /// The earliest unwait event waking `tid` at or after `from`.
    pub fn pair_unwait(
        &self,
        stream: &TraceStream,
        tid: ThreadId,
        from: TimeNs,
    ) -> Option<EventId> {
        let list = self.unwaits_for.get(&tid)?;
        let lo = list.partition_point(|&id| stream.event(id).map(|e| e.t < from).unwrap_or(false));
        list.get(lo).copied()
    }

    /// The effective end of an event: for wait events the paired unwait
    /// timestamp, otherwise `t + cost`. Zero for unknown ids.
    pub fn effective_end(&self, id: EventId) -> TimeNs {
        self.effective_end
            .get(id.0 as usize)
            .copied()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Events of `tid` whose effective interval overlaps the half-open
    /// interval `[from, to)`, in time order.
    ///
    /// Relies on per-thread event intervals being non-overlapping (a
    /// suspended thread emits nothing, sampled running events are
    /// sequential), so the events spanning `from` form a contiguous run
    /// directly before the first event starting at or after `from`.
    pub fn thread_events_overlapping(
        &self,
        stream: &TraceStream,
        tid: ThreadId,
        from: TimeNs,
        to: TimeNs,
    ) -> Vec<EventId> {
        let Some(list) = self.by_thread.get(&tid) else {
            return Vec::new();
        };
        let mut lo =
            list.partition_point(|&id| stream.event(id).map(|e| e.t < from).unwrap_or(false));
        // Step back over events that start before `from` but spill into
        // the interval (e.g. a wait that is still pending at `from`).
        while lo > 0 && self.effective_end(list[lo - 1]) > from {
            lo -= 1;
        }
        list[lo..]
            .iter()
            .copied()
            .take_while(|&id| stream.event(id).map(|e| e.t < to).unwrap_or(false))
            .collect()
    }

    /// Events of `tid` in time order (empty for unknown threads).
    pub fn thread_events(&self, tid: ThreadId) -> &[EventId] {
        self.by_thread.get(&tid).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl HeapSize for StreamIndex {
    fn heap_size(&self) -> usize {
        self.by_thread.heap_size() + self.unwaits_for.heap_size() + self.effective_end.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{StackId, TraceStreamBuilder};

    fn stream() -> TraceStream {
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), StackId(0));
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, StackId(0));
        b.push_running(ThreadId(2), TimeNs(5), TimeNs(10), StackId(0));
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(15), StackId(0));
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(25), StackId(0));
        b.finish().unwrap()
    }

    #[test]
    fn pairing_finds_earliest_at_or_after() {
        let s = stream();
        let idx = StreamIndex::new(&s);
        let u = idx.pair_unwait(&s, ThreadId(1), TimeNs(10)).unwrap();
        assert_eq!(s.event(u).unwrap().t, TimeNs(15));
        let u2 = idx.pair_unwait(&s, ThreadId(1), TimeNs(16)).unwrap();
        assert_eq!(s.event(u2).unwrap().t, TimeNs(25));
        assert!(idx.pair_unwait(&s, ThreadId(1), TimeNs(26)).is_none());
        assert!(idx.pair_unwait(&s, ThreadId(9), TimeNs(0)).is_none());
    }

    #[test]
    fn effective_end_of_wait_is_paired_unwait_time() {
        let s = stream();
        let idx = StreamIndex::new(&s);
        // Event 1 (after sorting) is the wait at t=10 → paired at 15.
        let wait_id = s
            .events()
            .iter()
            .position(|e| e.kind == EventKind::Wait)
            .unwrap();
        assert_eq!(idx.effective_end(EventId(wait_id as u32)), TimeNs(15));
        // Unknown ids are zero.
        assert_eq!(idx.effective_end(EventId(999)), TimeNs::ZERO);
    }

    #[test]
    fn overlap_includes_spanning_event() {
        let s = stream();
        let idx = StreamIndex::new(&s);
        // Thread 2's running event [5, 15) spans from=10.
        let hits = idx.thread_events_overlapping(&s, ThreadId(2), TimeNs(10), TimeNs(15));
        let times: Vec<u64> = hits.iter().map(|&id| s.event(id).unwrap().t.0).collect();
        assert!(times.contains(&5), "spanning event included: {times:?}");
    }

    #[test]
    fn overlap_includes_pending_wait_started_earlier() {
        // Thread 2 waits at t=5 (zero raw cost), paired at t=50: it is
        // still pending at from=20 and must be included.
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(2), TimeNs(5), TimeNs::ZERO, StackId(0));
        b.push_unwait(ThreadId(3), ThreadId(2), TimeNs(50), StackId(0));
        let s = b.finish().unwrap();
        let idx = StreamIndex::new(&s);
        let hits = idx.thread_events_overlapping(&s, ThreadId(2), TimeNs(20), TimeNs(60));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.event(hits[0]).unwrap().t, TimeNs(5));
    }

    #[test]
    fn overlap_excludes_disjoint() {
        let s = stream();
        let idx = StreamIndex::new(&s);
        let hits = idx.thread_events_overlapping(&s, ThreadId(2), TimeNs(40), TimeNs(50));
        assert!(hits.is_empty());
        let none = idx.thread_events_overlapping(&s, ThreadId(7), TimeNs(0), TimeNs(50));
        assert!(none.is_empty());
    }

    #[test]
    fn orphan_and_stray_counters() {
        // Fixture: one wait paired with the unwait at t=15; the second
        // unwait at t=25 wakes nobody → stray.
        let s = stream();
        let idx = StreamIndex::new(&s);
        assert_eq!(idx.orphan_waits(), 0);
        assert_eq!(idx.stray_unwaits(), 1);

        // A wait with no unwait anywhere is an orphan.
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, StackId(0));
        b.push_running(ThreadId(2), TimeNs(0), TimeNs(5), StackId(0));
        let lossy = b.finish().unwrap();
        let idx = StreamIndex::new(&lossy);
        assert_eq!(idx.orphan_waits(), 1);
        assert_eq!(idx.stray_unwaits(), 0);

        // An unwait strictly before every wait of the woken thread is
        // stray, and leaves the wait orphaned.
        let mut b = TraceStreamBuilder::new(0);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(5), StackId(0));
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, StackId(0));
        let skewed = b.finish().unwrap();
        let idx = StreamIndex::new(&skewed);
        assert_eq!(idx.orphan_waits(), 1);
        assert_eq!(idx.stray_unwaits(), 1);
    }

    #[test]
    fn thread_events_sorted() {
        let s = stream();
        let idx = StreamIndex::new(&s);
        let evs = idx.thread_events(ThreadId(2));
        let times: Vec<u64> = evs.iter().map(|&id| s.event(id).unwrap().t.0).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
