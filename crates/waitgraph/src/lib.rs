//! # tracelens-waitgraph
//!
//! Wait Graph construction (the paper's §3.1, after StackMine):
//! a [`WaitGraph`] models one scenario instance, encoding wait/unwait
//! chains among threads so both running and waiting time can be measured
//! per component.
//!
//! Construction pairs each wait event with its corresponding unwait event
//! (the earliest unwait targeting the waiting thread at or after the wait
//! start), restores wait durations from the paired timestamps, and makes
//! the signalling thread's events during the wait interval the children
//! of the wait node — recursively, so multi-lock propagation chains
//! become multi-level graphs.
//!
//! ```
//! use tracelens_sim::{DatasetBuilder, ScenarioMix};
//! use tracelens_waitgraph::{StreamIndex, WaitGraph};
//!
//! let ds = DatasetBuilder::new(1).traces(2).mix(ScenarioMix::Selected).build();
//! let instance = &ds.instances[0];
//! let stream = ds.stream_of(instance).unwrap();
//! let index = StreamIndex::new(stream);
//! let wg = WaitGraph::build(stream, &index, instance);
//! assert!(wg.node_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod dot;
mod graph;
mod index;
mod stats;

pub use graph::{Node, NodeId, NodeKind, WaitGraph};
pub use index::StreamIndex;
pub use stats::GraphStats;
