//! # tracelens
//!
//! Comprehending performance from execution traces: a Rust implementation
//! of the two-step trace-analysis approach of *"Comprehending
//! Performance from Real-World Execution Traces: A Device-Driver Case"*
//! (ASPLOS 2014) — **impact analysis** over Wait Graphs and **causality
//! analysis** via contrast data mining over Aggregated Wait Graphs —
//! together with the discrete-event OS/driver simulator used to generate
//! ETW-shaped synthetic trace data sets.
//!
//! This facade crate re-exports the public API of the component crates
//! and adds the [`Study`] driver that runs the paper's full evaluation
//! workflow over a data set.
//!
//! ## Quickstart
//!
//! ```
//! use tracelens::prelude::*;
//!
//! // 1. Obtain a data set (here: simulate 20 machine traces).
//! let ds = DatasetBuilder::new(42).traces(20).build();
//!
//! // 2. Impact analysis: how much do device drivers matter?
//! let impact = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
//! assert!(impact.ia_wait() > impact.ia_run());
//!
//! // 3. Causality analysis on a high-impact scenario.
//! let report = CausalityAnalysis::default()
//!     .analyze(&ds, &ScenarioName::new("BrowserTabCreate"));
//! if let Ok(report) = report {
//!     for p in report.top(3) {
//!         println!("avg {}\n{}", p.avg_cost(), p.tuple.render(&ds.stacks));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod report;
pub mod selfreport;
pub mod store;
mod study;

pub use checkpoint::Checkpoint;
pub use report::{render_markdown, ReportOptions};
pub use selfreport::SelfObservation;
pub use store::{CacheFallback, IngestReport, IngestSource};
pub use study::{
    estimated_unit_bytes, Coverage, ScenarioStudy, Study, StudyConfig, StudyError, CAUSALITY_STAGE,
    DEGRADED_SEGMENT_BOUND, GRAPH_BYTES_PER_EVENT, INDEX_BYTES_PER_EVENT, SCENARIO_STAGE,
};

pub use tracelens_baselines as baselines;
pub use tracelens_causality as causality;
pub use tracelens_faults as faults;
pub use tracelens_impact as impact;
pub use tracelens_model as model;
pub use tracelens_obs as obs;
pub use tracelens_pool as pool;
pub use tracelens_selftrace as selftrace;
pub use tracelens_sim as sim;
pub use tracelens_waitgraph as waitgraph;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use tracelens_baselines::{CallGraphProfile, CostlyStackReport, LockContentionReport};
    pub use tracelens_causality::{
        locate_pattern, CausalityAnalysis, CausalityConfig, CausalityError, CausalityReport,
        ContrastPattern, PatternSite, SignatureSetTuple, Triage,
    };
    pub use tracelens_faults::{
        ExecFault, ExecFaultPlan, FaultInjector, FaultKind, FaultLog, FlakyReader, MemFaultPlan,
        ReadFaultPlan, ALL_FAULT_KINDS,
    };
    pub use tracelens_impact::{ImpactAnalyzer, ImpactReport};
    pub use tracelens_model::textio::{RetryPolicy, RetryingReader};
    pub use tracelens_model::HeapSize;
    pub use tracelens_model::{
        ComponentFilter, Dataset, DatasetSummary, DriverType, DurationStats, SanitizeReport,
        Scenario, ScenarioInstance, ScenarioName, StackTable, Thresholds, TimeNs, TraceStream,
        TraceStreamBuilder,
    };
    pub use tracelens_obs::{stage, CollectingSink, RunReport, Telemetry};
    pub use tracelens_pool::{
        Admission, Degradation, ExecutionReport, FailureReason, GovernPolicy, GovernReport,
        OverBudgetAction, Pool, SupervisePolicy, UnitDecision, UnitFailure,
    };
    pub use tracelens_selftrace::{chrome_trace_json, SelfTraceSession, SelfTraceSink};
    pub use tracelens_sim::{DatasetBuilder, Machine, ProgramBuilder, ScenarioMix};
    pub use tracelens_waitgraph::{StreamIndex, WaitGraph};

    pub use crate::store::{CacheFallback, IngestReport, IngestSource};
    pub use crate::{Coverage, ScenarioStudy, SelfObservation, Study, StudyConfig, StudyError};
}
