//! The trace store: fast paths for getting a [`Dataset`] off disk.
//!
//! Three ingest modes, fastest first:
//!
//! 1. **Binary cache** — a `.tlb` columnar image next to the text file
//!    (see [`tracelens_model::binio`]). Loaded only when its recorded
//!    fingerprint matches the current text bytes; anything else (torn,
//!    corrupt, stale, version-skewed) falls back to the text parse and
//!    is counted, never fatal.
//! 2. **Sharded-parallel text** — the input is split on `!trace`
//!    boundaries and the shards parsed on `tracelens-pool` workers. The
//!    merged result is byte-identical (via `write_text`) to the serial
//!    parse at every job count; any shard irregularity (including
//!    metadata interleaved between traces, which shards cannot see)
//!    falls back to the serial parse so error messages are identical
//!    too.
//! 3. **Serial text** — [`Dataset::read_text_bytes`], the reference
//!    semantics.
//!
//! Every ingest is instrumented under the `ingest` telemetry stage
//! (span `ingest`, counters `ingest.bytes` / `ingest.events` /
//! `ingest.shards` / `ingest.cache_hits` / `ingest.cache_fallbacks`),
//! and the returned [`IngestReport`] carries the heap estimate the
//! governance layer admits against plus the transport counters
//! (`io_retries`, cache fallback) that `--sanitize` surfaces through
//! `SanitizeReport`.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use tracelens_model::textio::{ReadError, RetryPolicy, RetryingReader};
use tracelens_model::{binio, Dataset, HeapSize};
use tracelens_obs::{stage, Telemetry};
use tracelens_pool::Pool;

/// Which path produced the data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestSource {
    /// Serial text parse (the reference path).
    TextSerial,
    /// Sharded text parse on pool workers, deterministically merged.
    TextParallel,
    /// Loaded from a fingerprint-matching `.tlb` cache.
    BinaryCache,
}

impl fmt::Display for IngestSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IngestSource::TextSerial => "text (serial)",
            IngestSource::TextParallel => "text (parallel)",
            IngestSource::BinaryCache => "binary cache",
        })
    }
}

/// Why a requested `.tlb` cache was not used. Transport-level: the
/// resulting data set is the same either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFallback {
    /// No cache file next to the input yet.
    Missing,
    /// The cache's fingerprint does not match the current text (the
    /// input changed since it was packed).
    Stale,
    /// The cache failed to load: torn write, bit rot, bad magic, or a
    /// different format version.
    Corrupt,
}

impl fmt::Display for CacheFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheFallback::Missing => "missing",
            CacheFallback::Stale => "stale",
            CacheFallback::Corrupt => "corrupt",
        })
    }
}

/// How one data set was ingested: the path taken, the sizes moved, and
/// the transport incidents absorbed along the way.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Which path produced the data set.
    pub source: IngestSource,
    /// Bytes read from the source (text bytes, or `.tlb` bytes when the
    /// cache was used).
    pub bytes: usize,
    /// Events in the resulting data set.
    pub events: usize,
    /// Transient I/O errors absorbed by retried reads.
    pub io_retries: usize,
    /// Why the cache was skipped, when `--cache` asked for one.
    pub cache_fallback: Option<CacheFallback>,
    /// Whether a fresh `.tlb` cache was written after a text parse.
    pub cache_written: bool,
    /// Whether a corrupt `.tlb` cache was preserved as
    /// `<name>.tlb.quarantined` for post-mortem instead of being
    /// silently repacked over.
    pub cache_quarantined: bool,
    /// [`HeapSize`] estimate of the resulting data set — the number the
    /// governance admission controller budgets against.
    pub dataset_heap_bytes: usize,
}

impl IngestReport {
    fn new(source: IngestSource, bytes: usize, ds: &Dataset) -> IngestReport {
        IngestReport {
            source,
            bytes,
            events: ds.total_events(),
            io_retries: 0,
            cache_fallback: None,
            cache_written: false,
            cache_quarantined: false,
            dataset_heap_bytes: ds.heap_size(),
        }
    }
}

/// Parses in-memory `.tlt` text, sharded across `pool`'s workers when
/// the input and the pool allow it.
///
/// The result is byte-identical (via `write_text`) to
/// [`Dataset::read_text_bytes`] at every job count. Whenever the
/// sharded path cannot reproduce the serial parse exactly — metadata
/// interleaved between traces, or any shard error — the whole input is
/// re-parsed serially, so success *and* failure modes match the serial
/// parser's.
///
/// # Errors
///
/// The serial parser's [`ReadError`] for malformed input.
pub fn ingest_bytes(
    bytes: &[u8],
    pool: &Pool,
    telemetry: &Telemetry,
) -> Result<(Dataset, IngestSource), ReadError> {
    let _span = telemetry.span(stage::INGEST);
    telemetry.count("ingest.bytes", bytes.len() as u64);
    if pool.is_parallel() {
        if let Some(ds) = try_parallel(bytes, pool, telemetry) {
            telemetry.count("ingest.events", ds.total_events() as u64);
            return Ok((ds, IngestSource::TextParallel));
        }
    }
    let ds = Dataset::read_text_bytes(bytes)?;
    telemetry.count("ingest.events", ds.total_events() as u64);
    Ok((ds, IngestSource::TextSerial))
}

/// The sharded parse; `None` means "use the serial parser" (single
/// shard, non-canonical layout, or any shard/merge error — the serial
/// pass then produces the authoritative result or error).
fn try_parallel(bytes: &[u8], pool: &Pool, telemetry: &Telemetry) -> Option<Dataset> {
    let plan = Dataset::plan_text_shards(bytes).ok()?;
    if plan.shards().len() < 2 {
        return None;
    }
    telemetry.count("ingest.shards", plan.shards().len() as u64);
    let outputs = pool.map(plan.shards(), |_, shard| plan.parse_shard(shard));
    let mut parsed = Vec::with_capacity(outputs.len());
    for out in outputs {
        parsed.push(out.ok()?);
    }
    plan.merge(parsed).ok()
}

/// Reads a data set from an arbitrary reader (e.g. stdin), retrying
/// transient I/O errors, then parsing via [`ingest_bytes`]. No cache is
/// consulted — streams have no adjacent path to cache against.
///
/// # Errors
///
/// I/O errors from the reader and parse errors, both as [`ReadError`].
pub fn ingest_reader<R: Read>(
    input: R,
    pool: &Pool,
    telemetry: &Telemetry,
) -> Result<(Dataset, IngestReport), ReadError> {
    let mut reader = RetryingReader::new(input, RetryPolicy::default());
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(ReadError::Io)?;
    let io_retries = reader.retries();
    let (ds, source) = ingest_bytes(&bytes, pool, telemetry)?;
    let mut report = IngestReport::new(source, bytes.len(), &ds);
    report.io_retries = io_retries;
    Ok((ds, report))
}

/// Sharded-parallel ingest with the retry plane on *every* read: the
/// planning pass reads the input once through a [`RetryingReader`],
/// then each shard worker re-opens the source via `open` and re-reads
/// exactly its own byte range ([`tracelens_model::textio::Shard::byte_range`])
/// through an independent [`RetryingReader`] under the same policy —
/// the parallel counterpart of `Dataset::read_text_retrying`, which
/// only guards the serial path.
///
/// The result is byte-identical (via `write_text`) to the serial parse
/// at every job count, and per-shard retry counts sum into
/// [`IngestReport::io_retries`] deterministically: each shard's read
/// schedule depends only on its byte range, not on worker scheduling.
/// Any shard irregularity — non-canonical layout, exhausted retries, a
/// source that yields different bytes on re-read — falls back to the
/// serial parse of the planning pass's bytes, so success and failure
/// modes match the serial parser's.
///
/// # Errors
///
/// I/O errors from the planning read and parse errors, both as
/// [`ReadError`].
pub fn ingest_reader_sharded<R, F>(
    open: F,
    policy: RetryPolicy,
    pool: &Pool,
    telemetry: &Telemetry,
) -> Result<(Dataset, IngestReport), ReadError>
where
    R: Read,
    F: Fn() -> io::Result<R> + Sync,
{
    let _span = telemetry.span(stage::INGEST);
    let mut reader = RetryingReader::new(open().map_err(ReadError::Io)?, policy);
    let mut text = Vec::new();
    reader.read_to_end(&mut text).map_err(ReadError::Io)?;
    let plan_retries = reader.retries();
    telemetry.count("ingest.bytes", text.len() as u64);

    let serial = |text: &[u8]| -> Result<(Dataset, IngestReport), ReadError> {
        let ds = Dataset::read_text_bytes(text)?;
        telemetry.count("ingest.events", ds.total_events() as u64);
        let mut report = IngestReport::new(IngestSource::TextSerial, text.len(), &ds);
        report.io_retries = plan_retries;
        Ok((ds, report))
    };

    if !pool.is_parallel() {
        return serial(&text);
    }
    let Ok(plan) = Dataset::plan_text_shards(&text) else {
        return serial(&text);
    };
    if plan.shards().len() < 2 {
        return serial(&text);
    }
    telemetry.count("ingest.shards", plan.shards().len() as u64);

    let outputs = pool.map(plan.shards(), |_, shard| {
        let source = open().map_err(|_| ())?;
        let mut reader = RetryingReader::new(source, policy);
        let range = shard.byte_range();
        skip_exact(&mut reader, range.start).map_err(|_| ())?;
        let mut buf = vec![0u8; range.len()];
        reader.read_exact(&mut buf).map_err(|_| ())?;
        let out = plan.parse_shard_bytes(shard, &buf).map_err(|_| ())?;
        Ok::<_, ()>((out, reader.retries()))
    });
    let mut parsed = Vec::with_capacity(outputs.len());
    let mut shard_retries = 0usize;
    for out in outputs {
        match out {
            Ok((o, retries)) => {
                shard_retries += retries;
                parsed.push(o);
            }
            Err(()) => return serial(&text),
        }
    }
    match plan.merge(parsed) {
        Ok(ds) => {
            telemetry.count("ingest.events", ds.total_events() as u64);
            let mut report = IngestReport::new(IngestSource::TextParallel, text.len(), &ds);
            report.io_retries = plan_retries + shard_retries;
            Ok((ds, report))
        }
        Err(_) => serial(&text),
    }
}

/// Reads and discards exactly `n` bytes with a fixed chunk size, so the
/// per-shard read schedule (and therefore any injected-fault pattern)
/// is deterministic in the shard's byte range alone.
fn skip_exact<R: Read>(reader: &mut R, mut n: usize) -> io::Result<()> {
    let mut buf = [0u8; 16 * 1024];
    while n > 0 {
        let take = n.min(buf.len());
        match reader.read(&mut buf[..take])? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short read while seeking to shard",
                ))
            }
            got => n -= got,
        }
    }
    Ok(())
}

/// Reads a `.tlt` file, optionally through its `.tlb` binary cache.
///
/// With `cache` set, the sibling cache path ([`cache_path_for`]) is
/// consulted first: a cache whose fingerprint matches the current text
/// bytes is loaded directly; a missing, stale, or corrupt cache is
/// counted in the report and the text is parsed instead — after which a
/// fresh cache is written (atomically: temp file + rename, best-effort)
/// so the next read hits.
///
/// # Errors
///
/// I/O errors opening/reading the text file and parse errors, both as
/// [`ReadError`]. Cache problems are never errors.
pub fn ingest_path(
    path: &Path,
    cache: bool,
    pool: &Pool,
    telemetry: &Telemetry,
) -> Result<(Dataset, IngestReport), ReadError> {
    let file = File::open(path).map_err(ReadError::Io)?;
    let mut reader = RetryingReader::new(file, RetryPolicy::default());
    let mut text = Vec::new();
    reader.read_to_end(&mut text).map_err(ReadError::Io)?;
    let io_retries = reader.retries();

    if !cache {
        let (ds, source) = ingest_bytes(&text, pool, telemetry)?;
        let mut report = IngestReport::new(source, text.len(), &ds);
        report.io_retries = io_retries;
        return Ok((ds, report));
    }

    let cache_path = cache_path_for(path);
    let fingerprint = binio::fingerprint_bytes(&text);
    let (cached, fallback) = load_cache(&cache_path, fingerprint, telemetry);
    if let Some((ds, cache_bytes)) = cached {
        telemetry.count("ingest.cache_hits", 1);
        telemetry.count("ingest.events", ds.total_events() as u64);
        let mut report = IngestReport::new(IngestSource::BinaryCache, cache_bytes, &ds);
        report.io_retries = io_retries;
        return Ok((ds, report));
    }

    let (ds, source) = ingest_bytes(&text, pool, telemetry)?;
    let mut report = IngestReport::new(source, text.len(), &ds);
    report.io_retries = io_retries;
    report.cache_fallback = fallback;
    if fallback.is_some() {
        telemetry.count("ingest.cache_fallbacks", 1);
    }
    if fallback == Some(CacheFallback::Corrupt) {
        report.cache_quarantined = quarantine_cache(&cache_path);
        if report.cache_quarantined {
            telemetry.count("ingest.cache_quarantined", 1);
        }
    }
    report.cache_written = write_cache(&cache_path, &ds, fingerprint);
    Ok((ds, report))
}

/// Where a corrupt cache is preserved: `corpus.tlb` →
/// `corpus.tlb.quarantined`.
pub fn quarantined_cache_path(cache_path: &Path) -> PathBuf {
    cache_path.with_extension("tlb.quarantined")
}

/// Moves a corrupt cache aside for post-mortem instead of repacking
/// over it (best-effort; replaces any earlier quarantined copy).
fn quarantine_cache(cache_path: &Path) -> bool {
    std::fs::rename(cache_path, quarantined_cache_path(cache_path)).is_ok()
}

/// The cache path for a text data set: the same path with a `.tlb`
/// extension (`corpus.tlt` → `corpus.tlb`).
pub fn cache_path_for(path: &Path) -> PathBuf {
    path.with_extension("tlb")
}

/// Attempts the cache load. Returns the data set and the cache's byte
/// size on a fingerprint-matching hit, or the fallback reason.
fn load_cache(
    cache_path: &Path,
    fingerprint: u64,
    telemetry: &Telemetry,
) -> (Option<(Dataset, usize)>, Option<CacheFallback>) {
    let _span = telemetry.span(stage::INGEST);
    let bytes = match std::fs::read(cache_path) {
        Ok(bytes) => bytes,
        Err(_) => return (None, Some(CacheFallback::Missing)),
    };
    // Cheap header check first: a stale cache is rejected without
    // paying for the payload checksum.
    match binio::header_fingerprint(&bytes) {
        Some(fp) if fp != fingerprint => return (None, Some(CacheFallback::Stale)),
        Some(_) => {}
        None => return (None, Some(CacheFallback::Corrupt)),
    }
    match Dataset::read_binary(&bytes) {
        Ok((ds, _)) => {
            let len = bytes.len();
            (Some((ds, len)), None)
        }
        Err(_) => (None, Some(CacheFallback::Corrupt)),
    }
}

/// Writes the cache atomically (temp sibling + rename). Best-effort: a
/// read-only directory or full disk just means no cache next time.
fn write_cache(cache_path: &Path, ds: &Dataset, fingerprint: u64) -> bool {
    let tmp = cache_path.with_extension("tlb.tmp");
    let write = || -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        ds.write_binary(fingerprint, &mut f)?;
        f.sync_all()?;
        std::fs::rename(&tmp, cache_path)
    };
    match write() {
        Ok(()) => true,
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::DatasetBuilder;

    fn text_of(ds: &Dataset) -> Vec<u8> {
        let mut out = Vec::new();
        ds.write_text(&mut out).unwrap();
        out
    }

    fn corpus(traces: usize) -> Vec<u8> {
        text_of(&DatasetBuilder::new(77).traces(traces).build())
    }

    #[test]
    fn parallel_ingest_is_byte_identical_to_serial() {
        let text = corpus(12);
        let serial = Dataset::read_text_bytes(&text).unwrap();
        for jobs in [1, 2, 8] {
            let (ds, source) = ingest_bytes(&text, &Pool::new(jobs), &Telemetry::noop()).unwrap();
            assert_eq!(text_of(&ds), text_of(&serial), "jobs={jobs}");
            let expect = if jobs == 1 {
                IngestSource::TextSerial
            } else {
                IngestSource::TextParallel
            };
            assert_eq!(source, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_ingest_reports_serial_errors() {
        let mut text = corpus(4);
        text.extend_from_slice(b"e\tbogus\n");
        let serial = Dataset::read_text_bytes(&text).unwrap_err();
        let parallel = ingest_bytes(&text, &Pool::new(4), &Telemetry::noop()).unwrap_err();
        assert_eq!(parallel.to_string(), serial.to_string());
    }

    #[test]
    fn cache_roundtrip_hits_and_invalidates() {
        let dir = std::env::temp_dir().join(format!("tl-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tlt");
        std::fs::write(&path, corpus(6)).unwrap();
        let pool = Pool::sequential();
        let tm = Telemetry::noop();

        // Cold: no cache yet; one gets written.
        let (first, r1) = ingest_path(&path, true, &pool, &tm).unwrap();
        assert_eq!(r1.cache_fallback, Some(CacheFallback::Missing));
        assert!(r1.cache_written);
        assert!(cache_path_for(&path).exists());

        // Warm: fingerprint matches, cache is used, same bytes out.
        let (second, r2) = ingest_path(&path, true, &pool, &tm).unwrap();
        assert_eq!(r2.source, IngestSource::BinaryCache);
        assert_eq!(r2.cache_fallback, None);
        assert_eq!(text_of(&first), text_of(&second));

        // Input changes: stale cache is bypassed and rewritten.
        std::fs::write(&path, corpus(7)).unwrap();
        let (_, r3) = ingest_path(&path, true, &pool, &tm).unwrap();
        assert_eq!(r3.cache_fallback, Some(CacheFallback::Stale));
        assert!(r3.cache_written);

        // Corrupt cache: truncate it; fallback still yields the data,
        // and the corrupt file is preserved for post-mortem rather
        // than silently repacked over.
        let cache = cache_path_for(&path);
        let full = std::fs::read(&cache).unwrap();
        let torn = full[..full.len() / 2].to_vec();
        std::fs::write(&cache, &torn).unwrap();
        let (fourth, r4) = ingest_path(&path, true, &pool, &tm).unwrap();
        assert_eq!(r4.cache_fallback, Some(CacheFallback::Corrupt));
        assert!(r4.cache_quarantined);
        assert!(r4.cache_written);
        let preserved = quarantined_cache_path(&cache);
        assert_eq!(std::fs::read(&preserved).unwrap(), torn);
        let (fifth, _) = ingest_path(&path, false, &pool, &tm).unwrap();
        assert_eq!(text_of(&fourth), text_of(&fifth));

        // Second load after quarantine: clean cache hit, quarantined
        // copy untouched.
        let (sixth, r6) = ingest_path(&path, true, &pool, &tm).unwrap();
        assert_eq!(r6.source, IngestSource::BinaryCache);
        assert_eq!(r6.cache_fallback, None);
        assert!(!r6.cache_quarantined);
        assert_eq!(text_of(&fourth), text_of(&sixth));
        assert_eq!(std::fs::read(&preserved).unwrap(), torn);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_retrying_ingest_matches_serial() {
        let text = corpus(10);
        let serial = Dataset::read_text_bytes(&text).unwrap();
        for jobs in [1, 2, 8] {
            let (ds, report) = ingest_reader_sharded(
                || Ok(&text[..]),
                RetryPolicy::default(),
                &Pool::new(jobs),
                &Telemetry::noop(),
            )
            .unwrap();
            assert_eq!(text_of(&ds), text_of(&serial), "jobs={jobs}");
            assert_eq!(report.io_retries, 0);
        }
    }

    #[test]
    fn reader_ingest_never_touches_a_cache() {
        let text = corpus(3);
        let (ds, report) =
            ingest_reader(&text[..], &Pool::sequential(), &Telemetry::noop()).unwrap();
        assert_eq!(report.source, IngestSource::TextSerial);
        assert_eq!(report.cache_fallback, None);
        assert!(!report.cache_written);
        assert_eq!(report.events, ds.total_events());
        assert!(report.dataset_heap_bytes > 0);
    }
}
