//! The full-evaluation driver: the paper's workflow over one data set.

use std::collections::BTreeMap;
use tracelens_causality::{CausalityAnalysis, CausalityConfig, CausalityError, CausalityReport};
use tracelens_impact::{ImpactAnalyzer, ImpactReport};
use tracelens_model::{ComponentFilter, Dataset, ScenarioName};
use tracelens_obs::{stage, Telemetry};

/// Configuration of a [`Study`].
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Component selection (device drivers by default).
    pub components: ComponentFilter,
    /// Causality configuration (segment bound, reduction).
    pub causality: CausalityConfig,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            components: ComponentFilter::suffix(".sys"),
            causality: CausalityConfig::default(),
        }
    }
}

/// Per-scenario results of a study.
#[derive(Debug, Clone)]
pub struct ScenarioStudy {
    /// Impact restricted to this scenario's instances.
    pub impact: ImpactReport,
    /// Impact restricted to this scenario's *slow-class* instances
    /// (the paper's Table-2 "Driver Cost" scope).
    pub slow_impact: ImpactReport,
    /// Causality result, or the reason it could not run (e.g. an empty
    /// contrast class).
    pub causality: Result<CausalityReport, CausalityError>,
}

/// The paper's end-to-end evaluation over a data set: global impact
/// analysis (§5.1) plus per-scenario causality analysis (§5.2).
#[derive(Debug, Clone)]
pub struct Study {
    /// Impact analysis over all instances.
    pub impact: ImpactReport,
    /// Per-scenario results, keyed by scenario name.
    pub scenarios: BTreeMap<ScenarioName, ScenarioStudy>,
}

impl Study {
    /// Runs the study over `dataset` for the scenarios in `names`
    /// (typically the eight selected evaluation scenarios).
    pub fn run(dataset: &Dataset, config: &StudyConfig, names: &[ScenarioName]) -> Study {
        Study::run_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run`] with telemetry: the whole run is wrapped in a
    /// `study` span and every pipeline stage (impact, classification,
    /// Wait-Graph construction, aggregation, segment enumeration,
    /// contrast mining) reports spans and counters through `telemetry`.
    /// With a disabled handle this is exactly `run`.
    pub fn run_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Study {
        let _span = telemetry.span(stage::STUDY);
        let analyzer =
            ImpactAnalyzer::new(config.components.clone()).with_telemetry(telemetry.clone());
        let causality =
            CausalityAnalysis::new(config.causality.clone()).with_telemetry(telemetry.clone());
        let impact = analyzer.analyze(dataset);
        if telemetry.enabled() {
            telemetry.count("study.scenarios", names.len() as u64);
        }
        let mut scenarios = BTreeMap::new();
        for name in names {
            let scenario_impact = analyzer.analyze_where(dataset, |i| &i.scenario == name);
            let thresholds = dataset.scenario(name).map(|s| s.thresholds);
            let slow_impact = match thresholds {
                Some(th) => analyzer.analyze_where(dataset, |i| {
                    &i.scenario == name && th.classify(i.duration()) == Some(false)
                }),
                None => ImpactReport::default(),
            };
            scenarios.insert(
                name.clone(),
                ScenarioStudy {
                    impact: scenario_impact,
                    slow_impact,
                    causality: causality.analyze(dataset, name),
                },
            );
        }
        Study { impact, scenarios }
    }

    /// Runs the study over all scenarios present in the data set.
    pub fn run_all(dataset: &Dataset, config: &StudyConfig) -> Study {
        let names: Vec<ScenarioName> = dataset.scenarios.iter().map(|s| s.name.clone()).collect();
        Study::run(dataset, config, &names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    #[test]
    fn study_runs_selected_scenarios() {
        let ds = DatasetBuilder::new(5)
            .traces(40)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ScenarioName::SELECTED
            .iter()
            .map(|&s| ScenarioName::new(s))
            .collect();
        let study = Study::run(&ds, &StudyConfig::default(), &names);
        assert_eq!(study.scenarios.len(), 8);
        assert!(study.impact.instances > 0);
        let total: usize = study.scenarios.values().map(|s| s.impact.instances).sum();
        assert_eq!(total, ds.instances.len());
        // At least some scenarios have enough data for causality.
        let ok = study
            .scenarios
            .values()
            .filter(|s| s.causality.is_ok())
            .count();
        assert!(ok >= 4, "only {ok} scenarios analyzable");
        // Slow impact is a subset of scenario impact.
        for s in study.scenarios.values() {
            assert!(s.slow_impact.instances <= s.impact.instances);
            assert!(s.slow_impact.d_scn <= s.impact.d_scn);
        }
    }

    #[test]
    fn run_all_covers_dataset_scenarios() {
        let ds = DatasetBuilder::new(6).traces(15).build();
        let study = Study::run_all(&ds, &StudyConfig::default());
        assert_eq!(study.scenarios.len(), ds.scenarios.len());
    }
}
