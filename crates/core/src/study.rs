//! The full-evaluation driver: the paper's workflow over one data set.

use std::collections::BTreeMap;
use tracelens_causality::{CausalityAnalysis, CausalityConfig, CausalityError, CausalityReport};
use tracelens_impact::{ImpactAnalyzer, ImpactReport};
use tracelens_model::{ComponentFilter, Dataset, SanitizeReport, ScenarioName};
use tracelens_obs::{stage, Telemetry};
use tracelens_pool::Pool;

/// Configuration of a [`Study`].
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Component selection (device drivers by default).
    pub components: ComponentFilter,
    /// Causality configuration (segment bound, reduction).
    pub causality: CausalityConfig,
    /// Worker threads for the analysis stages: `1` runs fully
    /// sequential, `0` (the default) picks `TRACELENS_JOBS` or the
    /// machine's available parallelism. Results are byte-identical at
    /// every setting.
    pub jobs: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            components: ComponentFilter::suffix(".sys"),
            causality: CausalityConfig::default(),
            jobs: 0,
        }
    }
}

/// Per-scenario results of a study.
#[derive(Debug, Clone)]
pub struct ScenarioStudy {
    /// Impact restricted to this scenario's instances.
    pub impact: ImpactReport,
    /// Impact restricted to this scenario's *slow-class* instances
    /// (the paper's Table-2 "Driver Cost" scope).
    pub slow_impact: ImpactReport,
    /// Causality result, or the reason it could not run (e.g. an empty
    /// contrast class).
    pub causality: Result<CausalityReport, CausalityError>,
}

/// How much of the input data set the study's numbers actually cover.
///
/// A study over pristine input covers everything. A study over
/// sanitized input ([`Study::run_sanitized`]) covers only what survived
/// quarantine, and every reported metric must be read against these
/// fractions — 80% coverage means the impact and causality numbers
/// describe 80% of the recorded instances, not the machine population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Trace streams in the input data set.
    pub total_traces: usize,
    /// Trace streams the analyses actually saw.
    pub analyzed_traces: usize,
    /// Scenario instances in the input data set.
    pub total_instances: usize,
    /// Scenario instances the analyses actually saw.
    pub analyzed_instances: usize,
    /// Trace streams quarantined by sanitization.
    pub quarantined_traces: usize,
    /// Scenario instances quarantined by sanitization (directly — not
    /// counting instances lost with a quarantined trace).
    pub quarantined_instances: usize,
    /// Individual repairs sanitization applied to surviving data.
    pub repaired: usize,
}

impl Coverage {
    /// Full coverage over `dataset`: nothing quarantined, nothing
    /// repaired. What [`Study::run`] reports.
    pub fn full(dataset: &Dataset) -> Coverage {
        Coverage {
            total_traces: dataset.streams.len(),
            analyzed_traces: dataset.streams.len(),
            total_instances: dataset.instances.len(),
            analyzed_instances: dataset.instances.len(),
            quarantined_traces: 0,
            quarantined_instances: 0,
            repaired: 0,
        }
    }

    /// Coverage implied by a [`SanitizeReport`].
    pub fn from_sanitize(report: &SanitizeReport) -> Coverage {
        Coverage {
            total_traces: report.input_traces,
            analyzed_traces: report.input_traces - report.quarantined_traces,
            total_instances: report.input_instances,
            analyzed_instances: report.input_instances - report.quarantined_instances,
            quarantined_traces: report.quarantined_traces,
            quarantined_instances: report.quarantined_instances,
            repaired: report.repaired(),
        }
    }

    /// Fraction of input instances the study covers, in `[0, 1]`
    /// (`1.0` for an empty input).
    pub fn fraction(&self) -> f64 {
        if self.total_instances == 0 {
            1.0
        } else {
            self.analyzed_instances as f64 / self.total_instances as f64
        }
    }

    /// `true` when every input trace and instance was analyzed.
    pub fn is_full(&self) -> bool {
        self.analyzed_traces == self.total_traces && self.analyzed_instances == self.total_instances
    }
}

/// The paper's end-to-end evaluation over a data set: global impact
/// analysis (§5.1) plus per-scenario causality analysis (§5.2).
#[derive(Debug, Clone)]
pub struct Study {
    /// Impact analysis over all instances.
    pub impact: ImpactReport,
    /// Per-scenario results, keyed by scenario name.
    pub scenarios: BTreeMap<ScenarioName, ScenarioStudy>,
    /// How much of the input these results cover (full unless the study
    /// ran through [`Study::run_sanitized`] on corrupt input).
    pub coverage: Coverage,
}

impl Study {
    /// Runs the study over `dataset` for the scenarios in `names`
    /// (typically the eight selected evaluation scenarios).
    pub fn run(dataset: &Dataset, config: &StudyConfig, names: &[ScenarioName]) -> Study {
        Study::run_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run`] with telemetry: the whole run is wrapped in a
    /// `study` span and every pipeline stage (impact, classification,
    /// Wait-Graph construction, aggregation, segment enumeration,
    /// contrast mining) reports spans and counters through `telemetry`.
    /// With a disabled handle this is exactly `run`.
    pub fn run_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Study {
        let _span = telemetry.span(stage::STUDY);
        let pool = Pool::new(config.jobs).with_telemetry(telemetry.clone());
        // The global impact pass gets the full pool (it fans out per
        // stream); the per-scenario passes fan out over scenarios below,
        // so their analyzers stay sequential — one level of parallelism,
        // no thread multiplication.
        let impact = ImpactAnalyzer::new(config.components.clone())
            .with_telemetry(telemetry.clone())
            .with_pool(pool.clone())
            .analyze(dataset);
        let analyzer =
            ImpactAnalyzer::new(config.components.clone()).with_telemetry(telemetry.clone());
        let causality =
            CausalityAnalysis::new(config.causality.clone()).with_telemetry(telemetry.clone());
        if telemetry.enabled() {
            telemetry.count("study.scenarios", names.len() as u64);
        }
        // Scenario tasks are independent; the merge below consumes them
        // in input order, so the study is identical at any job count.
        let studies = pool.map(names, |_, name| {
            let scenario_impact = analyzer.analyze_where(dataset, |i| i.scenario == *name);
            let thresholds = dataset.scenario(name).map(|s| s.thresholds);
            let slow_impact = match thresholds {
                Some(th) => analyzer.analyze_where(dataset, |i| {
                    i.scenario == *name && th.classify(i.duration()) == Some(false)
                }),
                None => ImpactReport::default(),
            };
            ScenarioStudy {
                impact: scenario_impact,
                slow_impact,
                causality: causality.analyze(dataset, name),
            }
        });
        let scenarios: BTreeMap<ScenarioName, ScenarioStudy> =
            names.iter().copied().zip(studies).collect();
        Study {
            impact,
            scenarios,
            coverage: Coverage::full(dataset),
        }
    }

    /// Runs the study over all scenarios present in the data set.
    pub fn run_all(dataset: &Dataset, config: &StudyConfig) -> Study {
        let names: Vec<ScenarioName> = dataset.scenarios.iter().map(|s| s.name).collect();
        Study::run(dataset, config, &names)
    }

    /// [`Study::run`] with corruption tolerance: sanitizes `dataset`
    /// first (repairing what is repairable, quarantining what is not),
    /// runs the study over the clean survivor, and reports what fraction
    /// of the input the results cover via [`Study::coverage`].
    ///
    /// On pristine input this is `run` plus a no-op sanitize pass.
    pub fn run_sanitized(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> (Study, SanitizeReport) {
        Study::run_sanitized_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run_sanitized`] with telemetry: the sanitize pass is
    /// wrapped in a `sanitize` span and reports `sanitize.repaired`,
    /// `sanitize.quarantined_traces` and `sanitize.quarantined_instances`
    /// counters before the usual study stages run.
    pub fn run_sanitized_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> (Study, SanitizeReport) {
        let (clean, report) = {
            let _span = telemetry.span(stage::SANITIZE);
            dataset.sanitize()
        };
        if telemetry.enabled() {
            telemetry.count("sanitize.repaired", report.repaired() as u64);
            telemetry.count(
                "sanitize.quarantined_traces",
                report.quarantined_traces as u64,
            );
            telemetry.count(
                "sanitize.quarantined_instances",
                report.quarantined_instances as u64,
            );
        }
        let mut study = Study::run_traced(&clean, config, names, telemetry);
        study.coverage = Coverage::from_sanitize(&report);
        (study, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    #[test]
    fn study_runs_selected_scenarios() {
        let ds = DatasetBuilder::new(5)
            .traces(40)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ScenarioName::SELECTED
            .iter()
            .map(|&s| ScenarioName::new(s))
            .collect();
        let study = Study::run(&ds, &StudyConfig::default(), &names);
        assert_eq!(study.scenarios.len(), 8);
        assert!(study.impact.instances > 0);
        let total: usize = study.scenarios.values().map(|s| s.impact.instances).sum();
        assert_eq!(total, ds.instances.len());
        // At least some scenarios have enough data for causality.
        let ok = study
            .scenarios
            .values()
            .filter(|s| s.causality.is_ok())
            .count();
        assert!(ok >= 4, "only {ok} scenarios analyzable");
        // Slow impact is a subset of scenario impact.
        for s in study.scenarios.values() {
            assert!(s.slow_impact.instances <= s.impact.instances);
            assert!(s.slow_impact.d_scn <= s.impact.d_scn);
        }
    }

    #[test]
    fn run_all_covers_dataset_scenarios() {
        let ds = DatasetBuilder::new(6).traces(15).build();
        let study = Study::run_all(&ds, &StudyConfig::default());
        assert_eq!(study.scenarios.len(), ds.scenarios.len());
        assert!(study.coverage.is_full());
        assert_eq!(study.coverage.fraction(), 1.0);
    }

    #[test]
    fn run_sanitized_on_clean_input_has_full_coverage() {
        let ds = DatasetBuilder::new(7).traces(20).build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let (study, report) = Study::run_sanitized(&ds, &StudyConfig::default(), &names);
        assert!(report.is_clean());
        assert!(study.coverage.is_full());
        let plain = Study::run(&ds, &StudyConfig::default(), &names);
        assert_eq!(study.impact.instances, plain.impact.instances);
        assert_eq!(study.impact.d_scn, plain.impact.d_scn);
    }

    #[test]
    fn run_sanitized_quarantines_and_reports_partial_coverage() {
        use tracelens_model::{ScenarioInstance, ThreadId, TimeNs, TraceId};
        let mut ds = DatasetBuilder::new(8).traces(10).build();
        let dangling = TraceId(ds.streams.len() as u32 + 5);
        let scenario = ds.scenarios[0].name;
        ds.instances.push(ScenarioInstance {
            trace: dangling,
            scenario,
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(1),
        });
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let (study, report) = Study::run_sanitized(&ds, &StudyConfig::default(), &names);
        assert_eq!(report.quarantined_instances, 1);
        assert!(!study.coverage.is_full());
        assert!(study.coverage.fraction() < 1.0);
        assert_eq!(
            study.coverage.analyzed_instances,
            ds.instances.len() - 1,
            "exactly the dangling instance is excluded"
        );
    }
}
