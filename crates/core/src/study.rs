//! The full-evaluation driver: the paper's workflow over one data set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use tracelens_causality::{CausalityAnalysis, CausalityConfig, CausalityError, CausalityReport};
use tracelens_faults::{ExecFaultPlan, MemFaultPlan};
use tracelens_impact::{ImpactAnalyzer, ImpactReport};
use tracelens_model::{ComponentFilter, Dataset, SanitizeReport, ScenarioName, TimeNs};
use tracelens_obs::{stage, Telemetry};
use tracelens_pool::{
    Degradation, ExecutionReport, GovernPolicy, GovernReport, Pool, SupervisePolicy, UnitMeta,
};

/// Stage label of per-scenario supervised work units.
pub const SCENARIO_STAGE: &str = "scenario";

/// Stage label execution-fault plans are consulted with for faults
/// armed inside the causality analyzer (via its analysis probe).
pub const CAUSALITY_STAGE: &str = "causality";

/// Modeled live-heap bytes per stream event for the indexing side of a
/// scenario unit (thread buckets, unwait adjacency, effective ends —
/// see `StreamIndex`'s `HeapSize` impl). Deliberately a generous upper
/// bound: admission must never under-estimate.
pub const INDEX_BYTES_PER_EVENT: u64 = 32;

/// Modeled live-heap bytes per in-scope stream event for the wait
/// graphs and aggregated wait graphs a scenario instance can build
/// (node, children, example tags). Again an upper bound — real graphs
/// only materialize nodes for the instance's window.
pub const GRAPH_BYTES_PER_EVENT: u64 = 96;

/// Segment bound degraded units analyze with (vs.
/// [`tracelens_causality::DEFAULT_SEGMENT_BOUND`]): shorter segments
/// bound the pattern-enumeration frontier, the causality stage's
/// dominant allocation.
pub const DEGRADED_SEGMENT_BOUND: usize = 2;

/// Modeled live-heap cost of one per-scenario analysis unit, in bytes.
///
/// The estimate is *cheap* (no allocator hooks — it only walks instance
/// and stream lengths), *monotone* in the unit's input, and an upper
/// bound of what the unit's indexes and graphs actually retain (the
/// `HeapSize` measurements in the governance tests pin this down). It
/// charges every touched stream once for indexing and every instance
/// for the graphs built over its stream.
pub fn estimated_unit_bytes(dataset: &Dataset, name: &ScenarioName) -> u64 {
    let mut touched: BTreeSet<u32> = BTreeSet::new();
    let mut graph_events: u64 = 0;
    for i in &dataset.instances {
        if i.scenario == *name {
            touched.insert(i.trace.0);
            graph_events = graph_events.saturating_add(
                dataset
                    .streams
                    .get(i.trace.0 as usize)
                    .map_or(0, |s| s.len() as u64),
            );
        }
    }
    let index_events: u64 = touched
        .iter()
        .map(|&t| {
            dataset
                .streams
                .get(t as usize)
                .map_or(0, |s| s.len() as u64)
        })
        .sum();
    index_events
        .saturating_mul(INDEX_BYTES_PER_EVENT)
        .saturating_add(graph_events.saturating_mul(GRAPH_BYTES_PER_EVENT))
}

/// The budget-bounded slice of `dataset` a degraded unit analyzes: the
/// global time range truncated at `retain_per_mille` thousandths of its
/// span. Integer arithmetic over the recorded range keeps the cut — and
/// therefore the degraded results — deterministic at every job count.
fn degraded_view(dataset: &Dataset, degradation: &Degradation) -> Dataset {
    let events = dataset.streams.iter().flat_map(|s| s.events());
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for e in events {
        lo = lo.min(e.t.0);
        hi = hi.max(e.t.0);
    }
    if lo > hi {
        (lo, hi) = (0, 0);
    }
    let span = hi - lo;
    let keep = span.saturating_mul(degradation.retain_per_mille as u64) / 1000;
    dataset.truncated(TimeNs(lo + keep))
}

/// Configuration of a [`Study`].
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Component selection (device drivers by default).
    pub components: ComponentFilter,
    /// Causality configuration (segment bound, reduction).
    pub causality: CausalityConfig,
    /// Worker threads for the analysis stages: `1` runs fully
    /// sequential, `0` (the default) picks `TRACELENS_JOBS` or the
    /// machine's available parallelism. Results are byte-identical at
    /// every setting.
    pub jobs: usize,
    /// Supervision policy for [`Study::run_supervised`]: per-unit soft
    /// deadline and panic-retry bound. Ignored by the unsupervised
    /// entry points.
    pub supervise: SupervisePolicy,
    /// Deterministic execution-fault injection (testing/CI only): arms
    /// panics and stalls inside supervised work units. `None` — the
    /// default — injects nothing.
    pub exec_faults: Option<ExecFaultPlan>,
    /// Checkpoint directory for [`Study::run_supervised`]: completed
    /// units are stored there and restored on re-runs over the same
    /// inputs. `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Memory-governance policy for the supervised entry points: an
    /// explicit live-bytes budget per-scenario units are admitted
    /// against, and what happens to units that cannot fit. The default
    /// (unlimited) makes governance a no-op — byte-identical results.
    pub govern: GovernPolicy,
    /// Deterministic resource-pressure injection (testing/CI only):
    /// inflates unit cost *estimates* so the admission controller sees
    /// overload without the corpus having to provide it. The units'
    /// actual work is untouched. `None` — the default — injects
    /// nothing.
    pub mem_faults: Option<MemFaultPlan>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            components: ComponentFilter::suffix(".sys"),
            causality: CausalityConfig::default(),
            jobs: 0,
            supervise: SupervisePolicy::default(),
            exec_faults: None,
            checkpoint: None,
            govern: GovernPolicy::unlimited(),
            mem_faults: None,
        }
    }
}

/// Failures of the supervised study entry points.
///
/// Note the asymmetry with [`tracelens_pool::UnitFailure`]: a failed
/// *unit* degrades the study (it completes with an execution report);
/// a [`StudyError`] means no meaningful study exists at all.
#[derive(Debug)]
pub enum StudyError {
    /// Sanitization quarantined every scenario instance: there is
    /// nothing left to analyze, and rendering an all-zero report would
    /// misread as "analyzed and found nothing".
    NoAnalyzableInstances {
        /// Scenario instances in the (corrupt) input.
        input_instances: usize,
        /// Instances quarantined directly by sanitization (the rest
        /// were lost with their quarantined traces).
        quarantined_instances: usize,
    },
    /// The checkpoint directory could not be read or written.
    Checkpoint {
        /// The configured checkpoint directory.
        dir: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::NoAnalyzableInstances {
                input_instances,
                quarantined_instances,
            } => write!(
                f,
                "no analyzable instances: sanitization quarantined all {input_instances} \
                 input instances ({quarantined_instances} directly, the rest with their traces)"
            ),
            StudyError::Checkpoint { dir, source } => {
                write!(f, "checkpoint {} unusable: {source}", dir.display())
            }
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Checkpoint { source, .. } => Some(source),
            StudyError::NoAnalyzableInstances { .. } => None,
        }
    }
}

/// Per-scenario results of a study.
#[derive(Debug, Clone)]
pub struct ScenarioStudy {
    /// Impact restricted to this scenario's instances.
    pub impact: ImpactReport,
    /// Impact restricted to this scenario's *slow-class* instances
    /// (the paper's Table-2 "Driver Cost" scope).
    pub slow_impact: ImpactReport,
    /// Causality result, or the reason it could not run (e.g. an empty
    /// contrast class).
    pub causality: Result<CausalityReport, CausalityError>,
}

/// How much of the input data set the study's numbers actually cover.
///
/// A study over pristine input covers everything. A study over
/// sanitized input ([`Study::run_sanitized`]) covers only what survived
/// quarantine, and every reported metric must be read against these
/// fractions — 80% coverage means the impact and causality numbers
/// describe 80% of the recorded instances, not the machine population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Trace streams in the input data set.
    pub total_traces: usize,
    /// Trace streams the analyses actually saw.
    pub analyzed_traces: usize,
    /// Scenario instances in the input data set.
    pub total_instances: usize,
    /// Scenario instances the analyses actually saw.
    pub analyzed_instances: usize,
    /// Trace streams quarantined by sanitization.
    pub quarantined_traces: usize,
    /// Scenario instances quarantined by sanitization (directly — not
    /// counting instances lost with a quarantined trace).
    pub quarantined_instances: usize,
    /// Individual repairs sanitization applied to surviving data.
    pub repaired: usize,
    /// Work units quarantined by *supervised execution* (panics, missed
    /// deadlines, over-budget sheds) — the execution-layer counterpart
    /// of the sanitize counts above. Always `0` for unsupervised runs.
    pub failed_units: usize,
    /// Work units the memory governor ran on a bounded input slice:
    /// their numbers cover only part of their scenario's data. Always
    /// `0` without a finite budget.
    pub degraded_units: usize,
    /// Work units the memory governor refused to run at all (also
    /// counted in `failed_units` via their quarantine record). Always
    /// `0` without a finite budget.
    pub shed_units: usize,
}

impl Coverage {
    /// Full coverage over `dataset`: nothing quarantined, nothing
    /// repaired. What [`Study::run`] reports.
    pub fn full(dataset: &Dataset) -> Coverage {
        Coverage {
            total_traces: dataset.streams.len(),
            analyzed_traces: dataset.streams.len(),
            total_instances: dataset.instances.len(),
            analyzed_instances: dataset.instances.len(),
            quarantined_traces: 0,
            quarantined_instances: 0,
            repaired: 0,
            failed_units: 0,
            degraded_units: 0,
            shed_units: 0,
        }
    }

    /// Coverage implied by a [`SanitizeReport`].
    pub fn from_sanitize(report: &SanitizeReport) -> Coverage {
        Coverage {
            total_traces: report.input_traces,
            analyzed_traces: report.input_traces - report.quarantined_traces,
            total_instances: report.input_instances,
            analyzed_instances: report.input_instances - report.quarantined_instances,
            quarantined_traces: report.quarantined_traces,
            quarantined_instances: report.quarantined_instances,
            repaired: report.repaired(),
            failed_units: 0,
            degraded_units: 0,
            shed_units: 0,
        }
    }

    /// Fraction of input instances the study covers, in `[0, 1]`
    /// (`1.0` for an empty input).
    pub fn fraction(&self) -> f64 {
        if self.total_instances == 0 {
            1.0
        } else {
            self.analyzed_instances as f64 / self.total_instances as f64
        }
    }

    /// `true` when every input trace and instance was analyzed.
    pub fn is_full(&self) -> bool {
        self.analyzed_traces == self.total_traces && self.analyzed_instances == self.total_instances
    }
}

/// The paper's end-to-end evaluation over a data set: global impact
/// analysis (§5.1) plus per-scenario causality analysis (§5.2).
#[derive(Debug, Clone)]
pub struct Study {
    /// Impact analysis over all instances.
    pub impact: ImpactReport,
    /// Per-scenario results, keyed by scenario name.
    pub scenarios: BTreeMap<ScenarioName, ScenarioStudy>,
    /// How much of the input these results cover (full unless the study
    /// ran through [`Study::run_sanitized`] on corrupt input).
    pub coverage: Coverage,
    /// What supervised execution completed and what it quarantined.
    /// Empty (and clean) for the unsupervised entry points.
    pub execution: ExecutionReport,
    /// What the memory governor decided per unit. Ungoverned (and
    /// empty) unless the study ran under a finite
    /// [`StudyConfig::govern`] budget.
    pub governance: GovernReport,
}

impl Study {
    /// Runs the study over `dataset` for the scenarios in `names`
    /// (typically the eight selected evaluation scenarios).
    pub fn run(dataset: &Dataset, config: &StudyConfig, names: &[ScenarioName]) -> Study {
        Study::run_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run`] with telemetry: the whole run is wrapped in a
    /// `study` span and every pipeline stage (impact, classification,
    /// Wait-Graph construction, aggregation, segment enumeration,
    /// contrast mining) reports spans and counters through `telemetry`.
    /// With a disabled handle this is exactly `run`.
    pub fn run_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Study {
        let _span = telemetry.span(stage::STUDY);
        let pool = Pool::new(config.jobs).with_telemetry(telemetry.clone());
        // The global impact pass gets the full pool (it fans out per
        // stream); the per-scenario passes fan out over scenarios below,
        // so their analyzers stay sequential — one level of parallelism,
        // no thread multiplication.
        let impact = ImpactAnalyzer::new(config.components.clone())
            .with_telemetry(telemetry.clone())
            .with_pool(pool.clone())
            .analyze(dataset);
        let analyzer =
            ImpactAnalyzer::new(config.components.clone()).with_telemetry(telemetry.clone());
        let causality =
            CausalityAnalysis::new(config.causality.clone()).with_telemetry(telemetry.clone());
        if telemetry.enabled() {
            telemetry.count("study.scenarios", names.len() as u64);
        }
        // Scenario tasks are independent; the merge below consumes them
        // in input order, so the study is identical at any job count.
        let studies = pool.map(names, |_, name| {
            let scenario_impact = analyzer.analyze_where(dataset, |i| i.scenario == *name);
            let thresholds = dataset.scenario(name).map(|s| s.thresholds);
            let slow_impact = match thresholds {
                Some(th) => analyzer.analyze_where(dataset, |i| {
                    i.scenario == *name && th.classify(i.duration()) == Some(false)
                }),
                None => ImpactReport::default(),
            };
            ScenarioStudy {
                impact: scenario_impact,
                slow_impact,
                causality: causality.analyze(dataset, name),
            }
        });
        let scenarios: BTreeMap<ScenarioName, ScenarioStudy> =
            names.iter().copied().zip(studies).collect();
        Study {
            impact,
            scenarios,
            coverage: Coverage::full(dataset),
            execution: ExecutionReport::default(),
            governance: GovernReport::default(),
        }
    }

    /// [`Study::run`] while recording the pipeline's *own* execution as
    /// an ETW-shaped self-trace: spans become synthetic callstacks, pool
    /// joins and recorder lock contention become wait/unwait pairs, and
    /// the returned recording lowers (via `tracelens_selftrace::lower`)
    /// into a data set the impact/wait-graph analyses can consume — the
    /// pipeline analyzing itself.
    pub fn run_self_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> (Study, tracelens_selftrace::SelfTraceRecording) {
        let sink = tracelens_selftrace::SelfTraceSink::new();
        let study = Study::run_traced(dataset, config, names, &sink.telemetry());
        (study, sink.recording())
    }

    /// [`Study::run`] under fail-operational supervision: every work
    /// unit (per-stream global impact, per-scenario analysis) runs
    /// isolated per [`StudyConfig::supervise`], so a panicking or
    /// stalling unit is quarantined — recorded in
    /// [`Study::execution`] — instead of aborting the study. With
    /// [`StudyConfig::checkpoint`] set, completed units are persisted
    /// and re-runs over the same inputs resume instead of recomputing.
    ///
    /// # Errors
    ///
    /// [`StudyError::Checkpoint`] if the checkpoint directory cannot be
    /// used. Unit failures are *not* errors.
    pub fn run_supervised(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> Result<Study, StudyError> {
        Study::run_supervised_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run_supervised`] with telemetry (see
    /// [`Study::run_traced`]); supervision additionally reports
    /// `supervisor.*` counters under a `supervise` span per batch.
    pub fn run_supervised_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Result<Study, StudyError> {
        let _span = telemetry.span(stage::STUDY);
        let pool = Pool::new(config.jobs).with_telemetry(telemetry.clone());
        let policy = &config.supervise;
        let plan = config.exec_faults.filter(|p| p.is_armed());
        let checkpoint = match &config.checkpoint {
            Some(dir) => {
                let _span = telemetry.span(stage::CHECKPOINT);
                let fp = crate::checkpoint::fingerprint(dataset, config, names);
                Some(
                    crate::checkpoint::Checkpoint::open(dir, fp).map_err(|source| {
                        StudyError::Checkpoint {
                            dir: dir.clone(),
                            source,
                        }
                    })?,
                )
            }
            None => None,
        };
        let mut execution = ExecutionReport::default();

        // Global impact: restore from the checkpoint when possible,
        // otherwise run it supervised per stream. Only a run with no
        // quarantined stream is stored — a partial impact report must
        // be recomputed (and re-quarantined) on resume, never resumed
        // as if it were complete.
        let impact_probe = plan.map(|p| move |unit: &str| p.arm(stage::IMPACT, unit));
        let analyzer_pooled = ImpactAnalyzer::new(config.components.clone())
            .with_telemetry(telemetry.clone())
            .with_pool(pool.clone());
        let impact = match checkpoint.as_ref().and_then(|c| c.load_impact()) {
            Some(saved) => {
                execution.units += 1;
                execution.completed += 1;
                execution.restored += 1;
                saved
            }
            None => {
                let (impact, impact_exec) = analyzer_pooled.analyze_where_supervised(
                    dataset,
                    |_| true,
                    policy,
                    impact_probe.as_ref().map(|p| p as &(dyn Fn(&str) + Sync)),
                );
                if let Some(c) = &checkpoint {
                    if impact_exec.failures.is_empty() {
                        c.store_impact(&impact)
                            .map_err(|source| StudyError::Checkpoint {
                                dir: c.dir().to_path_buf(),
                                source,
                            })?;
                    }
                }
                execution.absorb(impact_exec);
                impact
            }
        };

        // Per-scenario units: restored results short-circuit inside the
        // supervised closure so unit indices (and therefore failure
        // accounts) are identical with and without a warm checkpoint.
        let restored = match &checkpoint {
            Some(c) => {
                let _span = telemetry.span(stage::CHECKPOINT);
                c.load_units(names)
            }
            None => BTreeMap::new(),
        };
        let analyzer =
            ImpactAnalyzer::new(config.components.clone()).with_telemetry(telemetry.clone());
        let mut causality =
            CausalityAnalysis::new(config.causality.clone()).with_telemetry(telemetry.clone());
        if let Some(p) = plan {
            causality = causality.with_probe(Arc::new(move |name: &ScenarioName| {
                p.arm(CAUSALITY_STAGE, &format!("scenario:{name}"));
            }));
        }
        if telemetry.enabled() {
            telemetry.count("study.scenarios", names.len() as u64);
        }
        // Degraded units analyze a budget-bounded slice of the data set
        // with a tighter segment bound; both analyzers share the same
        // probe so fault plans hit degraded and whole units alike.
        let mut degraded_causality = CausalityAnalysis::new(CausalityConfig {
            segment_bound: config.causality.segment_bound.min(DEGRADED_SEGMENT_BOUND),
            ..config.causality.clone()
        })
        .with_telemetry(telemetry.clone());
        if let Some(p) = plan {
            degraded_causality =
                degraded_causality.with_probe(Arc::new(move |name: &ScenarioName| {
                    p.arm(CAUSALITY_STAGE, &format!("scenario:{name}"));
                }));
        }
        let mut per_scenario: BTreeMap<ScenarioName, usize> = BTreeMap::new();
        for i in &dataset.instances {
            *per_scenario.entry(i.scenario).or_insert(0) += 1;
        }
        // Admission runs on estimates computed up front, in input order,
        // optionally inflated by the resource-pressure fault plan — so
        // the governor's verdicts are independent of scheduling.
        let mem = config.mem_faults.filter(|p| p.is_armed());
        let estimates: BTreeMap<ScenarioName, u64> = names
            .iter()
            .map(|n| {
                let est = estimated_unit_bytes(dataset, n);
                let est = match mem {
                    Some(p) => p.inflated(SCENARIO_STAGE, &format!("scenario:{n}"), est),
                    None => est,
                };
                (*n, est)
            })
            .collect();
        let analyze_on = |ds: &Dataset, name: &ScenarioName, causality: &CausalityAnalysis| {
            let scenario_impact = analyzer.analyze_where(ds, |i| i.scenario == *name);
            let thresholds = ds.scenario(name).map(|s| s.thresholds);
            let slow_impact = match thresholds {
                Some(th) => analyzer.analyze_where(ds, |i| {
                    i.scenario == *name && th.classify(i.duration()) == Some(false)
                }),
                None => ImpactReport::default(),
            };
            ScenarioStudy {
                impact: scenario_impact,
                slow_impact,
                causality: causality.analyze(ds, name),
            }
        };
        let (results, mut scenario_exec, governance) = pool.governed_supervised_map(
            names,
            SCENARIO_STAGE,
            policy,
            &config.govern,
            |_, name| estimates.get(name).copied().unwrap_or(0),
            |_, name| {
                UnitMeta::labeled(format!("scenario:{name}"))
                    .for_scenario(name.as_str())
                    .carrying(per_scenario.get(name).copied().unwrap_or(0))
            },
            |i, name, degradation| {
                if let Some(saved) = restored.get(&i) {
                    return saved.clone();
                }
                if let Some(p) = plan {
                    p.arm(SCENARIO_STAGE, &format!("scenario:{name}"));
                }
                match degradation {
                    None => analyze_on(dataset, name, &causality),
                    Some(d) => {
                        // The transient slice lives only while this unit
                        // runs — its size is what the degradation bought.
                        let view = degraded_view(dataset, d);
                        analyze_on(&view, name, &degraded_causality)
                    }
                }
            },
        );
        scenario_exec.restored = restored.len();
        let mut scenarios: BTreeMap<ScenarioName, ScenarioStudy> = BTreeMap::new();
        for (idx, (name, result)) in names.iter().zip(results).enumerate() {
            let Some(unit) = result else { continue };
            if let Some(c) = &checkpoint {
                if !restored.contains_key(&idx) {
                    let _span = telemetry.span(stage::CHECKPOINT);
                    c.store_unit(idx, name, &unit)
                        .map_err(|source| StudyError::Checkpoint {
                            dir: c.dir().to_path_buf(),
                            source,
                        })?;
                }
            }
            scenarios.insert(*name, unit);
        }
        execution.absorb(scenario_exec);
        let mut coverage = Coverage::full(dataset);
        coverage.failed_units = execution.quarantined();
        coverage.degraded_units = governance.degraded;
        coverage.shed_units = governance.shed;
        Ok(Study {
            impact,
            scenarios,
            coverage,
            execution,
            governance,
        })
    }

    /// [`Study::run_supervised`] under explicit memory governance: every
    /// per-scenario unit is admitted against [`StudyConfig::govern`]'s
    /// live-bytes budget — queued behind backpressure, run degraded on a
    /// bounded input slice, or shed as a typed quarantine — and the
    /// governor's per-unit decisions land in [`Study::governance`],
    /// [`Study::coverage`], and the rendered report. With an unlimited
    /// budget this is exactly [`Study::run_supervised`], byte for byte.
    ///
    /// # Errors
    ///
    /// [`StudyError::Checkpoint`] as in [`Study::run_supervised`];
    /// over-budget units are *not* errors — the study always completes
    /// with every unit accounted for.
    pub fn run_governed(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> Result<Study, StudyError> {
        Study::run_governed_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run_governed`] with telemetry: governance additionally
    /// reports `govern.*` counters and a `govern.estimated_live_bytes`
    /// gauge (the admission ledger's view of live heap).
    pub fn run_governed_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Result<Study, StudyError> {
        // Supervision is governance-aware; the entry points differ only
        // in intent (this one documents the governed contract).
        Study::run_supervised_traced(dataset, config, names, telemetry)
    }

    /// [`Study::run_supervised`] with corruption tolerance: sanitize
    /// first, then run the supervised study over the survivor.
    ///
    /// # Errors
    ///
    /// [`StudyError::NoAnalyzableInstances`] when sanitization
    /// quarantines every scenario instance of a non-empty input —
    /// previously this fell through to an all-zero study that read as
    /// "analyzed and found nothing". [`StudyError::Checkpoint`] as in
    /// [`Study::run_supervised`].
    pub fn run_sanitized_supervised(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> Result<(Study, SanitizeReport), StudyError> {
        Study::run_sanitized_supervised_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run_sanitized_supervised`] with telemetry.
    pub fn run_sanitized_supervised_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> Result<(Study, SanitizeReport), StudyError> {
        let (clean, report) = {
            let _span = telemetry.span(stage::SANITIZE);
            dataset.sanitize()
        };
        if telemetry.enabled() {
            telemetry.count("sanitize.repaired", report.repaired() as u64);
            telemetry.count(
                "sanitize.quarantined_traces",
                report.quarantined_traces as u64,
            );
            telemetry.count(
                "sanitize.quarantined_instances",
                report.quarantined_instances as u64,
            );
        }
        if clean.instances.is_empty() && report.input_instances > 0 {
            return Err(StudyError::NoAnalyzableInstances {
                input_instances: report.input_instances,
                quarantined_instances: report.quarantined_instances,
            });
        }
        let mut study = Study::run_supervised_traced(&clean, config, names, telemetry)?;
        let failed_units = study.execution.quarantined();
        study.coverage = Coverage::from_sanitize(&report);
        study.coverage.failed_units = failed_units;
        study.coverage.degraded_units = study.governance.degraded;
        study.coverage.shed_units = study.governance.shed;
        Ok((study, report))
    }

    /// Runs the study over all scenarios present in the data set.
    pub fn run_all(dataset: &Dataset, config: &StudyConfig) -> Study {
        let names: Vec<ScenarioName> = dataset.scenarios.iter().map(|s| s.name).collect();
        Study::run(dataset, config, &names)
    }

    /// [`Study::run`] with corruption tolerance: sanitizes `dataset`
    /// first (repairing what is repairable, quarantining what is not),
    /// runs the study over the clean survivor, and reports what fraction
    /// of the input the results cover via [`Study::coverage`].
    ///
    /// On pristine input this is `run` plus a no-op sanitize pass.
    pub fn run_sanitized(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
    ) -> (Study, SanitizeReport) {
        Study::run_sanitized_traced(dataset, config, names, &Telemetry::noop())
    }

    /// [`Study::run_sanitized`] with telemetry: the sanitize pass is
    /// wrapped in a `sanitize` span and reports `sanitize.repaired`,
    /// `sanitize.quarantined_traces` and `sanitize.quarantined_instances`
    /// counters before the usual study stages run.
    pub fn run_sanitized_traced(
        dataset: &Dataset,
        config: &StudyConfig,
        names: &[ScenarioName],
        telemetry: &Telemetry,
    ) -> (Study, SanitizeReport) {
        let (clean, report) = {
            let _span = telemetry.span(stage::SANITIZE);
            dataset.sanitize()
        };
        if telemetry.enabled() {
            telemetry.count("sanitize.repaired", report.repaired() as u64);
            telemetry.count(
                "sanitize.quarantined_traces",
                report.quarantined_traces as u64,
            );
            telemetry.count(
                "sanitize.quarantined_instances",
                report.quarantined_instances as u64,
            );
        }
        let mut study = Study::run_traced(&clean, config, names, telemetry);
        study.coverage = Coverage::from_sanitize(&report);
        (study, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    #[test]
    fn study_runs_selected_scenarios() {
        let ds = DatasetBuilder::new(5)
            .traces(40)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ScenarioName::SELECTED
            .iter()
            .map(|&s| ScenarioName::new(s))
            .collect();
        let study = Study::run(&ds, &StudyConfig::default(), &names);
        assert_eq!(study.scenarios.len(), 8);
        assert!(study.impact.instances > 0);
        let total: usize = study.scenarios.values().map(|s| s.impact.instances).sum();
        assert_eq!(total, ds.instances.len());
        // At least some scenarios have enough data for causality.
        let ok = study
            .scenarios
            .values()
            .filter(|s| s.causality.is_ok())
            .count();
        assert!(ok >= 4, "only {ok} scenarios analyzable");
        // Slow impact is a subset of scenario impact.
        for s in study.scenarios.values() {
            assert!(s.slow_impact.instances <= s.impact.instances);
            assert!(s.slow_impact.d_scn <= s.impact.d_scn);
        }
    }

    #[test]
    fn run_all_covers_dataset_scenarios() {
        let ds = DatasetBuilder::new(6).traces(15).build();
        let study = Study::run_all(&ds, &StudyConfig::default());
        assert_eq!(study.scenarios.len(), ds.scenarios.len());
        assert!(study.coverage.is_full());
        assert_eq!(study.coverage.fraction(), 1.0);
    }

    #[test]
    fn run_sanitized_on_clean_input_has_full_coverage() {
        let ds = DatasetBuilder::new(7).traces(20).build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let (study, report) = Study::run_sanitized(&ds, &StudyConfig::default(), &names);
        assert!(report.is_clean());
        assert!(study.coverage.is_full());
        let plain = Study::run(&ds, &StudyConfig::default(), &names);
        assert_eq!(study.impact.instances, plain.impact.instances);
        assert_eq!(study.impact.d_scn, plain.impact.d_scn);
    }

    #[test]
    fn supervised_clean_run_matches_unsupervised() {
        let ds = DatasetBuilder::new(11)
            .traces(16)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let cfg = StudyConfig {
            jobs: 2,
            ..StudyConfig::default()
        };
        let plain = Study::run(&ds, &cfg, &names);
        let supervised = Study::run_supervised(&ds, &cfg, &names).unwrap();
        assert!(supervised.execution.is_clean());
        assert_eq!(supervised.impact, plain.impact);
        assert_eq!(supervised.coverage, plain.coverage);
        assert_eq!(supervised.scenarios.len(), plain.scenarios.len());
        for (name, a) in &plain.scenarios {
            let b = &supervised.scenarios[name];
            assert_eq!(a.impact, b.impact);
            assert_eq!(a.slow_impact, b.slow_impact);
            assert_eq!(a.causality, b.causality);
        }
    }

    #[test]
    fn supervised_run_quarantines_injected_faults() {
        let ds = DatasetBuilder::new(12)
            .traces(16)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let cfg = StudyConfig {
            jobs: 1,
            exec_faults: Some(ExecFaultPlan::new(5).with_panic_rate(0.4)),
            supervise: tracelens_pool::SupervisePolicy {
                max_retries: 1,
                ..Default::default()
            },
            ..StudyConfig::default()
        };
        let study = Study::run_supervised(&ds, &cfg, &names).unwrap();
        assert!(
            study.execution.quarantined() > 0,
            "a 40% panic rate over {} scenarios + streams must hit something",
            names.len()
        );
        assert_eq!(study.coverage.failed_units, study.execution.quarantined());
        // Quarantined scenario units are absent from the results map.
        let failed_scenarios = study
            .execution
            .failures
            .iter()
            .filter(|f| f.stage == SCENARIO_STAGE)
            .count();
        assert_eq!(study.scenarios.len(), names.len() - failed_scenarios);
        // Every failure names a unit, a stage, and a panic reason.
        for f in &study.execution.failures {
            assert!(!f.unit.is_empty());
            assert!(
                f.attempts == 2,
                "max_retries 1 → 2 attempts, got {}",
                f.attempts
            );
            assert!(f.reason.to_string().contains("injected fault"));
        }
        // Determinism: an identical run (different job count) agrees.
        let cfg4 = StudyConfig {
            jobs: 4,
            ..cfg.clone()
        };
        let again = Study::run_supervised(&ds, &cfg4, &names).unwrap();
        assert_eq!(again.execution, study.execution);
        assert_eq!(again.impact, study.impact);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let ds = DatasetBuilder::new(13)
            .traces(12)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let dir = std::env::temp_dir().join("tracelens-study-checkpoint-test");
        let _ = std::fs::remove_dir_all(&dir);
        // First pass: faults quarantine some scenario units; their
        // results are NOT checkpointed.
        let faulted = StudyConfig {
            jobs: 2,
            exec_faults: Some(ExecFaultPlan::new(77).with_panic_rate(0.5)),
            checkpoint: Some(dir.clone()),
            ..StudyConfig::default()
        };
        let first = Study::run_supervised(&ds, &faulted, &names).unwrap();
        assert!(first.execution.quarantined() > 0, "seed must hit something");
        assert_eq!(first.execution.restored, 0);
        // Second pass: same inputs, faults off — restores completed
        // units, re-runs the quarantined ones, and must be
        // byte-identical to a clean uninterrupted run.
        let resumed_cfg = StudyConfig {
            jobs: 2,
            checkpoint: Some(dir.clone()),
            ..StudyConfig::default()
        };
        let resumed = Study::run_supervised(&ds, &resumed_cfg, &names).unwrap();
        assert!(resumed.execution.restored > 0, "nothing was restored");
        assert!(resumed.execution.failures.is_empty());
        let clean_cfg = StudyConfig {
            jobs: 2,
            ..StudyConfig::default()
        };
        let clean = Study::run(&ds, &clean_cfg, &names);
        let opts = crate::ReportOptions::default();
        assert_eq!(
            crate::render_markdown(&resumed, &ds, &opts),
            crate::render_markdown(&clean, &ds, &opts),
            "resumed study must render byte-identical to a clean run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitized_supervised_returns_typed_error_when_nothing_survives() {
        use tracelens_model::{ScenarioInstance, ThreadId, TimeNs, TraceId};
        // A dataset whose every instance dangles: sanitize quarantines
        // them all and the study must refuse with a typed error rather
        // than report all-zero numbers.
        let mut ds = DatasetBuilder::new(14).traces(2).build();
        ds.instances.clear();
        let scenario = ds.scenarios[0].name;
        for k in 0..3u32 {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(ds.streams.len() as u32 + 7 + k),
                scenario,
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(1),
            });
        }
        let names = vec![scenario];
        let err = Study::run_sanitized_supervised(&ds, &StudyConfig::default(), &names)
            .expect_err("all instances quarantined must be a typed error");
        match err {
            StudyError::NoAnalyzableInstances {
                input_instances,
                quarantined_instances,
            } => {
                assert_eq!(input_instances, 3);
                assert_eq!(quarantined_instances, 3);
            }
            other => panic!("wrong error: {other}"),
        }
        // An empty input (no instances at all) is not an error: there
        // was nothing to lose.
        let empty = tracelens_model::Dataset::new();
        assert!(Study::run_sanitized_supervised(&empty, &StudyConfig::default(), &[]).is_ok());
    }

    #[test]
    fn run_sanitized_quarantines_and_reports_partial_coverage() {
        use tracelens_model::{ScenarioInstance, ThreadId, TimeNs, TraceId};
        let mut ds = DatasetBuilder::new(8).traces(10).build();
        let dangling = TraceId(ds.streams.len() as u32 + 5);
        let scenario = ds.scenarios[0].name;
        ds.instances.push(ScenarioInstance {
            trace: dangling,
            scenario,
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(1),
        });
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let (study, report) = Study::run_sanitized(&ds, &StudyConfig::default(), &names);
        assert_eq!(report.quarantined_instances, 1);
        assert!(!study.coverage.is_full());
        assert!(study.coverage.fraction() < 1.0);
        assert_eq!(
            study.coverage.analyzed_instances,
            ds.instances.len() - 1,
            "exactly the dangling instance is excluded"
        );
    }
}
