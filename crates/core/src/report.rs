//! Markdown report rendering for a full [`Study`].
//!
//! Produces the artifact a performance analyst hands around: the global
//! impact numbers, the per-scenario coverage table, and the top ranked
//! contrast patterns per scenario — as a single Markdown document.

use crate::study::Study;
use std::fmt::Write as _;
use tracelens_model::{Dataset, DriverType};

/// Options for [`render_markdown`].
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// How many top patterns to include per scenario.
    pub top_patterns: usize,
    /// Whether to include the per-scenario driver-type histogram.
    pub driver_types: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            top_patterns: 3,
            driver_types: true,
        }
    }
}

/// Renders `study` (over `dataset`) as a Markdown document.
pub fn render_markdown(study: &Study, dataset: &Dataset, opts: &ReportOptions) -> String {
    let mut out = String::new();
    let pct = |x: f64| format!("{:.1}%", x * 100.0);

    let _ = writeln!(out, "# tracelens performance report\n");
    let _ = writeln!(
        out,
        "Data set: {} traces, {} scenario instances, {} events.\n",
        dataset.streams.len(),
        dataset.instances.len(),
        dataset.total_events()
    );

    let cov = &study.coverage;
    if !cov.is_full() {
        let _ = writeln!(out, "## Coverage\n");
        let _ = writeln!(
            out,
            "This study ran on **sanitized** input: {} of {} instances \
             ({}) and {} of {} traces survived quarantine; {} repairs were \
             applied. All numbers below describe the surviving data only.\n",
            cov.analyzed_instances,
            cov.total_instances,
            pct(cov.fraction()),
            cov.analyzed_traces,
            cov.total_traces,
            cov.repaired
        );
    }

    // Rendered only when something was quarantined or a finite memory
    // budget was in force: a clean supervised run (and any unsupervised
    // or unlimited-budget run) produces byte-identical output, so
    // supervision — like the pool — stays an execution detail. Counts
    // that vary across checkpoint resume (retries, restored units) are
    // deliberately absent; the failure list and the governor's
    // decisions are deterministic.
    let exec = &study.execution;
    let gov = &study.governance;
    if !exec.failures.is_empty() || gov.is_governed() {
        let _ = writeln!(out, "## Execution\n");
    }
    if gov.is_governed() {
        let _ = writeln!(
            out,
            "Resource governance: **{} KiB budget** over {} unit{} — \
             {} admitted, {} queued, {} degraded, {} shed \
             (peak estimate {} KiB).\n",
            gov.budget_bytes.unwrap_or(0) >> 10,
            gov.units,
            if gov.units == 1 { "" } else { "s" },
            gov.admitted,
            gov.queued,
            gov.degraded,
            gov.shed,
            gov.peak_estimated_bytes >> 10,
        );
        if gov.constrained() > 0 {
            let _ = writeln!(out, "| unit | estimated KiB | decision |");
            let _ = writeln!(out, "|---|---|---|");
            for d in &gov.decisions {
                let decision = match &d.admission {
                    tracelens_pool::Admission::Admitted => continue,
                    tracelens_pool::Admission::Queued => "queued (backpressure)".to_string(),
                    tracelens_pool::Admission::Degraded(deg) => deg.to_string(),
                    tracelens_pool::Admission::Shed => "shed".to_string(),
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} |",
                    d.unit,
                    d.estimated_bytes >> 10,
                    decision
                );
            }
            out.push('\n');
        }
    }
    if !exec.failures.is_empty() {
        let _ = writeln!(
            out,
            "Supervised execution **quarantined {} work unit{}** \
             ({} scenario instance{} lost); all numbers below describe \
             the work that completed.\n",
            exec.quarantined(),
            if exec.quarantined() == 1 { "" } else { "s" },
            exec.lost_instances(),
            if exec.lost_instances() == 1 { "" } else { "s" },
        );
        let _ = writeln!(out, "| unit | stage | scenario | reason | attempts |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for f in &exec.failures {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                f.unit,
                f.stage,
                f.scenario.as_deref().unwrap_or("–"),
                f.reason,
                f.attempts
            );
        }
        out.push('\n');
    }

    let _ = writeln!(out, "## Impact analysis (all instances)\n");
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let r = &study.impact;
    let _ = writeln!(out, "| IA_wait | {} |", pct(r.ia_wait()));
    let _ = writeln!(out, "| IA_run | {} |", pct(r.ia_run()));
    let _ = writeln!(out, "| IA_opt | {} |", pct(r.ia_opt()));
    let _ = writeln!(out, "| Dwait/Dwaitdist | {:.2} |", r.wait_amplification());
    let _ = writeln!(out, "| instances | {} |", r.instances);
    out.push('\n');

    let _ = writeln!(out, "## Scenarios\n");
    let _ = writeln!(
        out,
        "| scenario | instances | fast | slow | driver cost (slow) | ITC | TTC | patterns |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for (name, s) in &study.scenarios {
        match &s.causality {
            Ok(c) => {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} |",
                    name,
                    s.impact.instances,
                    c.fast_instances,
                    c.slow_instances,
                    pct(s.slow_impact.component_cost_share()),
                    pct(c.itc()),
                    pct(c.ttc()),
                    c.patterns.len()
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "| {} | {} | – | – | {} | – | – | ({e}) |",
                    name,
                    s.impact.instances,
                    pct(s.slow_impact.component_cost_share()),
                );
            }
        }
    }
    out.push('\n');

    for (name, s) in &study.scenarios {
        let Ok(c) = &s.causality else { continue };
        if c.patterns.is_empty() {
            continue;
        }
        let _ = writeln!(out, "## {name}: top contrast patterns\n");
        for (i, p) in c.top(opts.top_patterns).iter().enumerate() {
            let hi = if p.is_high_impact(c.thresholds.slow()) {
                " — **high impact**"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "**#{}** avg `{}` over {} occurrences (worst `{}`){hi}\n",
                i + 1,
                p.avg_cost(),
                p.n,
                p.c_max
            );
            let _ = writeln!(out, "```");
            let _ = writeln!(out, "{}", p.tuple.render(&dataset.stacks));
            let _ = writeln!(out, "```\n");
        }
        if opts.driver_types {
            let hist = c.driver_type_histogram(&dataset.stacks, 10);
            if !hist.is_empty() {
                let mut row = String::from("driver types in top-10: ");
                let mut first = true;
                for ty in DriverType::ALL {
                    if let Some(n) = hist.get(&ty) {
                        if !first {
                            row.push_str(", ");
                        }
                        let _ = write!(row, "{} ({n})", ty.label());
                        first = false;
                    }
                }
                let _ = writeln!(out, "{row}\n");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use tracelens_model::ScenarioName;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    #[test]
    fn report_renders_all_sections() {
        let ds = DatasetBuilder::new(8)
            .traces(40)
            .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
            .build();
        let study = Study::run(
            &ds,
            &StudyConfig::default(),
            &[ScenarioName::new("BrowserTabCreate")],
        );
        let md = render_markdown(&study, &ds, &ReportOptions::default());
        assert!(md.starts_with("# tracelens performance report"));
        assert!(md.contains("## Impact analysis"));
        assert!(md.contains("## Scenarios"));
        assert!(md.contains("IA_wait"));
        assert!(md.contains("BrowserTabCreate"));
        // Pattern section appears when causality succeeded.
        if study.scenarios[&ScenarioName::new("BrowserTabCreate")]
            .causality
            .is_ok()
        {
            assert!(md.contains("top contrast patterns"));
            assert!(md.contains("wait    :"));
        }
        // Markdown tables are well-formed: every table row has the same
        // column count as its header.
        for block in md.split("\n\n") {
            let rows: Vec<&str> = block.lines().filter(|l| l.starts_with('|')).collect();
            if rows.len() >= 2 {
                let cols = rows[0].matches('|').count();
                for r in &rows {
                    assert_eq!(r.matches('|').count(), cols, "ragged row: {r}");
                }
            }
        }
    }

    #[test]
    fn coverage_section_appears_only_for_partial_studies() {
        use tracelens_model::{ScenarioInstance, ThreadId, TimeNs, TraceId};
        let mut ds = DatasetBuilder::new(9).traces(10).build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let full = Study::run(&ds, &StudyConfig::default(), &names);
        let md = render_markdown(&full, &ds, &ReportOptions::default());
        assert!(!md.contains("## Coverage"));

        ds.instances.push(ScenarioInstance {
            trace: TraceId(ds.streams.len() as u32 + 3),
            scenario: ds.scenarios[0].name,
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(1),
        });
        let (partial, _) = Study::run_sanitized(&ds, &StudyConfig::default(), &names);
        let md = render_markdown(&partial, &ds, &ReportOptions::default());
        assert!(md.contains("## Coverage"));
        assert!(md.contains("survived quarantine"));
    }

    #[test]
    fn empty_study_still_renders() {
        let ds = tracelens_model::Dataset::new();
        let study = Study::run(&ds, &StudyConfig::default(), &[]);
        let md = render_markdown(&study, &ds, &ReportOptions::default());
        assert!(md.contains("0 traces"));
    }
}
