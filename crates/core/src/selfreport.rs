//! Meta-analysis: the wait-graph/impact pipeline pointed at itself.
//!
//! [`SelfObservation::analyze`] lowers recorded
//! [`SelfTraceSession`]s into a data set (see
//! [`tracelens_selftrace::lower`]) and runs the *ordinary* impact
//! machinery over it with `ComponentFilter::suffix(".tl")` — the
//! pipeline's own crates playing the role device drivers play in the
//! paper. The rendered report answers the paper's questions about the
//! analysis pipeline: how much of a run is pipeline code running
//! (IA_run), how much is blocked behind it (IA_wait), and which wait
//! source dominates.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use tracelens_impact::{breakdown, Breakdown, ImpactAnalyzer, ImpactReport};
use tracelens_model::{ComponentFilter, Dataset, TimeNs};
use tracelens_selftrace::{lower, SelfTraceSession, SessionStats};

/// The self-observation results: one ordinary impact analysis (plus
/// per-module slices and a time breakdown) over the pipeline's own
/// lowered execution traces.
#[derive(Debug, Clone)]
pub struct SelfObservation {
    /// The lowered data set (one stream per recorded session).
    pub dataset: Dataset,
    /// Per-session aggregates from the lowering.
    pub stats: Vec<SessionStats>,
    /// Impact of all `.tl` components over all sessions.
    pub overall: ImpactReport,
    /// Impact sliced per synthetic module (`impact.tl`, `pool.tl`, …) —
    /// the per-stage IA_wait/IA_run table.
    pub per_module: Vec<(String, ImpactReport)>,
    /// Where the time goes: CPU vs wait, per module.
    pub breakdown: Breakdown,
}

impl SelfObservation {
    /// Lowers `sessions` and runs the impact pipeline over the result.
    pub fn analyze(sessions: &[SelfTraceSession]) -> SelfObservation {
        let lowered = lower(sessions);
        let dataset = lowered.dataset;
        let filter = ComponentFilter::suffix(".tl");
        let overall = ImpactAnalyzer::new(filter.clone()).analyze(&dataset);

        // Every synthetic module present in the stack table gets its own
        // impact slice — components here are the pipeline's crates.
        let mut modules: BTreeSet<String> = BTreeSet::new();
        for (_, text) in dataset.stacks.symbols().iter() {
            if let Some(module) = tracelens_model::Signature::module_of(text) {
                if module.ends_with(".tl") {
                    modules.insert(module.to_string());
                }
            }
        }
        let per_module = modules
            .into_iter()
            .map(|m| {
                let report =
                    ImpactAnalyzer::new(ComponentFilter::names([m.as_str()])).analyze(&dataset);
                (m, report)
            })
            .collect();

        let breakdown = breakdown(&dataset, &filter, |_| true);
        SelfObservation {
            dataset,
            stats: lowered.stats,
            overall,
            per_module,
            breakdown,
        }
    }

    /// The wait point that cost the most blocked time across all
    /// sessions, with its total, if any wait completed.
    pub fn dominant_wait_source(&self) -> Option<(String, u64)> {
        let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for s in &self.stats {
            for (name, ns) in &s.wait_ns_by_name {
                *totals.entry(name.as_str()).or_insert(0) += ns;
            }
        }
        totals
            .into_iter()
            .max_by_key(|&(_, ns)| ns)
            .map(|(name, ns)| (name.to_string(), ns))
    }

    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let pct = |x: f64| format!("{:.1}%", 100.0 * x);
        let ms = |ns: u64| format!("{:.3} ms", ns as f64 / 1e6);

        let _ = writeln!(out, "# Self-observation report");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "The analysis pipeline, traced in the paper's event shape and \
             analyzed by its own wait-graph impact machinery \
             (components = `*.tl`, the pipeline's crates)."
        );
        let _ = writeln!(out);

        let _ = writeln!(out, "## Sessions");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| session | wall | busy | waits | recorder lock | queue wait | events |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for s in &self.stats {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                s.label,
                ms(s.duration_ns),
                ms(s.busy_ns()),
                ms(s.wait_ns()),
                ms(s.lock_wait_ns),
                ms(s.queue_wait_ns),
                s.raw_events,
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Worker streams");
        let _ = writeln!(out);
        let _ = writeln!(out, "| session | thread | busy |");
        let _ = writeln!(out, "|---|---|---|");
        for s in &self.stats {
            for (&vtid, &busy) in &s.busy_ns_by_thread {
                let name = match vtid {
                    1 => "main".to_string(),
                    v if v >= 1000 => format!("thread-{v}"),
                    v => format!("worker-{}", v - 2),
                };
                let _ = writeln!(out, "| {} | {} | {} |", s.label, name, ms(busy));
            }
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Pipeline impact (all `.tl` components)");
        let _ = writeln!(out);
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        let _ = writeln!(out, "| sessions (instances) | {} |", self.overall.instances);
        let _ = writeln!(out, "| D_scn | {} |", self.overall.d_scn);
        let _ = writeln!(out, "| D_run | {} |", self.overall.d_run);
        let _ = writeln!(out, "| D_wait | {} |", self.overall.d_wait);
        let _ = writeln!(out, "| IA_run | {} |", pct(self.overall.ia_run()));
        let _ = writeln!(out, "| IA_wait | {} |", pct(self.overall.ia_wait()));
        let _ = writeln!(out, "| IA_opt | {} |", pct(self.overall.ia_opt()));
        let _ = writeln!(out);

        let _ = writeln!(out, "## Per-stage impact");
        let _ = writeln!(out);
        let _ = writeln!(out, "| component | IA_run | IA_wait | D_run | D_wait |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for (module, r) in &self.per_module {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                module,
                pct(r.ia_run()),
                pct(r.ia_wait()),
                r.d_run,
                r.d_wait,
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Wait sources");
        let _ = writeln!(out);
        let _ = writeln!(out, "| wait point | blocked |");
        let _ = writeln!(out, "|---|---|");
        let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for s in &self.stats {
            for (name, ns) in &s.wait_ns_by_name {
                *totals.entry(name.as_str()).or_insert(0) += ns;
            }
        }
        for (name, ns) in &totals {
            let _ = writeln!(out, "| {name} | {} |", ms(*ns));
        }
        if let Some((name, ns)) = self.dominant_wait_source() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Dominant wait source: **{name}** ({}).", ms(ns));
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Time breakdown");
        let _ = writeln!(out);
        let _ = writeln!(out, "| bucket | time | share |");
        let _ = writeln!(out, "|---|---|---|");
        let total = self.breakdown.total.max(TimeNs(1));
        let row =
            |label: &str, t: TimeNs| format!("| {label} | {t} | {:.1}% |", 100.0 * t.ratio(total));
        let _ = writeln!(out, "{}", row("runtime CPU", self.breakdown.app_cpu));
        let _ = writeln!(out, "{}", row("pipeline CPU", self.breakdown.component_cpu));
        let _ = writeln!(
            out,
            "{}",
            row("pipeline wait", self.breakdown.component_wait())
        );
        let _ = writeln!(out, "{}", row("unattributed", self.breakdown.unattributed));
        for (module, t) in self.breakdown.ranked_modules() {
            let _ = writeln!(out, "{}", row(&format!("wait in {module}"), t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Study, StudyConfig};
    use tracelens_model::ScenarioName;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    fn observed_run(jobs: usize) -> SelfObservation {
        let ds = DatasetBuilder::new(21)
            .traces(10)
            .mix(ScenarioMix::Selected)
            .build();
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let config = StudyConfig {
            jobs,
            ..StudyConfig::default()
        };
        let (_study, recording) = Study::run_self_traced(&ds, &config, &names);
        SelfObservation::analyze(&[SelfTraceSession::new(format!("jobs={jobs}"), recording)])
    }

    #[test]
    fn self_observation_is_non_empty_and_valid() {
        let obs = observed_run(2);
        obs.dataset.validate().expect("self dataset validates");
        assert!(obs.overall.d_scn > TimeNs(0), "observed no time at all");
        assert!(
            obs.overall.ia_run() + obs.overall.ia_wait() > 0.0,
            "pipeline impact must be visible in its own trace"
        );
        assert!(!obs.per_module.is_empty(), "no .tl modules seen");
        assert!(obs
            .per_module
            .iter()
            .any(|(m, _)| m == "impact.tl" || m == "core.tl"));
    }

    #[test]
    fn parallel_run_reports_join_waits() {
        let obs = observed_run(2);
        let (name, ns) = obs.dominant_wait_source().expect("a wait was recorded");
        assert!(ns > 0);
        assert!(
            name == "pool.join" || name == "obs.lock",
            "unexpected dominant wait {name}"
        );
        let md = obs.to_markdown();
        assert!(md.contains("IA_wait"));
        assert!(md.contains("## Per-stage impact"));
        assert!(md.contains("worker-0"), "worker stream missing:\n{md}");
    }
}
