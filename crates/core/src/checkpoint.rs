//! On-disk checkpoint/resume for supervised studies.
//!
//! A checkpoint is a directory of small, versioned, line-oriented text
//! files (the workspace's textio idiom — no serialization dependencies):
//!
//! * `meta.tlc` — format version plus a fingerprint of the inputs the
//!   stored results are valid for (dataset bytes, analysis
//!   configuration, scenario list);
//! * `impact.tlc` — the global impact report, stored only when its
//!   supervised pass completed with no quarantined stream;
//! * `unit-<idx>.tlc` — one completed per-scenario result
//!   ([`ScenarioStudy`]), where `<idx>` is the scenario's position in
//!   the study's name list.
//!
//! Three rules make resume safe and byte-reproducible:
//!
//! 1. **Only successes are stored.** A quarantined unit is never
//!    written, so resuming re-executes it — and, with the same inputs,
//!    deterministically reproduces the same failure (or, with faults
//!    disabled, the missing result).
//! 2. **Any unreadable unit is a missing unit.** Torn writes, stale
//!    versions, or hand-edited files fail parsing and simply re-run;
//!    writes go through a temp file + atomic rename so a crash cannot
//!    leave a half-written file under its final name.
//! 3. **Fingerprint mismatch discards the checkpoint.** Results from a
//!    different dataset, configuration, or scenario list are never
//!    resumed into a study they do not describe. (Job count, deadlines
//!    and fault plans are deliberately *excluded* from the fingerprint:
//!    they change how work executes, not what the results mean.)

use crate::study::{ScenarioStudy, StudyConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use tracelens_causality::{
    CausalityError, CausalityReport, ContrastPattern, MiningStats, SignatureSetTuple,
};
use tracelens_impact::ImpactReport;
use tracelens_model::{Dataset, ScenarioName, Symbol, ThreadId, Thresholds, TimeNs, TraceId};

/// Version tag of the checkpoint format; bump on any codec change so
/// stale checkpoints read as missing rather than as garbage.
const VERSION: u32 = 1;

/// An open checkpoint directory, validated against a fingerprint.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    /// Opens (creating if needed) the checkpoint at `dir` for inputs
    /// with the given fingerprint. An existing checkpoint written for a
    /// *different* fingerprint is discarded: its `*.tlc` files are
    /// removed and a fresh `meta.tlc` is written.
    pub fn open(dir: &Path, fingerprint: u64) -> io::Result<Checkpoint> {
        fs::create_dir_all(dir)?;
        let meta = dir.join("meta.tlc");
        let fresh = match fs::read_to_string(&meta) {
            Ok(text) => parse_meta(&text) != Some(fingerprint),
            Err(_) => true,
        };
        if fresh {
            for entry in fs::read_dir(dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "tlc") {
                    fs::remove_file(&path)?;
                }
            }
            let mut text = String::new();
            let _ = writeln!(text, "tracelens-checkpoint {VERSION}");
            let _ = writeln!(text, "fingerprint {fingerprint:016x}");
            let _ = writeln!(text, "end");
            write_atomic(dir, "meta.tlc", &text)?;
        }
        Ok(Checkpoint {
            dir: dir.to_path_buf(),
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads every readable stored unit whose index addresses `names`
    /// and whose stored scenario matches — anything else is left for
    /// re-execution.
    pub fn load_units(&self, names: &[ScenarioName]) -> BTreeMap<usize, ScenarioStudy> {
        let mut units = BTreeMap::new();
        for (idx, name) in names.iter().enumerate() {
            let path = self.dir.join(format!("unit-{idx}.tlc"));
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            if let Some(unit) = parse_unit(&text, name) {
                units.insert(idx, unit);
            }
        }
        units
    }

    /// Stores one completed per-scenario result under index `idx`.
    pub fn store_unit(
        &self,
        idx: usize,
        name: &ScenarioName,
        unit: &ScenarioStudy,
    ) -> io::Result<()> {
        write_atomic(
            &self.dir,
            &format!("unit-{idx}.tlc"),
            &render_unit(name, unit),
        )
    }

    /// Loads the stored global impact report, if present and readable.
    pub fn load_impact(&self) -> Option<ImpactReport> {
        let text = fs::read_to_string(self.dir.join("impact.tlc")).ok()?;
        let mut lines = text.lines();
        let report = parse_impact(lines.next()?, "impact")?;
        match lines.next() {
            Some("end") => Some(report),
            _ => None,
        }
    }

    /// Stores the global impact report.
    pub fn store_impact(&self, report: &ImpactReport) -> io::Result<()> {
        let mut text = String::new();
        render_impact(&mut text, "impact", report);
        text.push_str("end\n");
        write_atomic(&self.dir, "impact.tlc", &text)
    }
}

/// Writes `name` under `dir` atomically: temp file, flush, rename.
fn write_atomic(dir: &Path, name: &str, text: &str) -> io::Result<()> {
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(name))
}

fn parse_meta(text: &str) -> Option<u64> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version: u32 = header.strip_prefix("tracelens-checkpoint ")?.parse().ok()?;
    if version != VERSION {
        return None;
    }
    let fp = lines.next()?.strip_prefix("fingerprint ")?;
    u64::from_str_radix(fp, 16).ok()
}

/// Fingerprint of everything a checkpoint's results depend on: the
/// dataset's canonical text, the analysis configuration, and the
/// ordered scenario list.
pub fn fingerprint(dataset: &Dataset, config: &StudyConfig, names: &[ScenarioName]) -> u64 {
    let mut hasher = FnvWriter::new();
    // write_text to an in-memory hasher cannot fail.
    let _ = dataset.write_text(&mut hasher);
    let mut trailer = format!(
        "|components {:?}|causality {:?} {} {}",
        config.components,
        config.causality.components,
        config.causality.segment_bound,
        config.causality.reduce
    );
    // Governance changes what a unit computes (degraded slices, sheds),
    // so results under different budgets must never restore each other.
    // The ungoverned, un-faulted default contributes nothing, keeping
    // pre-governance checkpoints valid.
    if config.govern.is_governed() {
        let _ = write!(
            trailer,
            "|govern {:?} {:?}",
            config.govern.budget_bytes, config.govern.action
        );
    }
    if let Some(mem) = config.mem_faults.filter(|p| p.is_armed()) {
        let _ = write!(trailer, "|memfaults {mem}");
    }
    trailer.push_str("|names");
    for name in names {
        let _ = write!(trailer, " {name}");
    }
    let _ = io::Write::write(&mut hasher, trailer.as_bytes());
    hasher.finish()
}

/// FNV-1a 64 over a byte stream, usable as an `io::Write` sink so the
/// dataset's text encoding hashes without materializing it.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter(0xCBF2_9CE4_8422_2325)
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl io::Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Unit codec
// ---------------------------------------------------------------------

fn render_unit(name: &ScenarioName, unit: &ScenarioStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {name}");
    render_impact(&mut out, "impact", &unit.impact);
    render_impact(&mut out, "slow-impact", &unit.slow_impact);
    match &unit.causality {
        Err(CausalityError::UnknownScenario(s)) => {
            let _ = writeln!(out, "causality-err-unknown {s}");
        }
        Err(CausalityError::EmptyClass { class, scenario }) => {
            let _ = writeln!(out, "causality-err-empty {class} {scenario}");
        }
        Ok(c) => {
            let _ = writeln!(out, "causality-ok");
            let _ = writeln!(
                out,
                "thresholds {} {}",
                c.thresholds.fast().0,
                c.thresholds.slow().0
            );
            let _ = writeln!(
                out,
                "classes {} {} {}",
                c.fast_instances, c.slow_instances, c.margin_instances
            );
            let s = &c.stats;
            let _ = writeln!(
                out,
                "stats {} {} {} {} {} {}",
                s.fast_metas,
                s.slow_metas,
                s.contrast_metas,
                s.slow_paths,
                s.zero_cost_pruned,
                s.patterns
            );
            let _ = writeln!(
                out,
                "scope {} {}",
                c.slow_scope_time.0, c.slow_reduced_time.0
            );
            let _ = writeln!(out, "patterns {}", c.patterns.len());
            for p in &c.patterns {
                render_symbols(&mut out, "wait", &p.tuple.wait);
                render_symbols(&mut out, "unwait", &p.tuple.unwait);
                render_symbols(&mut out, "running", &p.tuple.running);
                let _ = writeln!(out, "cost {} {} {}", p.c.0, p.n, p.c_max.0);
                let mut line = format!("examples {}", p.examples.len());
                for (trace, tid) in &p.examples {
                    let _ = write!(line, " {} {}", trace.0, tid.0);
                }
                let _ = writeln!(out, "{line}");
            }
        }
    }
    out.push_str("end\n");
    out
}

fn render_impact(out: &mut String, key: &str, r: &ImpactReport) {
    let _ = writeln!(
        out,
        "{key} {} {} {} {} {} {}",
        r.d_scn.0, r.d_wait.0, r.d_run.0, r.d_wait_dist.0, r.instances, r.nodes_visited
    );
}

fn render_symbols(out: &mut String, key: &str, set: &std::collections::BTreeSet<Symbol>) {
    let mut line = format!("{key} {}", set.len());
    for s in set {
        let _ = write!(line, " {}", s.0);
    }
    let _ = writeln!(out, "{line}");
}

/// Parses one stored unit; `None` on any mismatch (treated as missing).
fn parse_unit(text: &str, expect: &ScenarioName) -> Option<ScenarioStudy> {
    let mut lines = text.lines();
    let name = lines.next()?.strip_prefix("scenario ")?;
    if name != expect.as_str() {
        return None;
    }
    let impact = parse_impact(lines.next()?, "impact")?;
    let slow_impact = parse_impact(lines.next()?, "slow-impact")?;
    let verdict = lines.next()?;
    let causality = if let Some(s) = verdict.strip_prefix("causality-err-unknown ") {
        Err(CausalityError::UnknownScenario(ScenarioName::new(s)))
    } else if let Some(rest) = verdict.strip_prefix("causality-err-empty ") {
        let (class, scenario) = rest.split_once(' ')?;
        let class = match class {
            "fast" => "fast",
            "slow" => "slow",
            _ => return None,
        };
        Err(CausalityError::EmptyClass {
            class,
            scenario: ScenarioName::new(scenario),
        })
    } else if verdict == "causality-ok" {
        Ok(parse_report(&mut lines, expect)?)
    } else {
        return None;
    };
    match lines.next() {
        Some("end") => Some(ScenarioStudy {
            impact,
            slow_impact,
            causality,
        }),
        _ => None,
    }
}

fn parse_report<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    scenario: &ScenarioName,
) -> Option<CausalityReport> {
    let th = parse_ints::<2>(lines.next()?, "thresholds")?;
    if th[0] >= th[1] {
        return None; // Thresholds::new would panic
    }
    let classes = parse_ints::<3>(lines.next()?, "classes")?;
    let stats = parse_ints::<6>(lines.next()?, "stats")?;
    let scope = parse_ints::<2>(lines.next()?, "scope")?;
    let n_patterns = parse_ints::<1>(lines.next()?, "patterns")?[0] as usize;
    let mut patterns = Vec::with_capacity(n_patterns.min(1024));
    for _ in 0..n_patterns {
        let wait = parse_symbols(lines.next()?, "wait")?;
        let unwait = parse_symbols(lines.next()?, "unwait")?;
        let running = parse_symbols(lines.next()?, "running")?;
        let cost = parse_ints::<3>(lines.next()?, "cost")?;
        let ex_line = lines.next()?.strip_prefix("examples ")?;
        let mut parts = ex_line.split(' ');
        let n_ex: usize = parts.next()?.parse().ok()?;
        let mut examples = Vec::with_capacity(n_ex.min(64));
        for _ in 0..n_ex {
            let trace: u32 = parts.next()?.parse().ok()?;
            let tid: u32 = parts.next()?.parse().ok()?;
            examples.push((TraceId(trace), ThreadId(tid)));
        }
        if parts.next().is_some() {
            return None;
        }
        patterns.push(ContrastPattern {
            tuple: SignatureSetTuple {
                wait,
                unwait,
                running,
            },
            c: TimeNs(cost[0]),
            n: cost[1],
            c_max: TimeNs(cost[2]),
            examples,
        });
    }
    Some(CausalityReport {
        scenario: *scenario,
        thresholds: Thresholds::new(TimeNs(th[0]), TimeNs(th[1])),
        fast_instances: classes[0] as usize,
        slow_instances: classes[1] as usize,
        margin_instances: classes[2] as usize,
        patterns,
        stats: MiningStats {
            fast_metas: stats[0] as usize,
            slow_metas: stats[1] as usize,
            contrast_metas: stats[2] as usize,
            slow_paths: stats[3] as usize,
            zero_cost_pruned: stats[4] as usize,
            patterns: stats[5] as usize,
        },
        slow_scope_time: TimeNs(scope[0]),
        slow_reduced_time: TimeNs(scope[1]),
    })
}

fn parse_impact(line: &str, key: &str) -> Option<ImpactReport> {
    let v = parse_ints::<6>(line, key)?;
    Some(ImpactReport {
        d_scn: TimeNs(v[0]),
        d_wait: TimeNs(v[1]),
        d_run: TimeNs(v[2]),
        d_wait_dist: TimeNs(v[3]),
        instances: v[4] as usize,
        nodes_visited: v[5] as usize,
    })
}

/// Parses `key v1 .. vN` into exactly `N` integers.
fn parse_ints<const N: usize>(line: &str, key: &str) -> Option<[u64; N]> {
    let rest = line.strip_prefix(key)?.strip_prefix(' ')?;
    let mut out = [0u64; N];
    let mut parts = rest.split(' ');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

fn parse_symbols(line: &str, key: &str) -> Option<std::collections::BTreeSet<Symbol>> {
    let rest = line.strip_prefix(key)?.strip_prefix(' ')?;
    let mut parts = rest.split(' ');
    let n: usize = parts.next()?.parse().ok()?;
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..n {
        set.insert(Symbol(parts.next()?.parse().ok()?));
    }
    if parts.next().is_some() || set.len() != n {
        return None;
    }
    Some(set)
}
