//! Property-based tests for the JSON layer and report rendering.

use proptest::prelude::*;
use tracelens_obs::json::{self, Value};
use tracelens_obs::{CollectingSink, Histogram};

/// Re-serializes a parsed value with the writer, canonically.
fn write_value(w: &mut json::JsonWriter, key: Option<&str>, v: &Value) {
    match v {
        Value::Null => w.null(key),
        Value::Bool(b) => w.bool(key, *b),
        Value::UInt(n) => w.u64(key, *n),
        Value::Int(n) => w.i64(key, *n),
        Value::Float(f) => w.f64(key, *f),
        Value::Str(s) => w.str(key, s),
        Value::Arr(items) => {
            w.begin_arr(key);
            for item in items {
                write_value(w, None, item);
            }
            w.end_arr();
        }
        Value::Obj(map) => {
            w.begin_obj(key);
            for (k, item) in map {
                write_value(w, Some(k), item);
            }
            w.end_obj();
        }
    }
}

proptest! {
    /// Arbitrary strings (the `any::<String>` domain includes controls,
    /// quotes, backslashes and astral-plane characters) survive
    /// escape → parse unchanged.
    #[test]
    fn string_escaping_round_trips(s in any::<String>()) {
        let escaped = json::escape(&s);
        let parsed = json::parse(&escaped).expect("escaped string parses");
        prop_assert_eq!(parsed, Value::Str(s));
    }

    /// The escaped form never leaks raw quotes, backslashes or control
    /// characters into the document.
    #[test]
    fn escaped_form_is_clean(s in any::<String>()) {
        let escaped = json::escape(&s);
        let body = &escaped[1..escaped.len() - 1];
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            prop_assert!((c as u32) >= 0x20, "raw control {c:?} in {escaped:?}");
            prop_assert!(c != '"', "raw quote in {escaped:?}");
            if c == '\\' {
                let next = chars.next().expect("escape has a follower");
                prop_assert!("\"\\/nrtbfu".contains(next), "bad escape \\{next}");
                if next == 'u' {
                    for _ in 0..4 {
                        let d = chars.next().expect("four hex digits");
                        prop_assert!(d.is_ascii_hexdigit());
                    }
                }
            }
        }
    }

    /// Unsigned and signed integers round-trip exactly across the full
    /// 64-bit range.
    #[test]
    fn integers_round_trip(u in any::<u64>(), i in any::<i64>()) {
        prop_assert_eq!(json::parse(&u.to_string()), Ok(Value::UInt(u)));
        let expected = if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) };
        prop_assert_eq!(json::parse(&i.to_string()), Ok(expected));
    }

    /// Writer output re-parses to the same tree, including nesting.
    #[test]
    fn documents_round_trip(
        keys in prop::collection::vec("[a-z_.]{1,12}", 1..6),
        strings in prop::collection::vec(any::<String>(), 1..6),
        nums in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let mut w = json::JsonWriter::new();
        w.begin_obj(None);
        for (i, key) in keys.iter().enumerate() {
            let s = &strings[i % strings.len()];
            let n = nums[i % nums.len()];
            w.begin_obj(Some(key));
            w.str(Some("text"), s);
            w.u64(Some("n"), n);
            w.begin_arr(Some("items"));
            w.str(None, s);
            w.u64(None, n);
            w.end_arr();
            w.end_obj();
        }
        w.end_obj();
        let text = w.finish();
        let parsed = json::parse(&text).expect("writer output parses");
        // Distinct keys each carry their own payload back out.
        for (i, key) in keys.iter().enumerate() {
            let Some(obj) = parsed.get(key) else { continue };
            // Duplicate keys keep the last write, so only check when
            // this index is the final occurrence.
            if keys.iter().rposition(|k| k == key) != Some(i) {
                continue;
            }
            let s = &strings[i % strings.len()];
            let n = nums[i % nums.len()];
            prop_assert_eq!(obj.get("text").unwrap().as_str(), Some(s.as_str()));
            prop_assert_eq!(obj.get("n").unwrap().as_u64(), Some(n));
        }
    }

    /// parse → write → parse is a fixed point (canonicalization is
    /// idempotent) for documents the writer itself produced.
    #[test]
    fn reserialization_is_stable(s in any::<String>(), n in any::<u64>()) {
        let mut w = json::JsonWriter::new();
        w.begin_obj(None);
        w.str(Some("s"), &s);
        w.u64(Some("n"), n);
        w.begin_arr(Some("a"));
        w.null(None);
        w.bool(None, true);
        w.end_arr();
        w.end_obj();
        let first = w.finish();
        let v1 = json::parse(&first).expect("first parse");
        let mut w2 = json::JsonWriter::new();
        write_value(&mut w2, None, &v1);
        let second = w2.finish();
        let v2 = json::parse(&second).expect("second parse");
        prop_assert_eq!(v1, v2);
    }

    /// Every recorded value lands in exactly one bucket, and the bucket
    /// chosen admits the value while the previous one does not.
    #[test]
    fn histogram_buckets_partition(values in prop::collection::vec(any::<u64>(), 1..50)) {
        let bounds = [10u64, 1_000, 50_000, 1_000_000];
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.record(v);
        }
        let counts = h.counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        for &v in &values {
            let expected = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            let solo = Histogram::new(&bounds);
            solo.record(v);
            prop_assert_eq!(solo.counts()[expected], 1, "value {v} bucket {expected}");
        }
    }

    /// Telemetry reports render to valid JSON whatever the counter
    /// names' values — including extreme u64s.
    #[test]
    fn reports_always_render_valid_json(deltas in prop::collection::vec(any::<u64>(), 1..10)) {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _run = t.span("run");
            for (i, &d) in deltas.iter().enumerate() {
                // Names must be 'static; cycle a fixed set.
                const NAMES: [&str; 4] = ["a.count", "b.count", "c.count", "d.count"];
                t.count(NAMES[i % NAMES.len()], d);
                t.record("h", d);
            }
        }
        let report = sink.report();
        let text = report.to_json();
        let v = json::parse(&text).expect("report parses");
        let total: u64 = report.metrics.counters.values().fold(0, |acc, &x| acc.wrapping_add(x));
        let parsed_total: u64 = match v.get("counters").unwrap() {
            Value::Obj(map) => map.values().map(|c| c.as_u64().unwrap()).fold(0, u64::wrapping_add),
            _ => panic!("counters must be an object"),
        };
        prop_assert_eq!(total, parsed_total);
    }
}
