//! Fixed-bucket histograms for latency-shaped distributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default bucket upper bounds for nanosecond latencies: powers of four
/// from 1 µs to ~4.6 min, plus the implicit overflow bucket. Thirteen
/// buckets cover six decades — coarse, but a telemetry report needs the
/// shape, not percentile-exact tails.
pub const DEFAULT_TIME_BOUNDS_NS: &[u64] = &[
    1_000,           // 1 µs
    4_000,           // 4 µs
    16_000,          // 16 µs
    64_000,          // 64 µs
    256_000,         // 256 µs
    1_024_000,       // ~1 ms
    4_096_000,       // ~4 ms
    16_384_000,      // ~16 ms
    65_536_000,      // ~66 ms
    262_144_000,     // ~262 ms
    1_048_576_000,   // ~1 s
    4_194_304_000,   // ~4.2 s
    16_777_216_000,  // ~16.8 s
    67_108_864_000,  // ~67 s
    268_435_456_000, // ~4.5 min
];

/// A histogram with fixed, monotonically increasing bucket bounds.
///
/// `bounds[i]` is the *inclusive* upper edge of bucket `i`; one extra
/// bucket catches everything above the last bound. Recording is a
/// binary search plus one relaxed atomic increment — safe to call from
/// any thread, never allocates.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// A histogram with [`DEFAULT_TIME_BOUNDS_NS`].
    pub fn time() -> Histogram {
        Histogram::new(DEFAULT_TIME_BOUNDS_NS)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        // partition_point returns the count of bounds strictly below
        // `value`, i.e. the first bucket whose inclusive edge admits it.
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The bucket upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Snapshot of all bucket counts; the final entry is the overflow
    /// bucket (observations above the last bound).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn n(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observed values (wraps on overflow, like the atomics).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) of the recorded values,
    /// linearly interpolated within the winning bucket. See
    /// [`percentile_from_buckets`] for the exact rules.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from_buckets(&self.bounds, &self.counts(), q)
    }
}

/// Bucket-quantile estimation shared by [`Histogram`] and registry
/// snapshots: walks the cumulative counts to the bucket holding the
/// `q`-quantile observation and interpolates linearly between the
/// bucket's edges (previous bound → own bound; the first bucket starts
/// at zero).
///
/// Estimates are capped at the final bound: observations in the
/// overflow bucket have no upper edge, so any quantile landing there
/// reports the last bound itself. Returns 0 for an empty histogram;
/// `q` is clamped to `[0, 1]`.
pub fn percentile_from_buckets(bounds: &[u64], counts: &[u64], q: f64) -> u64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0;
    }
    // 1-based rank of the quantile observation.
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if seen + c < rank {
            seen += c;
            continue;
        }
        let Some(&upper) = bounds.get(i) else {
            // Overflow bucket: unbounded above, report the last edge.
            return bounds.last().copied().unwrap_or(0);
        };
        let lower = if i == 0 { 0 } else { bounds[i - 1] };
        let fraction = (rank - seen) as f64 / c as f64;
        return lower + ((upper - lower) as f64 * fraction).round() as u64;
    }
    bounds.last().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive() {
        let h = Histogram::new(&[10, 100]);
        h.record(0); // -> bucket 0
        h.record(10); // inclusive edge -> bucket 0
        h.record(11); // -> bucket 1
        h.record(100); // inclusive edge -> bucket 1
        h.record(101); // -> overflow
        h.record(u64::MAX); // -> overflow
        assert_eq!(h.counts(), vec![2, 2, 2]);
        assert_eq!(h.n(), 6);
    }

    #[test]
    fn sum_accumulates() {
        let h = Histogram::new(&[5]);
        h.record(3);
        h.record(4);
        h.record(1000);
        assert_eq!(h.sum(), 1007);
    }

    #[test]
    fn default_time_bounds_are_strictly_increasing() {
        let h = Histogram::time();
        assert_eq!(h.bounds().len(), DEFAULT_TIME_BOUNDS_NS.len());
        assert_eq!(h.counts().len(), DEFAULT_TIME_BOUNDS_NS.len() + 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new(&[100, 200, 400]);
        for v in [50, 150, 150, 150, 250, 250, 250, 250, 250, 300] {
            h.record(v);
        }
        // n=10: p50 → rank 5, the first of six observations in
        // (200, 400] → 200 + 400·(1/6) interpolated.
        assert_eq!(h.percentile(0.5), 233);
        // p10 → rank 1, in [0, 100].
        assert_eq!(h.percentile(0.1), 100);
        // p100 → rank 10, last in (200, 400].
        assert_eq!(h.percentile(1.0), 400);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::time();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn percentile_in_overflow_bucket_reports_last_bound() {
        let h = Histogram::new(&[10, 20]);
        h.record(5);
        h.record(1_000_000);
        h.record(2_000_000);
        assert_eq!(h.percentile(0.99), 20);
        // q is clamped, not rejected.
        assert_eq!(h.percentile(7.0), 20);
        assert_eq!(h.percentile(-1.0), 10);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(&[50]));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 25 + (i % 3));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.n(), 4000);
    }
}
