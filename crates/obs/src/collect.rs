//! The in-memory [`CollectingSink`] and its frozen [`RunReport`].

use crate::json::JsonWriter;
use crate::registry::{MetricsSnapshot, Registry};
use crate::telemetry::{SpanId, Telemetry, TelemetrySink};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// A sink that stores every span and metric in memory.
///
/// Attach it with [`CollectingSink::telemetry`]; once the run finishes,
/// [`report`](CollectingSink::report) freezes everything into a
/// [`RunReport`] for rendering.
#[derive(Debug, Default)]
pub struct CollectingSink {
    registry: Registry,
    spans: Mutex<Vec<SpanNode>>,
}

#[derive(Debug, Clone)]
struct SpanNode {
    name: &'static str,
    parent: Option<SpanId>,
    elapsed_ns: Option<u64>,
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Creates a sink plus a [`Telemetry`] handle wired to it.
    pub fn telemetry() -> (Telemetry, Arc<CollectingSink>) {
        let sink = Arc::new(CollectingSink::new());
        let handle = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        (handle, sink)
    }

    /// Direct access to the metric store.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Freezes the collected data. Spans still open at this point are
    /// reported with a `null` duration.
    pub fn report(&self) -> RunReport {
        let nodes = self.spans.lock().expect("span store lock").clone();
        // Children were appended after their parents, so one forward
        // pass hangs every subtree off the right root.
        let mut reports: Vec<Option<SpanReport>> = nodes
            .iter()
            .map(|n| {
                Some(SpanReport {
                    name: n.name.to_owned(),
                    elapsed_ns: n.elapsed_ns,
                    children: Vec::new(),
                })
            })
            .collect();
        let mut roots = Vec::new();
        for (i, node) in nodes.iter().enumerate().rev() {
            let report = reports[i].take().expect("each node taken once");
            match node.parent {
                Some(SpanId(p)) => {
                    let parent = reports[p as usize]
                        .as_mut()
                        .expect("parents outlive children in the store");
                    parent.children.insert(0, report);
                }
                None => roots.insert(0, report),
            }
        }
        RunReport {
            spans: roots,
            metrics: self.registry.snapshot(),
        }
    }
}

impl TelemetrySink for CollectingSink {
    fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let mut spans = self.spans.lock().expect("span store lock");
        let id = SpanId(spans.len() as u64);
        spans.push(SpanNode {
            name,
            parent,
            elapsed_ns: None,
        });
        id
    }

    fn span_exit(&self, id: SpanId, elapsed_ns: u64) {
        let mut spans = self.spans.lock().expect("span store lock");
        if let Some(node) = spans.get_mut(id.0 as usize) {
            node.elapsed_ns = Some(elapsed_ns);
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.registry.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &'static str, value: i64) {
        self.registry.gauge_set(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.registry.histogram_record(name, value);
    }
}

/// One reported span with its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// The span's name.
    pub name: String,
    /// Measured wall time; `None` if the span never closed.
    pub elapsed_ns: Option<u64>,
    /// Nested spans, in open order.
    pub children: Vec<SpanReport>,
}

impl SpanReport {
    /// Wall time spent in this span *exclusive* of its closed children
    /// (saturating: a child that outlived its parent clamps to zero).
    ///
    /// Spans measure inclusive wall time, so summing a parent and its
    /// children double-counts; attribution tables must use this.
    pub fn exclusive_ns(&self) -> u64 {
        let own = self.elapsed_ns.unwrap_or(0);
        let children: u64 = self
            .children
            .iter()
            .map(|c| c.elapsed_ns.unwrap_or(0))
            .sum();
        own.saturating_sub(children)
    }
}

/// Everything one run recorded, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Top-level spans, in open order.
    pub spans: Vec<SpanReport>,
    /// Final counter/gauge/histogram values.
    pub metrics: MetricsSnapshot,
}

/// Version tag written into every JSON report.
pub const REPORT_VERSION: u64 = 1;

impl RunReport {
    /// All span names in the report, depth-first, with duplicates.
    pub fn span_names(&self) -> Vec<&str> {
        fn walk<'a>(spans: &'a [SpanReport], out: &mut Vec<&'a str>) {
            for s in spans {
                out.push(&s.name);
                walk(&s.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }

    /// Total closed wall time across every span named `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        fn walk(spans: &[SpanReport], name: &str, total: &mut u64) {
            for s in spans {
                if s.name == name {
                    *total += s.elapsed_ns.unwrap_or(0);
                }
                walk(&s.children, name, total);
            }
        }
        let mut total = 0;
        walk(&self.spans, name, &mut total);
        total
    }

    /// Renders the report as a JSON document (see the crate docs for
    /// the schema).
    pub fn to_json(&self) -> String {
        fn write_span(w: &mut JsonWriter, span: &SpanReport) {
            w.begin_obj(None);
            w.str(Some("name"), &span.name);
            match span.elapsed_ns {
                Some(ns) => w.u64(Some("elapsed_ns"), ns),
                None => w.null(Some("elapsed_ns")),
            }
            w.begin_arr(Some("children"));
            for child in &span.children {
                write_span(w, child);
            }
            w.end_arr();
            w.end_obj();
        }

        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.u64(Some("tracelens_telemetry"), REPORT_VERSION);
        w.begin_arr(Some("spans"));
        for span in &self.spans {
            write_span(&mut w, span);
        }
        w.end_arr();
        w.begin_obj(Some("counters"));
        for (name, value) in &self.metrics.counters {
            w.u64(Some(name), *value);
        }
        w.end_obj();
        w.begin_obj(Some("gauges"));
        for (name, value) in &self.metrics.gauges {
            w.i64(Some(name), *value);
        }
        w.end_obj();
        w.begin_obj(Some("histograms"));
        for (name, h) in &self.metrics.histograms {
            w.begin_obj(Some(name));
            w.begin_arr(Some("bounds"));
            for b in &h.bounds {
                w.u64(None, *b);
            }
            w.end_arr();
            w.begin_arr(Some("counts"));
            for c in &h.counts {
                w.u64(None, *c);
            }
            w.end_arr();
            w.u64(Some("sum"), h.sum);
            w.u64(Some("p50"), h.percentile(0.50));
            w.u64(Some("p95"), h.percentile(0.95));
            w.u64(Some("p99"), h.percentile(0.99));
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        let mut text = w.finish();
        text.push('\n');
        text
    }

    /// Renders the report as human-oriented markdown.
    pub fn to_markdown(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2} s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2} ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.2} µs", ns as f64 / 1e3)
            } else {
                format!("{ns} ns")
            }
        }

        fn write_span(out: &mut String, span: &SpanReport, depth: usize) {
            let indent = "&nbsp;&nbsp;".repeat(depth);
            let elapsed = span.elapsed_ns.map_or_else(|| "(open)".to_owned(), fmt_ns);
            let _ = writeln!(out, "| {indent}{} | {elapsed} |", span.name);
            for child in &span.children {
                write_span(out, child, depth + 1);
            }
        }

        let mut out = String::from("# Telemetry report\n");
        if !self.spans.is_empty() {
            out.push_str("\n## Stages\n\n| span | wall time |\n|---|---|\n");
            for span in &self.spans {
                write_span(&mut out, span, 0);
            }
        }
        if !self.metrics.counters.is_empty() {
            out.push_str("\n## Counters\n\n| counter | value |\n|---|---|\n");
            for (name, value) in &self.metrics.counters {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }
        if !self.metrics.gauges.is_empty() {
            out.push_str("\n## Gauges\n\n| gauge | value |\n|---|---|\n");
            for (name, value) in &self.metrics.gauges {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }
        if !self.metrics.histograms.is_empty() {
            out.push_str(
                "\n## Histograms\n\n| histogram | n | mean | p50 | p95 | p99 |\n\
                 |---|---|---|---|---|---|\n",
            );
            for (name, h) in &self.metrics.histograms {
                let n = h.n();
                let mean = match h.sum.checked_div(n) {
                    Some(mean) => fmt_ns(mean),
                    None => "-".to_owned(),
                };
                let quantile = |q| {
                    if n == 0 {
                        "-".to_owned()
                    } else {
                        fmt_ns(h.percentile(q))
                    }
                };
                let _ = writeln!(
                    out,
                    "| {name} | {n} | {mean} | {} | {} | {} |",
                    quantile(0.50),
                    quantile(0.95),
                    quantile(0.99)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_span_tree_and_metrics() {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _run = t.span("run");
            {
                let _sim = t.span("sim");
                t.count("sim.events", 42);
            }
            let _mine = t.span("contrast");
            t.record("latency", 5_000);
            t.gauge("depth", 3);
        }
        let report = sink.report();
        assert_eq!(report.span_names(), vec!["run", "sim", "contrast"]);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].children.len(), 2);
        assert!(report.spans[0].elapsed_ns.is_some());
        assert_eq!(report.metrics.counters["sim.events"], 42);
        assert_eq!(report.metrics.gauges["depth"], 3);
        assert_eq!(report.metrics.histograms["latency"].n(), 1);
    }

    #[test]
    fn parent_time_covers_children() {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let report = sink.report();
        let outer = report.total_ns("outer");
        let inner = report.total_ns("inner");
        assert!(
            outer >= inner,
            "outer ({outer}ns) must cover inner ({inner}ns)"
        );
    }

    #[test]
    fn open_spans_render_as_null() {
        let (t, sink) = CollectingSink::telemetry();
        let _held = t.span("never-closed");
        let report = sink.report();
        assert_eq!(report.spans[0].elapsed_ns, None);
        let json = report.to_json();
        assert!(json.contains("\"elapsed_ns\": null"), "{json}");
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _a = t.span("alpha");
            t.count("alpha.items", 3);
        }
        let report = sink.report();
        let text = report.to_json();
        let v = crate::json::parse(&text).expect("report JSON parses");
        assert_eq!(
            v.get("tracelens_telemetry").unwrap().as_u64(),
            Some(REPORT_VERSION)
        );
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("alpha.items")
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }

    #[test]
    fn markdown_report_lists_everything() {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _a = t.span("analysis");
            t.count("paths", 7);
            t.gauge("workers", 1);
            t.record("cost", 2_500_000);
        }
        let md = sink.report().to_markdown();
        for needle in [
            "## Stages",
            "analysis",
            "## Counters",
            "paths | 7",
            "## Gauges",
            "## Histograms",
            "cost",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn nested_span_time_is_exclusive_not_double_counted() {
        // Regression guard for telemetry double-accounting: the time a
        // parent span reports must *include* its child exactly once, so
        // exclusive_ns (parent minus children) stays non-negative and
        // the exclusive parts sum back to the root's inclusive time.
        let (t, sink) = CollectingSink::telemetry();
        {
            let _outer = t.span("outer");
            std::hint::black_box((0..20_000).sum::<u64>());
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            std::hint::black_box((0..20_000).sum::<u64>());
        }
        let report = sink.report();
        let outer = &report.spans[0];
        let inner = &outer.children[0];
        let outer_ns = outer.elapsed_ns.unwrap();
        let inner_ns = inner.elapsed_ns.unwrap();
        assert!(outer_ns >= inner_ns, "inclusive parent covers child");
        assert_eq!(outer.exclusive_ns(), outer_ns - inner_ns);
        assert_eq!(
            outer.exclusive_ns() + inner.exclusive_ns(),
            outer_ns,
            "exclusive times partition the root's inclusive time"
        );
    }

    #[test]
    fn reports_render_percentiles() {
        let (t, sink) = CollectingSink::telemetry();
        for v in [1_000_u64, 2_000, 500_000, 500_000_000] {
            t.record("lat", v);
        }
        let report = sink.report();
        let json = report.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        let lat = v.get("histograms").unwrap().get("lat").unwrap();
        for key in ["p50", "p95", "p99"] {
            let q = lat.get(key).and_then(crate::json::Value::as_u64);
            assert!(q.is_some_and(|q| q > 0), "missing {key} in {json}");
        }
        let md = report.to_markdown();
        assert!(md.contains("| p50 | p95 | p99 |"), "{md}");
    }

    #[test]
    fn total_ns_sums_repeated_stage_names() {
        let (t, sink) = CollectingSink::telemetry();
        for _ in 0..3 {
            let _s = t.span("repeat");
        }
        let report = sink.report();
        assert_eq!(report.span_names().len(), 3);
        // All three closed: total is the sum of their (tiny) durations.
        assert!(report.spans.iter().all(|s| s.elapsed_ns.is_some()));
        let _ = report.total_ns("repeat");
    }
}
