//! # tracelens-obs — zero-dependency observability for tracelens
//!
//! The analysis pipeline described in the paper is itself a program
//! whose performance and behavior deserve traces. This crate provides
//! the minimal vocabulary to observe it from the inside:
//!
//! * **spans** — hierarchical wall-time measurements opened with
//!   [`Telemetry::span`] and closed by RAII guard drop;
//! * **counters / gauges** — named atomics for "how many" and
//!   "how much right now";
//! * **histograms** — fixed-bucket latency distributions
//!   ([`Histogram`]);
//! * **sinks** — where events go: the allocation-free disabled default
//!   ([`Telemetry::noop`] / [`NoopSink`]) or the in-memory
//!   [`CollectingSink`] whose [`RunReport`] renders to JSON or
//!   markdown.
//!
//! Everything is hand-rolled on `std` — no external crates — matching
//! the workspace's textio philosophy. The JSON layer lives in
//! [`json`]; the report schema is:
//!
//! ```json
//! {
//!   "tracelens_telemetry": 1,
//!   "spans": [ {"name": "sim", "elapsed_ns": 12345, "children": [...]} ],
//!   "counters": { "sim.events": 678 },
//!   "gauges": { "aggregate.classes": 2 },
//!   "histograms": { "waitgraph.build_ns": {"bounds": [...], "counts": [...], "sum": 9} }
//! }
//! ```
//!
//! ## Cost model
//!
//! A disabled [`Telemetry`] handle holds no sink: every call is one
//! `Option` branch, with no allocation, atomics or thread-local access.
//! Instrumented code follows two rules to keep that true:
//!
//! 1. metric names are `&'static str` constants (see [`stage`]);
//! 2. per-event work guards on [`Telemetry::enabled`] and records
//!    *stage-level* aggregates, never per-event allocations.

mod collect;
mod histogram;
pub mod json;
mod registry;
mod telemetry;

pub use collect::{CollectingSink, RunReport, SpanReport, REPORT_VERSION};
pub use histogram::{percentile_from_buckets, Histogram, DEFAULT_TIME_BOUNDS_NS};
pub use registry::{HistogramSnapshot, MetricsSnapshot, Registry};
pub use telemetry::{
    NoopSink, SpanContext, SpanGuard, SpanId, Telemetry, TelemetrySink, WaitGuard,
};

/// Canonical names for the pipeline's *wait points* — places a thread
/// blocks on another thread's progress. An event recorder turns these
/// into ETW-shaped wait/unwait pairs; ordinary sinks ignore them.
pub mod waitpoint {
    /// The spawning thread blocking until every pool worker finishes
    /// (one barrier wait per parallel batch; the last worker wakes it).
    pub const POOL_JOIN: &str = "pool.join";
    /// A recorder blocking on its own ingest lock (self-observation
    /// overhead made visible instead of hidden).
    pub const OBS_LOCK: &str = "obs.lock";
}

/// Canonical span names for the analysis pipeline's stages.
///
/// Every instrumented layer uses these constants so reports from
/// different binaries agree on vocabulary.
pub mod stage {
    /// Trace-corpus generation (`tracelens-sim`).
    pub const SIM: &str = "sim";
    /// Stream indexing and wait-graph construction
    /// (`tracelens-waitgraph`).
    pub const WAITGRAPH: &str = "waitgraph";
    /// Component impact accounting (`tracelens-impact`).
    pub const IMPACT: &str = "impact";
    /// Fast/slow class splitting (`tracelens-causality`).
    pub const CLASSES: &str = "classes";
    /// Per-class aggregated wait-graph construction.
    pub const AGGREGATE: &str = "aggregate";
    /// AWG reduction.
    pub const REDUCE: &str = "reduce";
    /// Segment/meta-pattern enumeration.
    pub const SEGMENTS: &str = "segments";
    /// Contrast mining of fast vs. slow patterns.
    pub const CONTRAST: &str = "contrast";
    /// A whole `Study` scenario run (parent of the above).
    pub const STUDY: &str = "study";
    /// Data-set sanitization (repair + quarantine) before analysis.
    /// Not part of [`PIPELINE`]: it only runs on corrupt input paths.
    pub const SANITIZE: &str = "sanitize";
    /// Thread-pool execution (`tracelens-pool`): worker fan-out,
    /// queue-depth and busy-time metrics. Not part of [`PIPELINE`]: the
    /// pool runs *inside* the other stages.
    pub const POOL: &str = "pool";
    /// Supervised (fail-operational) execution: panic isolation,
    /// retries, per-unit deadlines and quarantine accounting. Not part
    /// of [`PIPELINE`]: supervision wraps the other stages.
    pub const SUPERVISE: &str = "supervise";
    /// Checkpoint save/restore of completed study units. Not part of
    /// [`PIPELINE`]: it only runs when `--checkpoint` is given.
    pub const CHECKPOINT: &str = "checkpoint";
    /// Resource governance: memory-budget admission, degradation and
    /// shedding decisions. Not part of [`PIPELINE`]: governance wraps
    /// the other stages like supervision does.
    pub const GOVERN: &str = "govern";
    /// Trace-store ingestion: text parse (serial or sharded-parallel)
    /// or binary-cache load, plus cache writes. Not part of
    /// [`PIPELINE`]: it only runs when loading external data sets.
    pub const INGEST: &str = "ingest";
    /// Chaos campaign execution (`tracelens-chaos`): composed
    /// fault-plane runs, invariant-oracle checks, and failure
    /// minimization. Not part of [`PIPELINE`]: chaos wraps whole
    /// studies.
    pub const CHAOS: &str = "chaos";

    /// The pipeline stages every full analysis run reports, in order.
    pub const PIPELINE: &[&str] = &[
        SIM, WAITGRAPH, IMPACT, CLASSES, AGGREGATE, SEGMENTS, CONTRAST,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_distinct() {
        let mut names: Vec<&str> = stage::PIPELINE.to_vec();
        names.push(stage::REDUCE);
        names.push(stage::STUDY);
        names.push(stage::SANITIZE);
        names.push(stage::POOL);
        names.push(stage::SUPERVISE);
        names.push(stage::CHECKPOINT);
        names.push(stage::CHAOS);
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn end_to_end_smoke() {
        let (t, sink) = CollectingSink::telemetry();
        {
            let _study = t.span(stage::STUDY);
            for s in stage::PIPELINE {
                let _stage = t.span(s);
            }
            t.count("study.instances", 600);
        }
        let report = sink.report();
        for s in stage::PIPELINE {
            assert!(report.span_names().contains(s), "missing stage {s}");
        }
        let json = report.to_json();
        json::parse(&json).expect("valid JSON");
    }
}
