//! A thread-safe store of named metrics.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Holds every counter, gauge and histogram created during a run.
///
/// Metric names are `&'static str`, which keeps the hot path free of
/// allocation: recording against an existing metric takes a read lock
/// and a relaxed atomic op; only the *first* touch of a name takes the
/// write lock to insert it. Maps are ordered so snapshots and reports
/// are deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// A point-in-time copy of a registry's contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram `(bounds, counts, sum)` by name; `counts` has one more
    /// entry than `bounds` (the overflow bucket).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Frozen histogram contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn n(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated `q`-quantile of the frozen distribution; same rules as
    /// [`Histogram::percentile`](crate::Histogram::percentile).
    pub fn percentile(&self, q: f64) -> u64 {
        crate::histogram::percentile_from_buckets(&self.bounds, &self.counts, q)
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it at zero.
    pub fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("registry lock");
        Arc::clone(map.entry(name).or_default())
    }

    /// Adds `delta` to the counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// The gauge registered under `name`, creating it at zero.
    pub fn gauge(&self, name: &'static str) -> Arc<AtomicI64> {
        if let Some(g) = self.gauges.read().expect("registry lock").get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("registry lock");
        Arc::clone(map.entry(name).or_default())
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    /// The histogram registered under `name`, creating it with the
    /// default time buckets.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("registry lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("registry lock");
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(Histogram::time())),
        )
    }

    /// Records `value` into the histogram `name`.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Registers a histogram with custom bounds; a no-op if `name`
    /// already exists (the existing bounds win).
    pub fn histogram_with_bounds(&self, name: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.write().expect("registry lock");
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Copies out every metric. Values observed concurrently with
    /// updates are each individually consistent.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&k, h)| {
                (
                    k.to_owned(),
                    HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        counts: h.counts(),
                        sum: h.sum(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_deterministically() {
        let r = Registry::new();
        r.counter_add("b.second", 2);
        r.counter_add("a.first", 1);
        r.counter_add("b.second", 3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.first", "b.second"], "sorted by name");
        assert_eq!(snap.counters["b.second"], 5);
        assert_eq!(r.snapshot(), snap, "snapshots are reproducible");
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("depth", 4);
        r.gauge_set("depth", -2);
        assert_eq!(r.snapshot().gauges["depth"], -2);
    }

    #[test]
    fn histograms_record_through_registry() {
        let r = Registry::new();
        r.histogram_with_bounds("lat", &[10, 20]);
        r.histogram_record("lat", 15);
        r.histogram_record("lat", 9999);
        let snap = r.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.bounds, vec![10, 20]);
        assert_eq!(h.counts, vec![0, 1, 1]);
        assert_eq!(h.n(), 2);
        // Snapshot percentiles mirror the live histogram's.
        assert_eq!(h.percentile(0.5), r.histogram("lat").percentile(0.5));
    }

    #[test]
    fn concurrent_counter_adds_are_exact() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        r.counter_add("hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counters["hits"], 80_000);
    }
}
