//! A hand-rolled JSON writer and reader.
//!
//! The workspace is deliberately dependency-free, so — like
//! `tracelens::textio` for trace files — telemetry reports get their own
//! small, strict JSON layer. The writer emits canonical, valid JSON
//! (escaped strings, no trailing commas, integers rendered exactly); the
//! reader parses the full JSON grammar into a [`Value`] tree and exists
//! mainly so tests can prove the writer's output round-trips.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
///
/// Numbers keep their exact representation class: integers that fit
/// `u64`/`i64` stay integers, everything else becomes a float. Objects
/// use a [`BTreeMap`] so re-serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Appends `s` to `out` with JSON escaping, including the quotes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// An incremental JSON writer producing pretty-printed output.
///
/// The caller drives structure with [`begin_obj`](JsonWriter::begin_obj) /
/// [`end_obj`](JsonWriter::end_obj) and friends; the writer tracks
/// nesting depth, indentation and comma placement. Misuse (closing an
/// unopened scope) panics: report rendering is entirely under this
/// crate's control, so a structural bug is a programming error.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    /// Whether the current nesting level already holds an element.
    has_item: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            has_item: Vec::new(),
        }
    }

    /// Finishes and returns the document text.
    pub fn finish(self) -> String {
        assert!(self.has_item.is_empty(), "unclosed JSON scope");
        self.out
    }

    fn pad(&mut self) {
        for _ in 0..self.has_item.len() {
            self.out.push_str("  ");
        }
    }

    /// Starts a new element at the current level: comma, newline, indent.
    fn element(&mut self) {
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
            self.out.push('\n');
            self.pad();
        }
    }

    fn open(&mut self, bracket: char, key: Option<&str>) {
        self.element();
        if let Some(key) = key {
            write_escaped(&mut self.out, key);
            self.out.push_str(": ");
        }
        self.out.push(bracket);
        self.has_item.push(false);
    }

    fn close(&mut self, bracket: char) {
        let had_items = self.has_item.pop().expect("no scope to close");
        if had_items {
            self.out.push('\n');
            self.pad();
        }
        self.out.push(bracket);
    }

    /// Opens `{`, optionally as the value of `key` in the parent object.
    pub fn begin_obj(&mut self, key: Option<&str>) {
        self.open('{', key);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.close('}');
    }

    /// Opens `[`, optionally as the value of `key` in the parent object.
    pub fn begin_arr(&mut self, key: Option<&str>) {
        self.open('[', key);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.close(']');
    }

    fn keyed(&mut self, key: Option<&str>) {
        self.element();
        if let Some(key) = key {
            write_escaped(&mut self.out, key);
            self.out.push_str(": ");
        }
    }

    /// Writes a string field/element.
    pub fn str(&mut self, key: Option<&str>, value: &str) {
        self.keyed(key);
        write_escaped(&mut self.out, value);
    }

    /// Writes an unsigned integer field/element.
    pub fn u64(&mut self, key: Option<&str>, value: u64) {
        self.keyed(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a signed integer field/element.
    pub fn i64(&mut self, key: Option<&str>, value: i64) {
        self.keyed(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float field/element (`null` for non-finite values).
    pub fn f64(&mut self, key: Option<&str>, value: f64) {
        self.keyed(key);
        if value.is_finite() {
            // `{:?}` keeps a decimal point or exponent, so the reader
            // classifies it back as a float.
            let _ = write!(self.out, "{value:?}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean field/element.
    pub fn bool(&mut self, key: Option<&str>, value: bool) {
        self.keyed(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null` field/element.
    pub fn null(&mut self, key: Option<&str>) {
        self.keyed(key);
        self.out.push_str("null");
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}", self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{08}'),
                    Some('f') => out.push('\u{0C}'),
                    Some('u') => out.push(self.unicode_escape()?),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character {c:?} in string"));
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut n = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = c.to_digit(16).ok_or(format!("bad hex digit {c:?}"))?;
            n = n * 16 + d;
        }
        Ok(n)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        // Surrogate pairs encode astral-plane characters.
        if (0xD800..0xDC00).contains(&hi) {
            self.expect('\\')?;
            self.expect('u')?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(format!("unpaired surrogate {hi:04x}"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or(format!("bad surrogate pair {c:x}"))
        } else {
            char::from_u32(hi).ok_or(format!("bad scalar \\u{hi:04x}"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape("a\\b"), r#""a\\b""#);
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("\u{01}"), "\"\\u0001\"");
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn writer_produces_parseable_nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.str(Some("name"), "run \"A\"");
        w.u64(Some("events"), u64::MAX);
        w.i64(Some("delta"), -3);
        w.f64(Some("ratio"), 0.25);
        w.bool(Some("ok"), true);
        w.null(Some("skip"));
        w.begin_arr(Some("stages"));
        w.str(None, "sim");
        w.str(None, "contrast");
        w.begin_obj(None);
        w.u64(Some("n"), 7);
        w.end_obj();
        w.end_arr();
        w.begin_obj(Some("empty"));
        w.end_obj();
        w.end_obj();
        let text = w.finish();
        let v = parse(&text).expect("writer output parses");
        assert_eq!(v.get("name").unwrap().as_str(), Some("run \"A\""));
        assert_eq!(v.get("events").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("delta"), Some(&Value::Int(-3)));
        assert_eq!(v.get("ratio"), Some(&Value::Float(0.25)));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("skip"), Some(&Value::Null));
        let stages = v.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[2].get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("empty"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(parse(r#""A""#), Ok(Value::Str("A".into())));
        assert_eq!(parse(r#""😀""#), Ok(Value::Str("😀".into())));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "\"\x01\"",
            "01x",
            "1} ",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_keep_their_class() {
        assert_eq!(parse("0"), Ok(Value::UInt(0)));
        assert_eq!(parse("18446744073709551615"), Ok(Value::UInt(u64::MAX)));
        assert_eq!(parse("-9223372036854775808"), Ok(Value::Int(i64::MIN)));
        assert_eq!(parse("1.5e3"), Ok(Value::Float(1500.0)));
        assert_eq!(parse("-0.5"), Ok(Value::Float(-0.5)));
    }
}
