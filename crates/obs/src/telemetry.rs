//! The [`Telemetry`] handle and the sink behind it.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Identifier of one span instance within a sink, unique per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Where telemetry events go.
///
/// Implementations must be cheap and non-blocking: sinks are called
/// from the middle of the analysis pipeline's hot loops.
///
/// The wait/wake/thread methods have do-nothing defaults so ordinary
/// aggregating sinks ignore them; an event recorder (the `selftrace`
/// crate) overrides them to capture the ETW-shaped wait/unwait edges
/// the wait-graph meta-analysis is built from.
pub trait TelemetrySink: Send + Sync {
    /// Called when a span opens; returns the id used at exit.
    fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId;

    /// Called when the span guard drops, with the measured wall time.
    fn span_exit(&self, id: SpanId, elapsed_ns: u64);

    /// Adds to a named counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Sets a named gauge.
    fn gauge_set(&self, name: &'static str, value: i64);

    /// Records one histogram observation.
    fn histogram_record(&self, name: &'static str, value: u64);

    /// Binds the calling thread to a stable role identity (e.g.
    /// `("worker", slot)`), so an event recorder can assign it a
    /// reproducible virtual thread id.
    fn thread_bind(&self, _role: &'static str, _slot: u32) {}

    /// A sink-assigned stable token for the calling thread, used as the
    /// wake target in [`TelemetrySink::wake`]. `None` for sinks that do
    /// not track threads.
    fn thread_token(&self) -> Option<u64> {
        None
    }

    /// Called when the calling thread starts blocking at the named wait
    /// point; returns a token handed back to [`TelemetrySink::wait_end`].
    fn wait_begin(&self, _name: &'static str, _parent: Option<SpanId>) -> u64 {
        0
    }

    /// Called when the wait that produced `token` ends.
    fn wait_end(&self, _token: u64, _elapsed_ns: u64) {}

    /// Called when the calling thread signals (unwaits) the thread whose
    /// [`TelemetrySink::thread_token`] is `target`.
    fn wake(&self, _name: &'static str, _target: u64) {}

    /// Whether span context should be re-established on worker threads
    /// (see [`Telemetry::propagation_context`]). Aggregating sinks keep
    /// the default `false` so their per-thread span trees are unchanged;
    /// event recorders return `true` to see worker activity nested under
    /// the spawning stage.
    fn wants_thread_context(&self) -> bool {
        false
    }
}

/// A sink that drops everything.
///
/// Exists so APIs taking `Arc<dyn TelemetrySink>` have an explicit
/// do-nothing value; [`Telemetry::noop`] is cheaper still (no sink at
/// all) and is what instrumented code paths should default to.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn span_enter(&self, _name: &'static str, _parent: Option<SpanId>) -> SpanId {
        SpanId(0)
    }
    fn span_exit(&self, _id: SpanId, _elapsed_ns: u64) {}
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: i64) {}
    fn histogram_record(&self, _name: &'static str, _value: u64) {}
}

thread_local! {
    /// Stack of open spans on this thread; the top is the parent of
    /// the next span. Only touched when a sink is attached.
    static SPAN_STACK: RefCell<Vec<(SpanId, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on a thread: enough to re-open it (same
/// name, explicit parent) on a worker thread via
/// [`Telemetry::span_with_parent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Id of the open span.
    pub id: SpanId,
    /// Its name.
    pub name: &'static str,
}

/// A cheap, cloneable handle the pipeline threads through its layers.
///
/// The disabled handle ([`Telemetry::noop`], also `Default`) holds no
/// sink: every operation is a branch on an `Option` and returns
/// immediately — no allocation, no atomics, no thread-local access. An
/// enabled handle forwards to its [`TelemetrySink`].
///
/// Spans nest lexically per thread: the innermost open span on the
/// current thread becomes the parent of the next one.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle — the default for every instrumented API.
    pub fn noop() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle that forwards to `sink`.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// Whether events are being recorded. Callers can use this to skip
    /// preparing expensive event payloads.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a named span; it closes (and reports its wall time) when
    /// the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let parent = match &self.sink {
            Some(_) => SPAN_STACK.with(|s| s.borrow().last().map(|&(id, _)| id)),
            None => None,
        };
        self.span_with_parent(name, parent)
    }

    /// Opens a named span under an *explicit* parent instead of the
    /// calling thread's innermost open span — the cross-thread variant
    /// of [`Telemetry::span`], used to nest worker activity under the
    /// stage span that spawned it (see
    /// [`Telemetry::propagation_context`]).
    pub fn span_with_parent(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        let Some(sink) = &self.sink else {
            return SpanGuard { open: None };
        };
        let id = sink.span_enter(name, parent);
        SPAN_STACK.with(|s| s.borrow_mut().push((id, name)));
        SpanGuard {
            open: Some(OpenSpan {
                sink: Arc::clone(sink),
                id,
                start: Instant::now(),
                opened_on: std::thread::current().id(),
            }),
        }
    }

    /// The innermost open span on the calling thread, if any.
    pub fn current_span(&self) -> Option<SpanContext> {
        self.sink.as_ref()?;
        SPAN_STACK.with(|s| {
            s.borrow()
                .last()
                .map(|&(id, name)| SpanContext { id, name })
        })
    }

    /// The span context to carry onto worker threads, or `None` when
    /// the sink does not ask for one ([`TelemetrySink::wants_thread_context`]).
    ///
    /// Spawners pass the returned context to workers, which re-open it
    /// with [`Telemetry::span_with_parent`] so their spans (and the
    /// synthetic callstacks a recorder derives from them) nest under
    /// the stage that fanned out, not under a bare thread root.
    pub fn propagation_context(&self) -> Option<SpanContext> {
        let sink = self.sink.as_ref()?;
        if !sink.wants_thread_context() {
            return None;
        }
        self.current_span()
    }

    /// Marks the calling thread as blocking at the named wait point
    /// until the returned guard drops. Free on a disabled handle and on
    /// sinks that keep the default no-op wait hooks.
    pub fn wait(&self, name: &'static str) -> WaitGuard {
        let Some(sink) = &self.sink else {
            return WaitGuard { open: None };
        };
        let parent = SPAN_STACK.with(|s| s.borrow().last().map(|&(id, _)| id));
        let token = sink.wait_begin(name, parent);
        WaitGuard {
            open: Some(OpenWait {
                sink: Arc::clone(sink),
                token,
                start: Instant::now(),
            }),
        }
    }

    /// Records that the calling thread signalled (unwaited) the thread
    /// whose [`Telemetry::thread_token`] is `target`.
    pub fn wake(&self, name: &'static str, target: u64) {
        if let Some(sink) = &self.sink {
            sink.wake(name, target);
        }
    }

    /// Binds the calling thread to a stable role/slot identity for
    /// event recorders (no-op on other sinks).
    pub fn bind_thread(&self, role: &'static str, slot: u32) {
        if let Some(sink) = &self.sink {
            sink.thread_bind(role, slot);
        }
    }

    /// The sink-assigned token of the calling thread, used as a wake
    /// target. `None` on disabled handles and non-recording sinks.
    pub fn thread_token(&self) -> Option<u64> {
        self.sink.as_ref().and_then(|sink| sink.thread_token())
    }

    /// Adds `delta` to the counter `name`.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(name, delta);
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(sink) = &self.sink {
            sink.gauge_set(name, value);
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.histogram_record(name, value);
        }
    }
}

struct OpenSpan {
    sink: Arc<dyn TelemetrySink>,
    id: SpanId,
    start: Instant,
    opened_on: std::thread::ThreadId,
}

/// Closes its span on drop.
///
/// Hold it in a named binding (`let _span = t.span(...)`) — binding to
/// `_` drops immediately and records a zero-length span.
#[must_use = "a span closes when its guard drops; bind it to a named variable"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            // A guard dropped on a foreign thread pops nothing from the
            // opener's span stack, so the opener's elapsed time would be
            // double-accounted under whatever span is open there.
            debug_assert_eq!(
                open.opened_on,
                std::thread::current().id(),
                "SpanGuard must drop on the thread that opened it"
            );
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards normally drop in LIFO order; if user code holds
                // one across a sibling's lifetime, remove by id instead
                // of corrupting the stack.
                if stack.last().map(|&(id, _)| id) == Some(open.id) {
                    stack.pop();
                } else if let Some(i) = stack.iter().rposition(|&(id, _)| id == open.id) {
                    stack.remove(i);
                }
            });
            let elapsed = open.start.elapsed().as_nanos();
            open.sink
                .span_exit(open.id, u64::try_from(elapsed).unwrap_or(u64::MAX));
        }
    }
}

struct OpenWait {
    sink: Arc<dyn TelemetrySink>,
    token: u64,
    start: Instant,
}

/// Ends its wait interval on drop, reporting the measured blocked time
/// to [`TelemetrySink::wait_end`].
#[must_use = "a wait ends when its guard drops; bind it to a named variable"]
pub struct WaitGuard {
    open: Option<OpenWait>,
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let elapsed = open.start.elapsed().as_nanos();
            open.sink
                .wait_end(open.token, u64::try_from(elapsed).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Records the raw call sequence for assertions.
    #[derive(Default)]
    struct LogSink {
        next: std::sync::atomic::AtomicU64,
        events: Mutex<Vec<String>>,
    }

    impl TelemetrySink for LogSink {
        fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
            let id = SpanId(self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            self.events.lock().unwrap().push(format!(
                "enter {name} id={} parent={:?}",
                id.0,
                parent.map(|p| p.0)
            ));
            id
        }
        fn span_exit(&self, id: SpanId, _elapsed_ns: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("exit id={}", id.0));
        }
        fn counter_add(&self, name: &'static str, delta: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("count {name} +{delta}"));
        }
        fn gauge_set(&self, name: &'static str, value: i64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("gauge {name} ={value}"));
        }
        fn histogram_record(&self, name: &'static str, value: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("hist {name} {value}"));
        }
        fn thread_token(&self) -> Option<u64> {
            Some(7)
        }
        fn wait_begin(&self, name: &'static str, parent: Option<SpanId>) -> u64 {
            self.events
                .lock()
                .unwrap()
                .push(format!("wait {name} parent={:?}", parent.map(|p| p.0)));
            42
        }
        fn wait_end(&self, token: u64, _elapsed_ns: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("unblock token={token}"));
        }
        fn wake(&self, name: &'static str, target: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("wake {name} target={target}"));
        }
        fn wants_thread_context(&self) -> bool {
            true
        }
    }

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        let _span = t.span("outer");
        t.count("x", 1);
        t.gauge("y", 2);
        t.record("z", 3);
        // Nothing to observe — the point is that none of this panics or
        // touches the span stack.
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn spans_nest_and_unwind() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        assert!(t.enabled());
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                t.count("events", 5);
            }
            let _sibling = t.span("sibling");
        }
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "enter outer id=0 parent=None",
                "enter inner id=1 parent=Some(0)",
                "count events +5",
                "exit id=1",
                "enter sibling id=2 parent=Some(0)",
                "exit id=2",
                "exit id=0",
            ]
        );
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_consistent() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // drops before its child `b`
        let c = t.span("c"); // parent should be b, the remaining open span
        drop(c);
        drop(b);
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "enter a id=0 parent=None",
                "enter b id=1 parent=Some(0)",
                "exit id=0",
                "enter c id=2 parent=Some(1)",
                "exit id=2",
                "exit id=1",
            ]
        );
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn noop_sink_type_accepts_everything() {
        let t = Telemetry::with_sink(Arc::new(NoopSink));
        let _span = t.span("s");
        t.count("c", 1);
        // Default hooks are silent and token-free.
        assert!(t.thread_token().is_none());
        assert!(t.propagation_context().is_none());
        let _w = t.wait("w");
        t.wake("w", 1);
        t.bind_thread("worker", 0);
    }

    #[test]
    fn wait_and_wake_reach_the_sink() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let _outer = t.span("outer");
        {
            let _w = t.wait("pool.join");
            t.wake("pool.join", t.thread_token().unwrap());
        }
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            &events[1..],
            [
                "wait pool.join parent=Some(0)",
                "wake pool.join target=7",
                "unblock token=42",
            ]
        );
    }

    #[test]
    fn propagation_context_reopens_on_another_thread() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let outer = t.span("outer");
        let cx = t.propagation_context().expect("LogSink wants context");
        assert_eq!(cx.name, "outer");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _worker = t.span_with_parent(cx.name, Some(cx.id));
                let _inner = t.span("inner");
            });
        });
        drop(outer);
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "enter outer id=0 parent=None",
                "enter outer id=1 parent=Some(0)",
                "enter inner id=2 parent=Some(1)",
                "exit id=2",
                "exit id=1",
                "exit id=0",
            ]
        );
    }

    #[test]
    fn noop_wait_touches_nothing() {
        let t = Telemetry::noop();
        let _w = t.wait("w");
        t.wake("w", 0);
        assert!(t.current_span().is_none());
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn cross_thread_span_drop_is_caught_in_debug() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let guard = t.span("misplaced");
        let result = std::thread::scope(|s| s.spawn(move || drop(guard)).join());
        assert!(result.is_err(), "foreign-thread drop must assert in debug");
        // The opener's stack still holds the span id; clear it so other
        // tests on this thread are unaffected.
        SPAN_STACK.with(|s| s.borrow_mut().clear());
    }
}
