//! The [`Telemetry`] handle and the sink behind it.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Identifier of one span instance within a sink, unique per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Where telemetry events go.
///
/// Implementations must be cheap and non-blocking: sinks are called
/// from the middle of the analysis pipeline's hot loops.
pub trait TelemetrySink: Send + Sync {
    /// Called when a span opens; returns the id used at exit.
    fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId;

    /// Called when the span guard drops, with the measured wall time.
    fn span_exit(&self, id: SpanId, elapsed_ns: u64);

    /// Adds to a named counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Sets a named gauge.
    fn gauge_set(&self, name: &'static str, value: i64);

    /// Records one histogram observation.
    fn histogram_record(&self, name: &'static str, value: u64);
}

/// A sink that drops everything.
///
/// Exists so APIs taking `Arc<dyn TelemetrySink>` have an explicit
/// do-nothing value; [`Telemetry::noop`] is cheaper still (no sink at
/// all) and is what instrumented code paths should default to.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn span_enter(&self, _name: &'static str, _parent: Option<SpanId>) -> SpanId {
        SpanId(0)
    }
    fn span_exit(&self, _id: SpanId, _elapsed_ns: u64) {}
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: i64) {}
    fn histogram_record(&self, _name: &'static str, _value: u64) {}
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span. Only touched when a sink is attached.
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, cloneable handle the pipeline threads through its layers.
///
/// The disabled handle ([`Telemetry::noop`], also `Default`) holds no
/// sink: every operation is a branch on an `Option` and returns
/// immediately — no allocation, no atomics, no thread-local access. An
/// enabled handle forwards to its [`TelemetrySink`].
///
/// Spans nest lexically per thread: the innermost open span on the
/// current thread becomes the parent of the next one.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle — the default for every instrumented API.
    pub fn noop() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle that forwards to `sink`.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// Whether events are being recorded. Callers can use this to skip
    /// preparing expensive event payloads.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a named span; it closes (and reports its wall time) when
    /// the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(sink) = &self.sink else {
            return SpanGuard { open: None };
        };
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        let id = sink.span_enter(name, parent);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            open: Some(OpenSpan {
                sink: Arc::clone(sink),
                id,
                start: Instant::now(),
            }),
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(name, delta);
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(sink) = &self.sink {
            sink.gauge_set(name, value);
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.histogram_record(name, value);
        }
    }
}

struct OpenSpan {
    sink: Arc<dyn TelemetrySink>,
    id: SpanId,
    start: Instant,
}

/// Closes its span on drop.
///
/// Hold it in a named binding (`let _span = t.span(...)`) — binding to
/// `_` drops immediately and records a zero-length span.
#[must_use = "a span closes when its guard drops; bind it to a named variable"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards normally drop in LIFO order; if user code holds
                // one across a sibling's lifetime, remove by id instead
                // of corrupting the stack.
                if stack.last() == Some(&open.id) {
                    stack.pop();
                } else if let Some(i) = stack.iter().rposition(|&id| id == open.id) {
                    stack.remove(i);
                }
            });
            let elapsed = open.start.elapsed().as_nanos();
            open.sink
                .span_exit(open.id, u64::try_from(elapsed).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Records the raw call sequence for assertions.
    #[derive(Default)]
    struct LogSink {
        next: std::sync::atomic::AtomicU64,
        events: Mutex<Vec<String>>,
    }

    impl TelemetrySink for LogSink {
        fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
            let id = SpanId(self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            self.events.lock().unwrap().push(format!(
                "enter {name} id={} parent={:?}",
                id.0,
                parent.map(|p| p.0)
            ));
            id
        }
        fn span_exit(&self, id: SpanId, _elapsed_ns: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("exit id={}", id.0));
        }
        fn counter_add(&self, name: &'static str, delta: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("count {name} +{delta}"));
        }
        fn gauge_set(&self, name: &'static str, value: i64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("gauge {name} ={value}"));
        }
        fn histogram_record(&self, name: &'static str, value: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("hist {name} {value}"));
        }
    }

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        let _span = t.span("outer");
        t.count("x", 1);
        t.gauge("y", 2);
        t.record("z", 3);
        // Nothing to observe — the point is that none of this panics or
        // touches the span stack.
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn spans_nest_and_unwind() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        assert!(t.enabled());
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                t.count("events", 5);
            }
            let _sibling = t.span("sibling");
        }
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "enter outer id=0 parent=None",
                "enter inner id=1 parent=Some(0)",
                "count events +5",
                "exit id=1",
                "enter sibling id=2 parent=Some(0)",
                "exit id=2",
                "exit id=0",
            ]
        );
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_consistent() {
        let sink = Arc::new(LogSink::default());
        let t = Telemetry::with_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // drops before its child `b`
        let c = t.span("c"); // parent should be b, the remaining open span
        drop(c);
        drop(b);
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "enter a id=0 parent=None",
                "enter b id=1 parent=Some(0)",
                "exit id=0",
                "enter c id=2 parent=Some(1)",
                "exit id=2",
                "exit id=1",
            ]
        );
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn noop_sink_type_accepts_everything() {
        let t = Telemetry::with_sink(Arc::new(NoopSink));
        let _span = t.span("s");
        t.count("c", 1);
    }
}
