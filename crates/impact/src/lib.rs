//! # tracelens-impact
//!
//! Impact analysis (paper §3): measures, for a chosen set of components,
//! how much of the overall scenario time is spent running them, waiting
//! in them, and — via the distinct-wait metric — how much waiting is
//! multiplied across scenario instances by cost propagation.
//!
//! The analyzer consumes a [`tracelens_model::Dataset`], builds a Wait
//! Graph per scenario instance, and produces an [`ImpactReport`] with the
//! paper's metrics:
//!
//! * `IA_run  = D_run / D_scn` — running-time percentage,
//! * `IA_wait = D_wait / D_scn` — wait-time percentage,
//! * `IA_opt  = (D_wait − D_waitdist) / D_scn` — the extra waiting
//!   introduced by cost propagation, an upper bound on what optimizing
//!   the propagation could recover.
//!
//! ```
//! use tracelens_impact::ImpactAnalyzer;
//! use tracelens_model::ComponentFilter;
//! use tracelens_sim::DatasetBuilder;
//!
//! let ds = DatasetBuilder::new(7).traces(10).build();
//! let report = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
//! assert!(report.ia_wait() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod breakdown;
mod report;

pub use analyzer::ImpactAnalyzer;
pub use breakdown::{breakdown, Breakdown};
pub use report::ImpactReport;
