//! The impact analyzer: Wait-Graph traversal and metric accumulation.

use crate::report::ImpactReport;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tracelens_model::{
    ComponentFilter, Dataset, FilterView, ProcessId, ScenarioInstance, ScenarioName, TimeNs,
    TraceId, TraceStream,
};
use tracelens_pool::{ExecutionReport, Pool, SupervisePolicy, UnitMeta};
use tracelens_waitgraph::{NodeKind, StreamIndex, WaitGraph};

/// Impact analysis for one component selection (paper §3.2).
///
/// Accounting rules, following the paper:
///
/// * `D_scn` sums instance durations.
/// * `D_wait` sums the durations of *top-level* component wait nodes: a
///   wait node counts if its callstack's topmost component signature
///   matches the filter and no counted wait lies above it on the path
///   from the root (child waits constitute time already counted).
/// * `D_run` sums the durations of all component running nodes anywhere
///   in the graphs (it deliberately overlaps `D_wait`, as running events
///   are mostly leaves of wait chains).
/// * `D_waitdist` deduplicates `D_wait` across Wait Graphs: when the same
///   underlying delay suspends several scenario instances at once, each
///   instance's graph counts it in `D_wait`, but the *distinct* waiting
///   is counted once. Implementation: the counted wait intervals of each
///   trace are merged as wall-clock intervals, and `D_waitdist` is the
///   total length of their union. (Concurrent but causally unrelated
///   component waits in one trace also merge — a deliberate, documented
///   approximation; see DESIGN.md.)
#[derive(Debug, Clone)]
pub struct ImpactAnalyzer {
    filter: ComponentFilter,
    telemetry: tracelens_obs::Telemetry,
    pool: Pool,
}

impl ImpactAnalyzer {
    /// Creates an analyzer for the given component filter.
    pub fn new(filter: ComponentFilter) -> Self {
        ImpactAnalyzer {
            filter,
            telemetry: tracelens_obs::Telemetry::noop(),
            pool: Pool::sequential(),
        }
    }

    /// Attaches a telemetry handle; each analysis then reports an
    /// `impact` stage span plus graph/node counters through it.
    pub fn with_telemetry(mut self, telemetry: tracelens_obs::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a thread pool; per-stream analysis then fans out over its
    /// workers. Results are identical to the sequential default — partial
    /// reports are merged in stream order and distinct-wait unions are
    /// per trace, so no thread schedule can reorder the output.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The component filter in use.
    pub fn filter(&self) -> &ComponentFilter {
        &self.filter
    }

    /// Analyzes every scenario instance in the data set.
    pub fn analyze(&self, dataset: &Dataset) -> ImpactReport {
        self.analyze_where(dataset, |_| true)
    }

    /// Analyzes the instances satisfying `keep` (e.g. a single scenario,
    /// or only a slow class).
    ///
    /// Instances are pre-grouped per trace in a single pass, then each
    /// stream with work is analyzed as one (possibly parallel) task; the
    /// per-stream partial reports merge in stream order, so the result is
    /// independent of job count.
    pub fn analyze_where<F>(&self, dataset: &Dataset, keep: F) -> ImpactReport
    where
        F: Fn(&ScenarioInstance) -> bool,
    {
        let _span = self.telemetry.span(tracelens_obs::stage::IMPACT);
        // One pass over the instances instead of one per stream.
        let mut by_trace: HashMap<TraceId, Vec<&ScenarioInstance>> = HashMap::new();
        for i in dataset.instances.iter().filter(|i| keep(i)) {
            by_trace.entry(i.trace).or_default().push(i);
        }
        // Streams sharing a trace id (pre-sanitize duplicates) each
        // analyze the full instance group, exactly as the per-stream
        // filter scan did.
        let tasks: Vec<(&TraceStream, &[&ScenarioInstance])> = dataset
            .streams
            .iter()
            .filter_map(|s| {
                by_trace
                    .get(&s.id())
                    .map(|instances| (s, instances.as_slice()))
            })
            .collect();
        let view = dataset.stacks.filter_view(&self.filter);
        let partials = self.pool.map(&tasks, |_, &(stream, instances)| {
            self.analyze_stream(stream, instances, &view)
        });
        self.merge_partials(partials.into_iter())
    }

    /// [`ImpactAnalyzer::analyze_where`] under supervision: each
    /// per-stream task is one supervised work unit, so a panicking (or,
    /// with a deadline configured, stalling) stream is quarantined —
    /// excluded from the merged report — instead of aborting the whole
    /// analysis. The returned [`ExecutionReport`] names every
    /// quarantined stream and the instances lost with it.
    ///
    /// `probe` (when given) runs at the start of each unit with the
    /// unit's label (`stream:<id>`) — the hook the execution-fault
    /// injector arms, so injected panics genuinely originate inside the
    /// analyzer's unit of work.
    pub fn analyze_where_supervised<F>(
        &self,
        dataset: &Dataset,
        keep: F,
        policy: &SupervisePolicy,
        probe: Option<&(dyn Fn(&str) + Sync)>,
    ) -> (ImpactReport, ExecutionReport)
    where
        F: Fn(&ScenarioInstance) -> bool,
    {
        let _span = self.telemetry.span(tracelens_obs::stage::IMPACT);
        let mut by_trace: HashMap<TraceId, Vec<&ScenarioInstance>> = HashMap::new();
        for i in dataset.instances.iter().filter(|i| keep(i)) {
            by_trace.entry(i.trace).or_default().push(i);
        }
        let tasks: Vec<(&TraceStream, &[&ScenarioInstance])> = dataset
            .streams
            .iter()
            .filter_map(|s| {
                by_trace
                    .get(&s.id())
                    .map(|instances| (s, instances.as_slice()))
            })
            .collect();
        let view = dataset.stacks.filter_view(&self.filter);
        let (partials, execution) = self.pool.supervised_map(
            &tasks,
            tracelens_obs::stage::IMPACT,
            policy,
            |_, &(stream, instances)| {
                UnitMeta::labeled(format!("stream:{}", stream.id().0))
                    .for_stream(stream.id().0)
                    .carrying(instances.len())
            },
            |_, &(stream, instances)| {
                if let Some(probe) = probe {
                    probe(&format!("stream:{}", stream.id().0));
                }
                self.analyze_stream(stream, instances, &view)
            },
        );
        let report = self.merge_partials(partials.into_iter().flatten());
        (report, execution)
    }

    /// One per-stream task: index the stream, build each instance's Wait
    /// Graph, and account it into a partial report plus its counted wait
    /// intervals.
    fn analyze_stream(
        &self,
        stream: &TraceStream,
        instances: &[&ScenarioInstance],
        view: &FilterView,
    ) -> (TraceId, ImpactReport, Vec<(TimeNs, TimeNs)>) {
        let index = StreamIndex::new_traced(stream, &self.telemetry);
        let mut partial = ImpactReport::default();
        let mut intervals = Vec::new();
        for instance in instances {
            let graph = WaitGraph::build_traced(stream, &index, instance, &self.telemetry);
            partial.absorb(&self.account_graph(&graph, view, instance, &mut intervals));
        }
        (stream.id(), partial, intervals)
    }

    /// Deterministic merge: partials arrive in stream order; interval
    /// unions are keyed per trace (and are order-independent anyway —
    /// `union_length` sorts).
    fn merge_partials(
        &self,
        partials: impl Iterator<Item = (TraceId, ImpactReport, Vec<(TimeNs, TimeNs)>)>,
    ) -> ImpactReport {
        let mut intervals: BTreeMap<TraceId, Vec<(TimeNs, TimeNs)>> = BTreeMap::new();
        let mut report = ImpactReport::default();
        for (trace, partial, iv) in partials {
            report.absorb(&partial);
            intervals.entry(trace).or_default().extend(iv);
        }
        report.d_wait_dist = intervals.into_values().map(union_length).sum();
        if self.telemetry.enabled() {
            self.telemetry
                .count("impact.instances", report.instances as u64);
            self.telemetry
                .count("impact.nodes_visited", report.nodes_visited as u64);
        }
        report
    }

    /// Analyzes instances grouped per scenario, returning the per-scenario
    /// reports sorted by scenario name. Distinct-wait accounting is kept
    /// per scenario (a delay shared by two scenarios' instances counts
    /// once in each scenario's report).
    pub fn analyze_by_scenario(&self, dataset: &Dataset) -> BTreeMap<ScenarioName, ImpactReport> {
        let mut out = BTreeMap::new();
        let names: BTreeSet<ScenarioName> = dataset.instances.iter().map(|i| i.scenario).collect();
        for name in names {
            let report = self.analyze_where(dataset, |i| i.scenario == name);
            out.insert(name, report);
        }
        out
    }

    /// Analyzes instances grouped by the *process* of their initiating
    /// thread — the victim view: which applications suffer the measured
    /// component waiting. Instances whose initiating thread emitted no
    /// events are grouped under their thread's process id 0.
    pub fn analyze_by_process(&self, dataset: &Dataset) -> BTreeMap<ProcessId, ImpactReport> {
        // Resolve each instance's process from its thread's first event.
        let mut pid_of = |i: &ScenarioInstance| -> ProcessId {
            dataset
                .streams
                .get(i.trace.0 as usize)
                .and_then(|s| s.events_of_thread(i.tid).next())
                .map(|(_, e)| e.pid)
                .unwrap_or(ProcessId(0))
        };
        let pids: std::collections::BTreeSet<ProcessId> =
            dataset.instances.iter().map(&mut pid_of).collect();
        let mut out = BTreeMap::new();
        for pid in pids {
            let report = self.analyze_where(dataset, |i| {
                dataset
                    .streams
                    .get(i.trace.0 as usize)
                    .and_then(|s| s.events_of_thread(i.tid).next())
                    .map(|(_, e)| e.pid)
                    .unwrap_or(ProcessId(0))
                    == pid
            });
            out.insert(pid, report);
        }
        out
    }

    /// Accounts a single Wait Graph into a partial report (everything but
    /// `d_wait_dist`), appending the counted top-level wait intervals to
    /// `intervals` for later cross-graph union.
    ///
    /// `view` must be built from the dataset's stack table with this
    /// analyzer's filter ([`tracelens_model::StackTable::filter_view`]);
    /// the per-node component test is then an array lookup rather than a
    /// string match.
    pub fn account_graph(
        &self,
        graph: &WaitGraph,
        view: &FilterView,
        instance: &ScenarioInstance,
        intervals: &mut Vec<(TimeNs, TimeNs)>,
    ) -> ImpactReport {
        let mut report = ImpactReport {
            d_scn: instance.duration(),
            instances: 1,
            ..ImpactReport::default()
        };
        // Explicit stack of (node, under_counted_wait).
        let mut todo: Vec<(tracelens_waitgraph::NodeId, bool)> =
            graph.roots().iter().map(|&r| (r, false)).collect();
        while let Some((id, under)) = todo.pop() {
            let node = graph.node(id);
            report.nodes_visited += 1;
            let mut now_under = under;
            match node.kind {
                NodeKind::Wait { .. } | NodeKind::UnpairedWait => {
                    if view.top_component_symbol(node.stack).is_some() && !under {
                        report.d_wait += node.duration;
                        intervals.push((node.t, node.t + node.duration));
                        now_under = true;
                    }
                }
                NodeKind::Running => {
                    if view.top_component_symbol(node.stack).is_some() {
                        report.d_run += node.duration;
                    }
                }
                NodeKind::Hardware => {}
            }
            for &c in &node.children {
                todo.push((c, now_under));
            }
        }
        report
    }
}

/// Total length of the union of half-open intervals.
fn union_length(mut intervals: Vec<(TimeNs, TimeNs)>) -> TimeNs {
    intervals.sort_unstable();
    let mut total = TimeNs::ZERO;
    let mut current: Option<(TimeNs, TimeNs)> = None;
    for (s, e) in intervals {
        if e <= s {
            continue;
        }
        match current {
            None => current = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    current = Some((cs, ce.max(e)));
                } else {
                    total += ce - cs;
                    current = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = current {
        total += ce - cs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ScenarioName, ThreadId, TraceStreamBuilder};

    #[test]
    fn union_length_merges_overlaps() {
        let iv = vec![
            (TimeNs(0), TimeNs(10)),
            (TimeNs(5), TimeNs(15)),
            (TimeNs(20), TimeNs(25)),
            (TimeNs(25), TimeNs(30)), // touching: merges (half-open)
            (TimeNs(50), TimeNs(50)), // empty: ignored
        ];
        assert_eq!(union_length(iv), TimeNs(25));
        assert_eq!(union_length(Vec::new()), TimeNs::ZERO);
    }

    /// Builds a dataset with one stream:
    ///   T1 (instance A) waits 10..30 in fv.sys;
    ///   T2 runs 10..30 under fs.sys then unwaits T1.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new();
        let fv =
            ds.stacks
                .intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let fs_run = ds.stacks.intern_symbols(&["app!W", "fs.sys!Read"]);
        let app_run = ds.stacks.intern_symbols(&["app!Main"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), app_run);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, fv);
        b.push_running(ThreadId(2), TimeNs(10), TimeNs(20), fs_run);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), fs_run);
        b.push_running(ThreadId(1), TimeNs(30), TimeNs(10), app_run);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("A"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(40),
        });
        ds
    }

    #[test]
    fn basic_accounting() {
        let ds = fixture();
        let r = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        assert_eq!(r.d_scn, TimeNs(40));
        assert_eq!(r.d_wait, TimeNs(20)); // fv wait 10..30
        assert_eq!(r.d_run, TimeNs(20)); // fs running under the wait
        assert_eq!(r.d_wait_dist, TimeNs(20));
        assert_eq!(r.instances, 1);
        assert!((r.ia_wait() - 0.5).abs() < 1e-12);
        assert!(r.ia_opt().abs() < 1e-12, "single graph: no propagation");
    }

    #[test]
    fn concurrent_instance_waits_amplify() {
        // Three instances all suspended over the same 0..100 delay: their
        // top-level waits overlap, so D_wait ≈ 3×100 but D_waitdist ≈ 100.
        let mut ds = Dataset::new();
        let drv =
            ds.stacks
                .intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let run = ds.stacks.intern_symbols(&["w!W", "se.sys!ReadDecrypt"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(9), TimeNs(0), TimeNs(100), run);
        for tid in [1u32, 2, 3] {
            b.push_wait(ThreadId(tid), TimeNs(tid as u64), TimeNs::ZERO, drv);
            b.push_unwait(ThreadId(9), ThreadId(tid), TimeNs(100 + tid as u64), run);
        }
        ds.streams.push(b.finish().unwrap());
        for (tid, name) in [(1u32, "A"), (2, "B"), (3, "C")] {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new(name),
                tid: ThreadId(tid),
                t0: TimeNs(0),
                t1: TimeNs(110),
            });
        }
        let r = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        assert_eq!(r.instances, 3);
        assert!(r.d_wait >= TimeNs(290), "d_wait = {:?}", r.d_wait);
        assert!(
            r.d_wait_dist <= TimeNs(110),
            "d_wait_dist = {:?}",
            r.d_wait_dist
        );
        assert!(r.wait_amplification() > 2.5);
        assert!(r.ia_opt() > 0.0);
    }

    #[test]
    fn disjoint_waits_do_not_amplify() {
        // Two instances waiting at disjoint times: amplification = 1.
        let mut ds = Dataset::new();
        let drv =
            ds.stacks
                .intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(9), ThreadId(1), TimeNs(50), drv);
        b.push_wait(ThreadId(2), TimeNs(200), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(9), ThreadId(2), TimeNs(260), drv);
        ds.streams.push(b.finish().unwrap());
        for (tid, name, t0, t1) in [(1u32, "A", 0u64, 60), (2, "B", 200, 270)] {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new(name),
                tid: ThreadId(tid),
                t0: TimeNs(t0),
                t1: TimeNs(t1),
            });
        }
        let r = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        assert_eq!(r.d_wait, TimeNs(110));
        assert_eq!(r.d_wait_dist, TimeNs(110));
        assert!((r.wait_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_component_waits_count_once() {
        // A driver wait under another driver wait must not double-count.
        let mut ds = Dataset::new();
        let drv =
            ds.stacks
                .intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, drv);
        b.push_wait(ThreadId(2), TimeNs(0), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(3), ThreadId(2), TimeNs(50), drv);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(60), drv);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("A"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(70),
        });
        let r = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        // Only the top-level wait (60) counts, not the nested 50.
        assert_eq!(r.d_wait, TimeNs(60));
    }

    #[test]
    fn filter_excludes_non_matching_components() {
        let ds = fixture();
        let r = ImpactAnalyzer::new(ComponentFilter::names(["net.sys"])).analyze(&ds);
        assert_eq!(r.d_wait, TimeNs::ZERO);
        assert_eq!(r.d_run, TimeNs::ZERO);
        assert_eq!(r.d_scn, TimeNs(40), "D_scn is filter-independent");
    }

    #[test]
    fn analyze_by_process_partitions_instances() {
        // Two instances from different processes on one stream.
        let mut ds = Dataset::new();
        let drv =
            ds.stacks
                .intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut b = TraceStreamBuilder::new(0);
        b.set_process(tracelens_model::ProcessId(1));
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(9), ThreadId(1), TimeNs(30), drv);
        b.set_process(tracelens_model::ProcessId(2));
        b.push_wait(ThreadId(2), TimeNs(100), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(9), ThreadId(2), TimeNs(170), drv);
        ds.streams.push(b.finish().unwrap());
        for (tid, t0, t1) in [(1u32, 0u64, 40), (2, 100, 180)] {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("S"),
                tid: ThreadId(tid),
                t0: TimeNs(t0),
                t1: TimeNs(t1),
            });
        }
        let by = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze_by_process(&ds);
        assert_eq!(by.len(), 2);
        let p1 = &by[&tracelens_model::ProcessId(1)];
        let p2 = &by[&tracelens_model::ProcessId(2)];
        assert_eq!(p1.instances, 1);
        assert_eq!(p2.instances, 1);
        assert_eq!(p1.d_wait, TimeNs(30));
        assert_eq!(p2.d_wait, TimeNs(70));
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        // Two streams so the per-stream fan-out actually has >1 task.
        let mut ds = fixture();
        let drv = ds.stacks.intern_symbols(&["app!M", "net.sys!Recv"]);
        let mut b = TraceStreamBuilder::new(1);
        b.push_wait(ThreadId(4), TimeNs(0), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(5), ThreadId(4), TimeNs(25), drv);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(1),
            scenario: ScenarioName::new("B"),
            tid: ThreadId(4),
            t0: TimeNs(0),
            t1: TimeNs(30),
        });
        let sequential = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        for jobs in [2, 4, 8] {
            let parallel = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"))
                .with_pool(Pool::new(jobs))
                .analyze(&ds);
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn supervised_analysis_quarantines_poisoned_streams() {
        // Two streams; a probe poisons stream 1. The clean stream's
        // numbers survive, the poisoned stream is accounted as lost.
        let mut ds = fixture();
        let drv = ds.stacks.intern_symbols(&["app!M", "fs.sys!Recv"]);
        let mut b = TraceStreamBuilder::new(1);
        b.push_wait(ThreadId(4), TimeNs(0), TimeNs::ZERO, drv);
        b.push_unwait(ThreadId(5), ThreadId(4), TimeNs(25), drv);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(1),
            scenario: ScenarioName::new("B"),
            tid: ThreadId(4),
            t0: TimeNs(0),
            t1: TimeNs(30),
        });
        let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
        let policy = SupervisePolicy {
            max_retries: 0,
            ..SupervisePolicy::default()
        };
        let poison = |unit: &str| {
            if unit == "stream:1" {
                panic!("poisoned {unit}");
            }
        };
        let full = an.analyze(&ds);
        for jobs in [1, 4] {
            let an =
                ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).with_pool(Pool::new(jobs));
            let (r, exec) = an.analyze_where_supervised(&ds, |_| true, &policy, Some(&poison));
            assert_eq!(exec.quarantined(), 1, "jobs={jobs}");
            assert_eq!(exec.failures[0].unit, "stream:1");
            assert_eq!(exec.failures[0].stream, Some(1));
            assert_eq!(exec.lost_instances(), 1);
            assert_eq!(r.instances, 1, "only stream 0's instance counted");
            assert!(r.d_scn < full.d_scn);
            // Without a probe the supervised path equals the plain one.
            let (clean, clean_exec) = an.analyze_where_supervised(&ds, |_| true, &policy, None);
            assert_eq!(clean, full);
            assert!(clean_exec.is_clean());
        }
    }

    #[test]
    fn analyze_where_selects_subset() {
        let ds = fixture();
        let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
        let none = an.analyze_where(&ds, |i| i.scenario.as_str() == "Nope");
        assert_eq!(none.instances, 0);
        assert_eq!(none.d_scn, TimeNs::ZERO);
        let by = an.analyze_by_scenario(&ds);
        assert_eq!(by.len(), 1);
        assert!(by.contains_key(&ScenarioName::new("A")));
    }
}
