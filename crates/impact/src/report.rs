//! The impact-analysis report and its derived metrics.

use std::fmt;
use tracelens_model::TimeNs;

/// Output of impact analysis over a set of scenario instances
/// (paper §3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpactReport {
    /// `D_scn`: aggregated execution time of all analyzed instances.
    pub d_scn: TimeNs,
    /// `D_wait`: aggregated top-level wait time of the chosen components
    /// across all instance Wait Graphs (duplicates across graphs count).
    pub d_wait: TimeNs,
    /// `D_run`: aggregated running time of the chosen components.
    pub d_run: TimeNs,
    /// `D_waitdist`: as `D_wait`, but each distinct wait event counts
    /// only once across all Wait Graphs.
    pub d_wait_dist: TimeNs,
    /// Number of scenario instances analyzed.
    pub instances: usize,
    /// Number of Wait-Graph nodes visited (diagnostics).
    pub nodes_visited: usize,
}

impl ImpactReport {
    /// `IA_run = D_run / D_scn`.
    pub fn ia_run(&self) -> f64 {
        self.d_run.ratio(self.d_scn)
    }

    /// `IA_wait = D_wait / D_scn`.
    pub fn ia_wait(&self) -> f64 {
        self.d_wait.ratio(self.d_scn)
    }

    /// `IA_opt = (D_wait − D_waitdist) / D_scn` — the share of waiting
    /// introduced by cost propagation across instances; an upper bound on
    /// the optimization potential.
    pub fn ia_opt(&self) -> f64 {
        self.d_wait
            .checked_sub(self.d_wait_dist)
            .map(|extra| extra.ratio(self.d_scn))
            .unwrap_or(0.0)
    }

    /// `D_wait / D_waitdist`: how many scenario instances each distinct
    /// second of component waiting affects on average (the paper measures
    /// ≈ 3.5 for device drivers).
    pub fn wait_amplification(&self) -> f64 {
        self.d_wait.ratio(self.d_wait_dist)
    }

    /// Component cost share `(D_wait + D_run) / D_scn` — the "Driver
    /// Cost" column of the paper's Table 2 when restricted to a slow
    /// class.
    pub fn component_cost_share(&self) -> f64 {
        (self.d_wait + self.d_run).ratio(self.d_scn)
    }

    /// Merges another report into this one (metric sums add; used to
    /// combine per-stream partial reports).
    ///
    /// Note: merging is only meaningful when the two reports were
    /// produced over disjoint instance sets with a shared distinct-wait
    /// account; [`crate::ImpactAnalyzer`] handles that internally.
    pub(crate) fn absorb(&mut self, other: &ImpactReport) {
        self.d_scn += other.d_scn;
        self.d_wait += other.d_wait;
        self.d_run += other.d_run;
        self.d_wait_dist += other.d_wait_dist;
        self.instances += other.instances;
        self.nodes_visited += other.nodes_visited;
    }
}

impl fmt::Display for ImpactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instances          : {}", self.instances)?;
        writeln!(f, "D_scn              : {}", self.d_scn)?;
        writeln!(f, "D_wait             : {}", self.d_wait)?;
        writeln!(f, "D_run              : {}", self.d_run)?;
        writeln!(f, "D_waitdist         : {}", self.d_wait_dist)?;
        writeln!(f, "IA_wait            : {:.1}%", self.ia_wait() * 100.0)?;
        writeln!(f, "IA_run             : {:.1}%", self.ia_run() * 100.0)?;
        writeln!(f, "IA_opt             : {:.1}%", self.ia_opt() * 100.0)?;
        write!(f, "Dwait/Dwaitdist    : {:.2}", self.wait_amplification())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ImpactReport {
        ImpactReport {
            d_scn: TimeNs(1000),
            d_wait: TimeNs(364),
            d_run: TimeNs(16),
            d_wait_dist: TimeNs(104),
            instances: 10,
            nodes_visited: 100,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.ia_wait() - 0.364).abs() < 1e-12);
        assert!((r.ia_run() - 0.016).abs() < 1e-12);
        assert!((r.ia_opt() - 0.260).abs() < 1e-12);
        assert!((r.wait_amplification() - 3.5).abs() < 1e-12);
        assert!((r.component_cost_share() - 0.380).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = ImpactReport::default();
        assert_eq!(r.ia_wait(), 0.0);
        assert_eq!(r.ia_run(), 0.0);
        assert_eq!(r.ia_opt(), 0.0);
        assert_eq!(r.wait_amplification(), 0.0);
    }

    #[test]
    fn absorb_adds_fields() {
        let mut a = report();
        a.absorb(&report());
        assert_eq!(a.d_scn, TimeNs(2000));
        assert_eq!(a.instances, 20);
        assert!((a.ia_wait() - 0.364).abs() < 1e-12);
    }

    #[test]
    fn display_contains_percentages() {
        let text = report().to_string();
        assert!(text.contains("IA_wait"));
        assert!(text.contains("36.4%"));
        assert!(text.contains("3.50"));
    }
}
