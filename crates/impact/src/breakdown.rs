//! Per-module time attribution: where a scenario's time goes.
//!
//! Impact analysis answers "how much do the chosen components matter";
//! this module answers the analyst's follow-up — *which* modules carry
//! the waiting. Instance time is split into application CPU, per-module
//! top-level component waits, component CPU, and the unattributed
//! remainder (scheduling gaps, app-level waits).

use std::collections::BTreeMap;
use tracelens_model::{ComponentFilter, Dataset, ScenarioInstance, Signature, StackTable, TimeNs};
use tracelens_waitgraph::{NodeKind, StreamIndex, WaitGraph};

/// Aggregated attribution over a set of instances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Total instance time (`D_scn` of the selection).
    pub total: TimeNs,
    /// CPU samples of initiating threads with no component frame.
    pub app_cpu: TimeNs,
    /// CPU samples (anywhere in the graphs) with a component frame.
    pub component_cpu: TimeNs,
    /// Top-level component wait time, attributed to the *module* of the
    /// wait's topmost component signature.
    pub wait_by_module: BTreeMap<String, TimeNs>,
    /// Instance time not covered by the above (app-level waits,
    /// idle gaps).
    pub unattributed: TimeNs,
    /// Instances analyzed.
    pub instances: usize,
}

impl Breakdown {
    /// Total component wait time across modules.
    pub fn component_wait(&self) -> TimeNs {
        self.wait_by_module.values().copied().sum()
    }

    /// Modules ranked by attributed wait time, highest first.
    pub fn ranked_modules(&self) -> Vec<(&str, TimeNs)> {
        let mut rows: Vec<(&str, TimeNs)> = self
            .wait_by_module
            .iter()
            .map(|(m, &t)| (m.as_str(), t))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }
}

/// Computes the attribution for the instances selected by `keep`.
///
/// Per instance: its duration joins `total`; root running samples split
/// into app vs component CPU by their callstack; top-level component
/// waits (same rule as [`crate::ImpactAnalyzer`]) are attributed to the
/// module of their topmost matching frame; whatever duration remains
/// (relative to the instance duration) is `unattributed`. Component CPU
/// below wait chains is counted in `component_cpu` but not subtracted
/// from module waits (it executes *inside* them).
pub fn breakdown<F>(dataset: &Dataset, filter: &ComponentFilter, keep: F) -> Breakdown
where
    F: Fn(&ScenarioInstance) -> bool,
{
    let mut out = Breakdown::default();
    for stream in &dataset.streams {
        let instances: Vec<&ScenarioInstance> = dataset
            .instances
            .iter()
            .filter(|i| i.trace == stream.id() && keep(i))
            .collect();
        if instances.is_empty() {
            continue;
        }
        let index = StreamIndex::new(stream);
        for instance in instances {
            let graph = WaitGraph::build(stream, &index, instance);
            out.total += instance.duration();
            out.instances += 1;
            let mut covered = TimeNs::ZERO;
            account(&graph, &dataset.stacks, filter, &mut out, &mut covered);
            out.unattributed += instance
                .duration()
                .checked_sub(covered)
                .unwrap_or(TimeNs::ZERO);
        }
    }
    out
}

fn account(
    graph: &WaitGraph,
    stacks: &StackTable,
    filter: &ComponentFilter,
    out: &mut Breakdown,
    covered: &mut TimeNs,
) {
    // Roots: initiating-thread events. `covered` counts the root-level
    // durations that the breakdown attributes.
    let mut todo: Vec<(tracelens_waitgraph::NodeId, bool, bool)> =
        graph.roots().iter().map(|&r| (r, true, false)).collect();
    while let Some((id, is_root, under)) = todo.pop() {
        let node = graph.node(id);
        let mut now_under = under;
        match node.kind {
            NodeKind::Running => {
                let component = stacks.top_component_symbol(node.stack, filter).is_some();
                if component {
                    out.component_cpu += node.duration;
                } else if is_root {
                    out.app_cpu += node.duration;
                }
                if is_root {
                    *covered += node.duration;
                }
            }
            NodeKind::Wait { .. } | NodeKind::UnpairedWait => {
                if is_root {
                    *covered += node.duration;
                }
                if !under {
                    if let Some(sym) = stacks.top_component_symbol(node.stack, filter) {
                        let module = stacks
                            .symbols()
                            .resolve(sym)
                            .and_then(Signature::module_of)
                            .unwrap_or("?")
                            .to_owned();
                        *out.wait_by_module.entry(module).or_insert(TimeNs::ZERO) += node.duration;
                        now_under = true;
                    }
                }
            }
            NodeKind::Hardware => {}
        }
        for &c in &node.children {
            todo.push((c, false, now_under));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ScenarioName, ThreadId, TraceId, TraceStreamBuilder};

    fn fixture() -> Dataset {
        let mut ds = Dataset::new();
        let app = ds.stacks.intern_symbols(&["app!Main"]);
        let fv =
            ds.stacks
                .intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let se_run = ds.stacks.intern_symbols(&["w!W", "se.sys!ReadDecrypt"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), app); // app cpu 10
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, fv); // fv wait 30
        b.push_running(ThreadId(2), TimeNs(10), TimeNs(30), se_run); // se cpu 30
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(40), se_run);
        b.push_running(ThreadId(1), TimeNs(40), TimeNs(5), app); // app cpu 5
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(0),
            t1: TimeNs(50),
        });
        ds
    }

    #[test]
    fn attribution_splits_as_expected() {
        let ds = fixture();
        let b = breakdown(&ds, &ComponentFilter::suffix(".sys"), |_| true);
        assert_eq!(b.instances, 1);
        assert_eq!(b.total, TimeNs(50));
        assert_eq!(b.app_cpu, TimeNs(15));
        assert_eq!(b.component_cpu, TimeNs(30));
        assert_eq!(b.wait_by_module.len(), 1);
        assert_eq!(b.wait_by_module["fv.sys"], TimeNs(30));
        assert_eq!(b.component_wait(), TimeNs(30));
        // covered = 10 + 30 + 5 = 45 of 50 → 5 unattributed.
        assert_eq!(b.unattributed, TimeNs(5));
        let ranked = b.ranked_modules();
        assert_eq!(ranked[0], ("fv.sys", TimeNs(30)));
    }

    #[test]
    fn empty_selection_is_zero() {
        let ds = fixture();
        let b = breakdown(&ds, &ComponentFilter::suffix(".sys"), |_| false);
        assert_eq!(b, Breakdown::default());
    }

    #[test]
    fn modules_accumulate_across_instances() {
        let mut ds = fixture();
        // Second instance on the same stream, waiting in fs.sys.
        let fs = ds
            .stacks
            .intern_symbols(&["app!W", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut b = TraceStreamBuilder::new(1);
        b.push_wait(ThreadId(3), TimeNs(0), TimeNs::ZERO, fs);
        b.push_unwait(ThreadId(9), ThreadId(3), TimeNs(20), fs);
        ds.streams.push(b.finish().unwrap());
        ds.instances.push(ScenarioInstance {
            trace: TraceId(1),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(3),
            t0: TimeNs(0),
            t1: TimeNs(25),
        });
        let b = breakdown(&ds, &ComponentFilter::suffix(".sys"), |_| true);
        assert_eq!(b.instances, 2);
        assert_eq!(b.wait_by_module.len(), 2);
        assert_eq!(b.wait_by_module["fs.sys"], TimeNs(20));
        assert_eq!(b.wait_by_module["fv.sys"], TimeNs(30));
    }
}
