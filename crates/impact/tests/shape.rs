//! Shape test: impact analysis over a simulated data set must reproduce
//! the qualitative findings of the paper's §5.1 — drivers wait much more
//! than they run, and cost propagation accounts for a large share of the
//! waiting.

use tracelens_impact::ImpactAnalyzer;
use tracelens_model::ComponentFilter;
use tracelens_sim::DatasetBuilder;

#[test]
fn driver_impact_shape_matches_paper() {
    let ds = DatasetBuilder::new(2024).traces(120).build();
    let report = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
    println!("{report}");

    // IA_wait is substantial (paper: 36.4%).
    assert!(
        report.ia_wait() > 0.10 && report.ia_wait() < 0.75,
        "IA_wait = {:.3}",
        report.ia_wait()
    );
    // IA_run is small (paper: 1.6%) — drivers do little computation.
    assert!(report.ia_run() < 0.10, "IA_run = {:.3}", report.ia_run());
    // Waiting dominates running by an order of magnitude.
    assert!(report.ia_wait() > 5.0 * report.ia_run());
    // Cost propagation multiplies waiting across instances
    // (paper: D_wait / D_waitdist ≈ 3.5; shape: clearly above 1).
    assert!(
        report.wait_amplification() > 1.05,
        "amplification = {:.3}",
        report.wait_amplification()
    );
    // IA_opt is a meaningful share of IA_wait (paper: 26% of 36.4%).
    assert!(report.ia_opt() > 0.01, "IA_opt = {:.3}", report.ia_opt());
    assert!(report.ia_opt() < report.ia_wait());
}

#[test]
fn scenario_breakdown_covers_all_scenarios() {
    let ds = DatasetBuilder::new(7).traces(60).build();
    let by = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze_by_scenario(&ds);
    let total: usize = by.values().map(|r| r.instances).sum();
    assert_eq!(total, ds.instances.len());
    for (name, r) in &by {
        assert!(r.d_scn.as_nanos() > 0, "{name} has zero D_scn");
    }
}
