//! Property-based tests: impact metrics against brute-force references
//! on randomized wait layouts.

use proptest::prelude::*;
use tracelens_impact::ImpactAnalyzer;
use tracelens_model::{
    ComponentFilter, Dataset, ScenarioInstance, ScenarioName, ThreadId, TimeNs, TraceId,
    TraceStreamBuilder,
};

/// One synthetic instance: a single top-level driver wait `[start,
/// start+len)` on its own thread, resolved by a shared helper thread.
#[derive(Debug, Clone, Copy)]
struct WaitSpec {
    start: u16,
    len: u16,
}

fn wait_spec() -> impl Strategy<Value = WaitSpec> {
    (0u16..2000, 1u16..500).prop_map(|(start, len)| WaitSpec { start, len })
}

/// Builds a dataset where instance `i` waits exactly per `specs[i]`.
fn dataset(specs: &[WaitSpec]) -> Dataset {
    let mut ds = Dataset::new();
    let drv = ds
        .stacks
        .intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
    let mut b = TraceStreamBuilder::new(0);
    let helper = ThreadId(100);
    for (i, w) in specs.iter().enumerate() {
        let tid = ThreadId(i as u32 + 1);
        b.push_wait(tid, TimeNs(w.start as u64), TimeNs::ZERO, drv);
        b.push_unwait(helper, tid, TimeNs(w.start as u64 + w.len as u64), drv);
    }
    ds.streams.push(b.finish().unwrap());
    for (i, w) in specs.iter().enumerate() {
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("P"),
            tid: ThreadId(i as u32 + 1),
            t0: TimeNs(w.start as u64),
            t1: TimeNs(w.start as u64 + w.len as u64 + 1),
        });
    }
    ds
}

/// Brute-force union length via a boolean timeline.
fn union_reference(specs: &[WaitSpec]) -> u64 {
    let mut covered = vec![false; 3000];
    for w in specs {
        let range = w.start as usize..(w.start as usize + w.len as usize);
        covered[range].iter_mut().for_each(|c| *c = true);
    }
    covered.iter().filter(|&&c| c).count() as u64
}

proptest! {
    #[test]
    fn d_wait_and_distinct_match_references(
        specs in prop::collection::vec(wait_spec(), 1..12)
    ) {
        let ds = dataset(&specs);
        let r = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);
        // D_wait is the plain sum over instances.
        let expected_wait: u64 = specs.iter().map(|w| w.len as u64).sum();
        prop_assert_eq!(r.d_wait, TimeNs(expected_wait));
        // D_waitdist is the wall-clock union.
        prop_assert_eq!(r.d_wait_dist, TimeNs(union_reference(&specs)));
        // Derived identities.
        prop_assert!(r.d_wait_dist <= r.d_wait);
        prop_assert!(r.wait_amplification() >= 1.0 - 1e-12);
        prop_assert!(r.ia_opt() >= -1e-12);
        prop_assert!(r.ia_opt() <= r.ia_wait() + 1e-12);
        prop_assert_eq!(r.instances, specs.len());
    }

    #[test]
    fn non_matching_filter_sees_nothing(
        specs in prop::collection::vec(wait_spec(), 1..8)
    ) {
        let ds = dataset(&specs);
        let r = ImpactAnalyzer::new(ComponentFilter::names(["other.sys"])).analyze(&ds);
        prop_assert_eq!(r.d_wait, TimeNs::ZERO);
        prop_assert_eq!(r.d_wait_dist, TimeNs::ZERO);
        prop_assert_eq!(r.d_run, TimeNs::ZERO);
        // D_scn is unchanged by the filter.
        let all = ImpactAnalyzer::new(ComponentFilter::Any).analyze(&ds);
        prop_assert_eq!(r.d_scn, all.d_scn);
    }

    #[test]
    fn subset_selection_is_additive_in_d_scn(
        specs in prop::collection::vec(wait_spec(), 2..10),
        pivot in 1usize..5,
    ) {
        let ds = dataset(&specs);
        let pivot = pivot.min(specs.len() - 1);
        let an = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
        let left = an.analyze_where(&ds, |i| (i.tid.0 as usize) <= pivot);
        let right = an.analyze_where(&ds, |i| (i.tid.0 as usize) > pivot);
        let whole = an.analyze(&ds);
        prop_assert_eq!(left.d_scn + right.d_scn, whole.d_scn);
        prop_assert_eq!(left.d_wait + right.d_wait, whole.d_wait);
        prop_assert_eq!(left.instances + right.instances, whole.instances);
        // Union length is subadditive under partitioning.
        prop_assert!(left.d_wait_dist + right.d_wait_dist >= whole.d_wait_dist);
    }
}
