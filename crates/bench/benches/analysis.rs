//! Criterion benches over the analysis algorithms: simulator throughput,
//! Wait-Graph construction, impact analysis, AWG aggregation, and
//! contrast mining — the costs that determine how far the pipeline
//! scales toward the paper's 19,500-trace corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tracelens::causality::{split_classes, Aggregator};
use tracelens::prelude::*;

fn dataset(traces: usize) -> Dataset {
    DatasetBuilder::new(77)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .build()
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for traces in [10usize, 40] {
        let events = dataset(traces).total_events() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("generate", traces), &traces, |b, &t| {
            b.iter(|| dataset(t).total_events())
        });
    }
    g.finish();
}

fn bench_waitgraph(c: &mut Criterion) {
    let ds = dataset(40);
    let mut g = c.benchmark_group("waitgraph");
    g.bench_function("index+build_all_instances", |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for stream in &ds.streams {
                let index = StreamIndex::new(stream);
                for i in ds.instances.iter().filter(|i| i.trace == stream.id()) {
                    nodes += WaitGraph::build(stream, &index, i).node_count();
                }
            }
            nodes
        })
    });
    g.finish();
}

fn bench_impact(c: &mut Criterion) {
    let ds = dataset(40);
    let analyzer = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"));
    c.bench_function("impact/analyze_40_traces", |b| {
        b.iter(|| analyzer.analyze(&ds).d_wait)
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let ds = dataset(60);
    let name = ScenarioName::new("BrowserTabCreate");
    let split = split_classes(&ds, &name).expect("scenario defined");
    // Pre-build the slow-class graphs once; measure aggregation alone.
    let mut graphs = Vec::new();
    for instance in &split.slow {
        let stream = ds.stream_of(instance).unwrap();
        let index = StreamIndex::new(stream);
        graphs.push(WaitGraph::build(stream, &index, instance));
    }
    let filter = ComponentFilter::suffix(".sys");
    c.bench_function("causality/aggregate_slow_class", |b| {
        b.iter(|| {
            let mut agg = Aggregator::new(&ds.stacks, &filter);
            for g in &graphs {
                agg.add_graph(g);
            }
            agg.finish().node_count()
        })
    });
}

fn bench_mining(c: &mut Criterion) {
    let ds = dataset(60);
    let name = ScenarioName::new("BrowserTabCreate");
    let analysis = CausalityAnalysis::default();
    c.bench_function("causality/full_pipeline_one_scenario", |b| {
        b.iter(|| analysis.analyze(&ds, &name).map(|r| r.patterns.len()))
    });
    // Segment bound sweep: mining cost vs k.
    let mut g = c.benchmark_group("causality/segment_bound");
    for k in [2usize, 5, 7] {
        let a = CausalityAnalysis::new(tracelens::causality::CausalityConfig {
            segment_bound: k,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| a.analyze(&ds, &name).map(|r| r.stats.slow_metas))
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let ds = dataset(40);
    c.bench_function("baselines/callgraph_profile", |b| {
        b.iter(|| CallGraphProfile::build(&ds).total_cpu())
    });
    c.bench_function("baselines/lock_contention", |b| {
        b.iter(|| LockContentionReport::build(&ds).total_wait())
    });
}

fn bench_textio(c: &mut Criterion) {
    let ds = dataset(20);
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialize");
    let events = ds.total_events() as u64;
    let mut g = c.benchmark_group("textio");
    g.throughput(Throughput::Elements(events));
    g.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            ds.write_text(&mut out).unwrap();
            out.len()
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| {
            Dataset::read_text(std::io::BufReader::new(buf.as_slice()))
                .unwrap()
                .total_events()
        })
    });
    g.finish();
}

fn bench_script(c: &mut Criterion) {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../assets/figure1.tsim"
    ))
    .expect("asset exists");
    c.bench_function("script/run_figure1", |b| {
        b.iter(|| {
            tracelens::sim::script::run_script(&text)
                .unwrap()
                .total_events()
        })
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_waitgraph,
    bench_impact,
    bench_aggregate,
    bench_mining,
    bench_baselines,
    bench_textio,
    bench_script
);
criterion_main!(benches);
