//! # tracelens-bench
//!
//! Experiment harness: binaries that regenerate every table and figure of
//! the paper's evaluation (see `DESIGN.md` §4 for the experiment index),
//! plus Criterion benches over the analysis algorithms.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p tracelens-bench --bin exp_table2
//! ```
//!
//! Every binary accepts two optional positional arguments:
//! `<traces> <seed>` — the number of simulated trace streams and the
//! workload seed — so results are reproducible and scalable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tracelens::prelude::*;

/// Default number of simulated traces for the causality experiments
/// (≈ 1/10 of the paper's instance counts for the selected scenarios).
pub const DEFAULT_TRACES: usize = 600;

/// Default workload seed.
pub const DEFAULT_SEED: u64 = 2014;

/// Parses the common `<traces> <seed>` CLI arguments.
pub fn cli_args() -> (usize, u64) {
    let mut args = std::env::args().skip(1);
    let traces = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TRACES);
    let seed = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    (traces, seed)
}

/// Builds the selected-scenario data set used by Tables 1–4.
///
/// Uses a wider start window and fewer instances per trace than the
/// full-population mix: the eight selected scenarios are driver-heavy,
/// and packing them too densely entangles nearly every instance into a
/// chain, starving the fast contrast classes.
pub fn selected_dataset(traces: usize, seed: u64) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .instances_per_trace(2, 4)
        .start_window_ms(350)
        .build()
}

/// Builds the full-population data set used by the §5.1 impact study.
pub fn full_dataset(traces: usize, seed: u64) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Full)
        .build()
}

/// The eight selected scenario names, in Table-1 order.
pub fn selected_names() -> Vec<ScenarioName> {
    ScenarioName::SELECTED
        .iter()
        .map(|&s| ScenarioName::new(s))
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a fixed-width table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a horizontal rule sized for `widths`.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.364), "36.4%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn selected_names_match_table1() {
        let names = selected_names();
        assert_eq!(names.len(), 8);
        assert_eq!(names[0].as_str(), "AppAccessControl");
    }

    #[test]
    fn datasets_build_small() {
        let ds = selected_dataset(2, 1);
        assert_eq!(ds.streams.len(), 2);
        let full = full_dataset(2, 1);
        assert_eq!(full.scenarios.len(), 13);
    }
}
