//! # tracelens-bench
//!
//! Experiment harness: binaries that regenerate every table and figure of
//! the paper's evaluation (see `DESIGN.md` §4 for the experiment index),
//! plus Criterion benches over the analysis algorithms.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p tracelens-bench --bin exp_table2
//! ```
//!
//! Every binary accepts two optional positional arguments:
//! `<traces> <seed>` — the number of simulated trace streams and the
//! workload seed — so results are reproducible and scalable — plus an
//! optional `--telemetry <path>` flag (or the `TRACELENS_TELEMETRY`
//! environment variable) that writes per-stage spans, counters, and
//! histograms of the run to `<path>` as JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;
use tracelens::prelude::*;

/// Default number of simulated traces for the causality experiments
/// (≈ 1/10 of the paper's instance counts for the selected scenarios).
pub const DEFAULT_TRACES: usize = 600;

/// Default workload seed.
pub const DEFAULT_SEED: u64 = 2014;

/// Environment variable naming the telemetry output path; the
/// `--telemetry` flag takes precedence.
pub const TELEMETRY_ENV: &str = "TRACELENS_TELEMETRY";

/// The common CLI surface of every experiment binary:
/// `[traces] [seed] [--telemetry <path>]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Number of simulated trace streams.
    pub traces: usize,
    /// Workload seed.
    pub seed: u64,
    /// Where to write the run's telemetry report (JSON); `None`
    /// disables collection entirely (the default).
    pub telemetry: Option<PathBuf>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            traces: DEFAULT_TRACES,
            seed: DEFAULT_SEED,
            telemetry: None,
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments and the [`TELEMETRY_ENV`] variable.
    pub fn parse() -> BenchArgs {
        BenchArgs::from_iter(
            std::env::args().skip(1),
            std::env::var(TELEMETRY_ENV).ok().filter(|v| !v.is_empty()),
        )
    }

    /// Parsing core, split out for testing: positionals fill `traces`
    /// then `seed`; `--telemetry <path>` / `--telemetry=<path>`
    /// overrides `env` (the [`TELEMETRY_ENV`] value, if any).
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I, env: Option<String>) -> BenchArgs {
        let mut out = BenchArgs {
            telemetry: env.map(PathBuf::from),
            ..BenchArgs::default()
        };
        let mut positional = 0;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--telemetry" {
                if let Some(path) = args.next() {
                    out.telemetry = Some(PathBuf::from(path));
                }
            } else if let Some(path) = arg.strip_prefix("--telemetry=") {
                out.telemetry = Some(PathBuf::from(path));
            } else {
                match positional {
                    0 => out.traces = arg.parse().unwrap_or(DEFAULT_TRACES),
                    1 => out.seed = arg.parse().unwrap_or(DEFAULT_SEED),
                    _ => {}
                }
                positional += 1;
            }
        }
        out
    }

    /// A telemetry handle for the run: a collecting sink when a
    /// telemetry path was requested, a free disabled handle otherwise.
    pub fn telemetry_handle(&self) -> (Telemetry, Option<Arc<CollectingSink>>) {
        if self.telemetry.is_some() {
            let (telemetry, sink) = CollectingSink::telemetry();
            (telemetry, Some(sink))
        } else {
            (Telemetry::noop(), None)
        }
    }

    /// Writes the collected report as JSON to the requested path. Call
    /// once, after the instrumented work (and after dropping any open
    /// [`tracelens::obs::SpanGuard`]s). No-op when telemetry is off.
    pub fn write_telemetry(&self, sink: Option<&CollectingSink>) {
        let (Some(path), Some(sink)) = (&self.telemetry, sink) else {
            return;
        };
        let report = sink.report();
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("telemetry written to {}", path.display()),
            Err(e) => eprintln!("error: cannot write telemetry to {}: {e}", path.display()),
        }
    }
}

/// Parses the common `<traces> <seed>` CLI arguments.
///
/// Thin wrapper over [`BenchArgs::parse`] for binaries that do not
/// emit telemetry.
pub fn cli_args() -> (usize, u64) {
    let args = BenchArgs::parse();
    (args.traces, args.seed)
}

/// Builds the selected-scenario data set used by Tables 1–4.
///
/// Uses a wider start window and fewer instances per trace than the
/// full-population mix: the eight selected scenarios are driver-heavy,
/// and packing them too densely entangles nearly every instance into a
/// chain, starving the fast contrast classes.
pub fn selected_dataset(traces: usize, seed: u64) -> Dataset {
    selected_dataset_traced(traces, seed, &Telemetry::noop())
}

/// [`selected_dataset`] with a telemetry handle (reports the `sim`
/// stage).
pub fn selected_dataset_traced(traces: usize, seed: u64, telemetry: &Telemetry) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .instances_per_trace(2, 4)
        .start_window_ms(350)
        .telemetry(telemetry.clone())
        .build()
}

/// Builds the full-population data set used by the §5.1 impact study.
pub fn full_dataset(traces: usize, seed: u64) -> Dataset {
    full_dataset_traced(traces, seed, &Telemetry::noop())
}

/// [`full_dataset`] with a telemetry handle (reports the `sim` stage).
pub fn full_dataset_traced(traces: usize, seed: u64, telemetry: &Telemetry) -> Dataset {
    DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Full)
        .telemetry(telemetry.clone())
        .build()
}

/// The eight selected scenario names, in Table-1 order.
pub fn selected_names() -> Vec<ScenarioName> {
    ScenarioName::SELECTED
        .iter()
        .map(|&s| ScenarioName::new(s))
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a fixed-width table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a horizontal rule sized for `widths`.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.364), "36.4%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn selected_names_match_table1() {
        let names = selected_names();
        assert_eq!(names.len(), 8);
        assert_eq!(names[0].as_str(), "AppAccessControl");
    }

    #[test]
    fn datasets_build_small() {
        let ds = selected_dataset(2, 1);
        assert_eq!(ds.streams.len(), 2);
        let full = full_dataset(2, 1);
        assert_eq!(full.scenarios.len(), 13);
    }

    fn parse(args: &[&str], env: Option<&str>) -> BenchArgs {
        BenchArgs::from_iter(
            args.iter().map(|s| s.to_string()),
            env.map(|s| s.to_string()),
        )
    }

    #[test]
    fn args_defaults() {
        let a = parse(&[], None);
        assert_eq!(a, BenchArgs::default());
        assert_eq!(a.traces, DEFAULT_TRACES);
        assert_eq!(a.seed, DEFAULT_SEED);
        assert!(a.telemetry.is_none());
    }

    #[test]
    fn args_positionals_and_flag() {
        let a = parse(&["50", "7", "--telemetry", "out.json"], None);
        assert_eq!((a.traces, a.seed), (50, 7));
        assert_eq!(
            a.telemetry.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        // = form, and flag before positionals.
        let b = parse(&["--telemetry=t.json", "50"], None);
        assert_eq!((b.traces, b.seed), (50, DEFAULT_SEED));
        assert_eq!(b.telemetry.as_deref(), Some(std::path::Path::new("t.json")));
    }

    #[test]
    fn args_env_fallback_and_override() {
        let a = parse(&[], Some("env.json"));
        assert_eq!(
            a.telemetry.as_deref(),
            Some(std::path::Path::new("env.json"))
        );
        let b = parse(&["--telemetry", "cli.json"], Some("env.json"));
        assert_eq!(
            b.telemetry.as_deref(),
            Some(std::path::Path::new("cli.json"))
        );
    }

    #[test]
    fn telemetry_handle_off_by_default() {
        let (t, sink) = BenchArgs::default().telemetry_handle();
        assert!(!t.enabled());
        assert!(sink.is_none());
        let on = BenchArgs {
            telemetry: Some("x.json".into()),
            ..BenchArgs::default()
        };
        let (t, sink) = on.telemetry_handle();
        assert!(t.enabled());
        assert!(sink.is_some());
    }
}
