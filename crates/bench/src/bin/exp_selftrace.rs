//! E-selftrace — where does the flat scaling curve come from?
//!
//! `BENCH_pipeline.json` shows the study pipeline barely speeding up
//! from 1 to 8 jobs. This experiment answers *why* with the pipeline's
//! own instruments: every job count runs through
//! `Study::run_self_traced`, the recordings are lowered into the
//! paper's event shape, and the per-session wait accounting attributes
//! the lost wall time to pool queue waits, recorder-lock contention,
//! join-barrier idling, or the busy-time inflation that is the
//! signature of a memory-bandwidth (or single-core) ceiling.
//!
//! Results land in `BENCH_selftrace.json` (override the path with
//! `TRACELENS_BENCH_OUT`), hand-rolled JSON in the house style:
//!
//! ```text
//! TRACELENS_BENCH_OUT=/tmp/b.json \
//!   cargo run --release -p tracelens-bench --bin exp_selftrace -- 200 2014
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tracelens::prelude::*;
use tracelens::selftrace::lower;
use tracelens_bench::{selected_dataset, selected_names, BenchArgs};

/// Job counts exercised, ascending; the first is the baseline.
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Default output path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_selftrace.json";

struct RunSample {
    jobs: usize,
    wall_s: f64,
    speedup: f64,
    peak_rss_kb: Option<u64>,
    raw_events: usize,
    busy_s: f64,
    join_wait_s: f64,
    lock_wait_s: f64,
    queue_wait_s: f64,
    report_identical: bool,
}

/// The process resident-set high-water mark in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("generating {traces} traces (seed {seed}); {cores} cores available...");
    let ds = selected_dataset(traces, seed);
    let names = selected_names();

    let mut baseline_md: Option<String> = None;
    let mut baseline_wall = 0.0f64;
    let mut samples = Vec::new();
    for jobs in JOB_COUNTS {
        let config = StudyConfig {
            jobs,
            ..StudyConfig::default()
        };
        let t0 = Instant::now();
        let (study, recording) = Study::run_self_traced(&ds, &config, &names);
        let wall_s = t0.elapsed().as_secs_f64();
        let md = tracelens::render_markdown(&study, &ds, &tracelens::ReportOptions::default());
        let report_identical = match &baseline_md {
            None => {
                baseline_md = Some(md);
                baseline_wall = wall_s;
                true
            }
            Some(base) => *base == md,
        };
        assert!(
            report_identical,
            "jobs={jobs}: report diverged from the sequential run"
        );

        let session = SelfTraceSession::new(format!("jobs={jobs}"), recording);
        let lowered = lower(std::slice::from_ref(&session));
        let stats = &lowered.stats[0];
        let named = |name: &str| stats.wait_ns_by_name.get(name).copied().unwrap_or(0) as f64 / 1e9;
        samples.push(RunSample {
            jobs,
            wall_s,
            speedup: baseline_wall / wall_s,
            peak_rss_kb: peak_rss_kb(),
            raw_events: stats.raw_events,
            busy_s: stats.busy_ns() as f64 / 1e9,
            join_wait_s: named(tracelens::obs::waitpoint::POOL_JOIN),
            lock_wait_s: stats.lock_wait_ns as f64 / 1e9,
            queue_wait_s: stats.queue_wait_ns as f64 / 1e9,
            report_identical,
        });
        eprintln!(
            "jobs={jobs}: {wall_s:.3}s (speedup {:.2}x), join wait {:.3}s",
            baseline_wall / wall_s,
            named(tracelens::obs::waitpoint::POOL_JOIN),
        );
    }

    let json = render_json(&ds, traces, seed, cores, &samples);
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
}

/// Names the wait source that explains the gap between the ideal and
/// the observed scaling at the widest fan-out.
///
/// The candidates are the three measured wait channels plus the
/// *busy-time residual*: when workers are not blocked anywhere yet the
/// summed busy time inflates past the sequential run, the threads are
/// running but starved below the CPU — the memory-bandwidth /
/// oversubscription signature (on this corpus, pinned to however many
/// cores the host actually has).
fn dominant_wait_source(widest: &RunSample, baseline: &RunSample) -> (&'static str, f64) {
    let residual_s = (widest.busy_s - baseline.busy_s).max(0.0);
    let candidates = [
        ("pool.join (join-barrier idling)", widest.join_wait_s),
        ("obs.lock (recorder-lock contention)", widest.lock_wait_s),
        ("pool.queue (task-claim waiting)", widest.queue_wait_s),
        ("memory-bandwidth-residual (busy inflation)", residual_s),
    ];
    candidates
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or(("none", 0.0))
}

fn render_json(
    ds: &Dataset,
    traces: usize,
    seed: u64,
    cores: usize,
    samples: &[RunSample],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"selftrace_wait_attribution\",");
    let _ = writeln!(out, "  \"traces\": {traces},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"instances\": {},", ds.instances.len());
    let _ = writeln!(out, "  \"events\": {},", ds.total_events());
    let (source, cost_s) = dominant_wait_source(
        samples.last().expect("at least one run"),
        samples.first().expect("at least one run"),
    );
    let _ = writeln!(out, "  \"dominant_wait_source\": \"{source}\",");
    let _ = writeln!(out, "  \"dominant_wait_s\": {cost_s:.6},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"jobs\": {},", s.jobs);
        let _ = writeln!(out, "      \"wall_s\": {:.6},", s.wall_s);
        let _ = writeln!(out, "      \"speedup\": {:.3},", s.speedup);
        match s.peak_rss_kb {
            Some(kb) => {
                let _ = writeln!(out, "      \"peak_rss_kb\": {kb},");
            }
            None => {
                let _ = writeln!(out, "      \"peak_rss_kb\": null,");
            }
        }
        let _ = writeln!(out, "      \"raw_events\": {},", s.raw_events);
        let _ = writeln!(out, "      \"busy_s\": {:.6},", s.busy_s);
        let _ = writeln!(out, "      \"join_wait_s\": {:.6},", s.join_wait_s);
        let _ = writeln!(out, "      \"lock_wait_s\": {:.6},", s.lock_wait_s);
        let _ = writeln!(out, "      \"queue_wait_s\": {:.6},", s.queue_wait_s);
        let _ = writeln!(out, "      \"report_identical\": {}", s.report_identical);
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
