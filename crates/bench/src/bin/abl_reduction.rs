//! A2 — Ablation: the non-optimizable (wait→hardware) reduction.
//!
//! §5.2.2 reports that 66.6 % of BrowserTabSwitch's slow-class driver
//! cost is direct hardware service, removed by the reduction; the
//! remaining 33.4 % is the coverable scope. This ablation measures the
//! pruned fraction and shows what mining over the unreduced graph would
//! report instead.

use tracelens::causality::{CausalityAnalysis, CausalityConfig};
use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_names, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    let traces = traces.min(300);
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Selected)
        .telemetry(telemetry.clone())
        .build();

    let reduced = CausalityAnalysis::default().with_telemetry(telemetry.clone());
    let unreduced = CausalityAnalysis::new(CausalityConfig {
        reduce: false,
        ..CausalityConfig::default()
    })
    .with_telemetry(telemetry.clone());

    let widths = [22, 12, 12, 12, 12];
    println!("== A2: non-optimizable reduction ablation ==");
    row(
        &[
            "Scenario",
            "pruned frac",
            "TTC (red.)",
            "TTC (unred.)",
            "pat. Δ",
        ],
        &widths,
    );
    rule(&widths);
    for name in selected_names() {
        let (Ok(r), Ok(u)) = (reduced.analyze(&ds, &name), unreduced.analyze(&ds, &name)) else {
            row(&[name.as_str(), "(empty class)"], &widths[..2]);
            continue;
        };
        row(
            &[
                name.as_str(),
                &pct(r.reduced_fraction()),
                &pct(r.ttc()),
                &pct(u.ttc()),
                &format!("{:+}", u.patterns.len() as i64 - r.patterns.len() as i64),
            ],
            &widths,
        );
    }
    println!();
    println!("paper: BrowserTabSwitch has 66.6% of slow driver cost in");
    println!("direct hardware service; the reduction removes it so mined");
    println!("patterns target only optimizable (propagating) behavior.");
    args.write_telemetry(sink.as_deref());
}
