//! R1/R2 — Robustness sweeps: graceful degradation under trace
//! corruption (R1) and under analysis-stage execution faults (R2).
//!
//! **R1** injects every *data* fault kind at rate ε into a clean
//! selected-scenario workload, sanitizes, and reruns the full study,
//! reporting how the headline numbers degrade as corruption grows:
//!
//! * coverage — fraction of input instances surviving quarantine,
//! * IA_wait — the §5.1 wait-impact headline, vs. the clean baseline,
//! * top-10 retention — fraction of the clean baseline's per-scenario
//!   top-10 contrast patterns still recovered from the corrupt data.
//!
//! The ε = 0 row doubles as the no-op check: injection and sanitization
//! must leave the data set byte-identical.
//!
//! **R2** leaves the data intact and instead makes the *analysis* fail:
//! an [`ExecFaultPlan`] panics a deterministic ε-fraction of supervised
//! work units. Every run must still complete (fail-operational), and
//! the sweep reports unit completion rate, quarantined units, lost
//! instances, and the IA_wait drift of the surviving work. The ε = 0
//! row measures supervision overhead against the unsupervised pipeline
//! (PR 3 baseline). Results land in `BENCH_robustness.json` (override
//! with `TRACELENS_BENCH_OUT`).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;
use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_names, BenchArgs};

/// Fault rates swept, per fault kind.
const RATES: [f64; 5] = [0.0, 0.001, 0.01, 0.05, 0.1];

/// Unit panic rates swept by the R2 execution-fault sweep.
const EXEC_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// How many top patterns per scenario form the retention baseline.
const TOP: usize = 10;

/// Default JSON artifact path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_robustness.json";

fn dataset_bytes(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialize");
    buf
}

/// The per-scenario top-`TOP` contrast patterns, as comparable keys.
fn top_patterns(study: &Study, stacks: &StackTable) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for (name, s) in &study.scenarios {
        let Ok(c) = &s.causality else { continue };
        for p in c.top(TOP) {
            keys.insert(format!("{name}\n{}", p.tuple.render(stacks)));
        }
    }
    keys
}

fn main() {
    let args = BenchArgs::parse();
    let traces = args.traces.min(200); // 5 full studies; keep the sweep snappy
    let seed = args.seed;
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} clean traces (seed {seed})...");
    let clean = tracelens_bench::selected_dataset_traced(traces, seed, &telemetry);
    let clean_bytes = dataset_bytes(&clean);
    let names = selected_names();
    let config = StudyConfig::default();

    eprintln!("running clean baseline study...");
    let baseline = Study::run_traced(&clean, &config, &names, &telemetry);
    let baseline_ia = baseline.impact.ia_wait();
    let baseline_top = top_patterns(&baseline, &clean.stacks);
    eprintln!(
        "baseline: IA_wait {}, {} top-{TOP} patterns across {} scenarios",
        pct(baseline_ia),
        baseline_top.len(),
        baseline.scenarios.len()
    );

    // ε = 0 no-op check, hoisted out of the sweep so the data set is
    // serialized exactly once instead of once per rate: zero-rate
    // injection followed by sanitization must leave the bytes untouched.
    {
        let (uncorrupt, log) = FaultInjector::new(seed).with_all(0.0).inject(&clean);
        assert_eq!(log.total(), 0, "zero rate injects nothing");
        let (resan, report) = uncorrupt.sanitize();
        assert!(report.is_clean(), "ε=0 sanitize is a no-op");
        assert_eq!(
            dataset_bytes(&resan),
            clean_bytes,
            "ε=0 round-trip is byte-identical"
        );
    }

    println!("== R1: robustness sweep — every fault kind at rate ε ==\n");
    let widths = [7, 9, 9, 12, 9, 9, 9, 10];
    row(
        &[
            "ε",
            "injected",
            "repaired",
            "quarantined",
            "coverage",
            "IA_wait",
            "ΔIA_wait",
            "top-10 ret",
        ],
        &widths,
    );
    rule(&widths);

    for eps in RATES {
        let injector = FaultInjector::new(seed).with_all(eps);
        let (corrupt, log) = injector.inject(&clean);
        let (study, report) = Study::run_sanitized_traced(&corrupt, &config, &names, &telemetry);

        if eps == 0.0 {
            assert_eq!(log.total(), 0, "zero rate injects nothing");
            assert!(report.is_clean(), "ε=0 sanitize is a no-op");
        }

        let ia = study.impact.ia_wait();
        let retained = if baseline_top.is_empty() {
            1.0
        } else {
            let now = top_patterns(&study, &corrupt.stacks);
            baseline_top.intersection(&now).count() as f64 / baseline_top.len() as f64
        };
        row(
            &[
                &format!("{eps}"),
                &log.total().to_string(),
                &report.repaired().to_string(),
                &format!(
                    "{}t/{}i",
                    report.quarantined_traces, report.quarantined_instances
                ),
                &pct(study.coverage.fraction()),
                &pct(ia),
                &format!("{:+.1}pp", (ia - baseline_ia) * 100.0),
                &pct(retained),
            ],
            &widths,
        );
    }

    println!();
    println!("fault kinds injected (each at rate ε): drop_unwaits, truncate_streams,");
    println!("duplicate_events, clock_skew, dangling_stacks, orphan_waits,");
    println!("dangling_instance_refs — see tracelens-faults for the corruption model.");

    // ---- R2: execution faults — the data is fine, the analysis panics.
    println!();
    println!("== R2: execution-fault sweep — panic a fraction ε of work units ==\n");

    // Supervision overhead on a clean run, best-of-3 each, against the
    // unsupervised (PR 3) pipeline.
    let best_of = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let plain_wall = best_of(&|| {
        let _ = Study::run(&clean, &config, &names);
    });
    let supervised_wall = best_of(&|| {
        let _ = Study::run_supervised(&clean, &config, &names).expect("clean supervised run");
    });
    let overhead = supervised_wall / plain_wall - 1.0;
    eprintln!(
        "clean run: plain {plain_wall:.3}s, supervised {supervised_wall:.3}s \
         (overhead {:+.1}%)",
        overhead * 100.0
    );

    let widths = [7, 7, 12, 11, 10, 9, 9];
    row(
        &[
            "ε",
            "units",
            "quarantined",
            "completion",
            "lost inst",
            "IA_wait",
            "ΔIA_wait",
        ],
        &widths,
    );
    rule(&widths);

    struct ExecSample {
        rate: f64,
        units: usize,
        quarantined: usize,
        completion: f64,
        lost_instances: usize,
        ia_wait: f64,
    }
    let mut exec_samples = Vec::new();
    for eps in EXEC_RATES {
        let cfg = StudyConfig {
            exec_faults: Some(ExecFaultPlan::new(seed ^ 0xE4EC).with_panic_rate(eps)),
            ..StudyConfig::default()
        };
        let study = Study::run_supervised_traced(&clean, &cfg, &names, &telemetry)
            .expect("supervised study completes under execution faults");
        let exec = &study.execution;
        if eps == 0.0 {
            assert!(exec.is_clean(), "ε=0 must quarantine nothing");
        }
        let ia = study.impact.ia_wait();
        row(
            &[
                &format!("{eps}"),
                &exec.units.to_string(),
                &exec.quarantined().to_string(),
                &pct(exec.completion_rate()),
                &exec.lost_instances().to_string(),
                &pct(ia),
                &format!("{:+.1}pp", (ia - baseline_ia) * 100.0),
            ],
            &widths,
        );
        exec_samples.push(ExecSample {
            rate: eps,
            units: exec.units,
            quarantined: exec.quarantined(),
            completion: exec.completion_rate(),
            lost_instances: exec.lost_instances(),
            ia_wait: ia,
        });
    }

    println!();
    println!("every row completed a full study: panicking units are quarantined and");
    println!("accounted for, never fatal — see tracelens-pool::supervised_map.");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"robustness_execution\",");
    let _ = writeln!(json, "  \"traces\": {traces},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"instances\": {},", clean.instances.len());
    let _ = writeln!(json, "  \"baseline_ia_wait\": {baseline_ia:.6},");
    let _ = writeln!(json, "  \"plain_wall_s\": {plain_wall:.6},");
    let _ = writeln!(json, "  \"supervised_wall_s\": {supervised_wall:.6},");
    let _ = writeln!(json, "  \"supervision_overhead\": {overhead:.4},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, s) in exec_samples.iter().enumerate() {
        let comma = if i + 1 < exec_samples.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"panic_rate\": {}, \"units\": {}, \"quarantined\": {}, \
             \"completion_rate\": {:.4}, \"lost_instances\": {}, \
             \"ia_wait\": {:.6} }}{comma}",
            s.rate, s.units, s.quarantined, s.completion, s.lost_instances, s.ia_wait
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    args.write_telemetry(sink.as_deref());
}
