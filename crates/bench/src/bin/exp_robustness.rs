//! R1 — Robustness sweep: graceful degradation under trace corruption.
//!
//! Injects every fault kind at rate ε into a clean selected-scenario
//! workload, sanitizes, and reruns the full study, reporting how the
//! headline numbers degrade as corruption grows:
//!
//! * coverage — fraction of input instances surviving quarantine,
//! * IA_wait — the §5.1 wait-impact headline, vs. the clean baseline,
//! * top-10 retention — fraction of the clean baseline's per-scenario
//!   top-10 contrast patterns still recovered from the corrupt data.
//!
//! The ε = 0 row doubles as the no-op check: injection and sanitization
//! must leave the data set byte-identical.

use std::collections::BTreeSet;
use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_names, BenchArgs};

/// Fault rates swept, per fault kind.
const RATES: [f64; 5] = [0.0, 0.001, 0.01, 0.05, 0.1];

/// How many top patterns per scenario form the retention baseline.
const TOP: usize = 10;

fn dataset_bytes(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    ds.write_text(&mut buf).expect("serialize");
    buf
}

/// The per-scenario top-`TOP` contrast patterns, as comparable keys.
fn top_patterns(study: &Study, stacks: &StackTable) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for (name, s) in &study.scenarios {
        let Ok(c) = &s.causality else { continue };
        for p in c.top(TOP) {
            keys.insert(format!("{name}\n{}", p.tuple.render(stacks)));
        }
    }
    keys
}

fn main() {
    let args = BenchArgs::parse();
    let traces = args.traces.min(200); // 5 full studies; keep the sweep snappy
    let seed = args.seed;
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} clean traces (seed {seed})...");
    let clean = tracelens_bench::selected_dataset_traced(traces, seed, &telemetry);
    let clean_bytes = dataset_bytes(&clean);
    let names = selected_names();
    let config = StudyConfig::default();

    eprintln!("running clean baseline study...");
    let baseline = Study::run_traced(&clean, &config, &names, &telemetry);
    let baseline_ia = baseline.impact.ia_wait();
    let baseline_top = top_patterns(&baseline, &clean.stacks);
    eprintln!(
        "baseline: IA_wait {}, {} top-{TOP} patterns across {} scenarios",
        pct(baseline_ia),
        baseline_top.len(),
        baseline.scenarios.len()
    );

    println!("== R1: robustness sweep — every fault kind at rate ε ==\n");
    let widths = [7, 9, 9, 12, 9, 9, 9, 10];
    row(
        &[
            "ε",
            "injected",
            "repaired",
            "quarantined",
            "coverage",
            "IA_wait",
            "ΔIA_wait",
            "top-10 ret",
        ],
        &widths,
    );
    rule(&widths);

    for eps in RATES {
        let injector = FaultInjector::new(seed).with_all(eps);
        let (corrupt, log) = injector.inject(&clean);
        let (study, report) = Study::run_sanitized_traced(&corrupt, &config, &names, &telemetry);

        if eps == 0.0 {
            assert_eq!(log.total(), 0, "zero rate injects nothing");
            assert!(report.is_clean(), "ε=0 sanitize is a no-op");
            let (resan, _) = corrupt.sanitize();
            assert_eq!(
                dataset_bytes(&resan),
                clean_bytes,
                "ε=0 round-trip is byte-identical"
            );
        }

        let ia = study.impact.ia_wait();
        let retained = if baseline_top.is_empty() {
            1.0
        } else {
            let now = top_patterns(&study, &corrupt.stacks);
            baseline_top.intersection(&now).count() as f64 / baseline_top.len() as f64
        };
        row(
            &[
                &format!("{eps}"),
                &log.total().to_string(),
                &report.repaired().to_string(),
                &format!(
                    "{}t/{}i",
                    report.quarantined_traces, report.quarantined_instances
                ),
                &pct(study.coverage.fraction()),
                &pct(ia),
                &format!("{:+.1}pp", (ia - baseline_ia) * 100.0),
                &pct(retained),
            ],
            &widths,
        );
    }

    println!();
    println!("fault kinds injected (each at rate ε): drop_unwaits, truncate_streams,");
    println!("duplicate_events, clock_skew, dangling_stacks, orphan_waits,");
    println!("dangling_instance_refs — see tracelens-faults for the corruption model.");
    args.write_telemetry(sink.as_deref());
}
