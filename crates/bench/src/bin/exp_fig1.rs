//! F1 — Figure 1: the BrowserTabCreate motivating case.
//!
//! Reconstructs the paper's six-thread cost-propagation chain — two lock
//! contention regions (File Table in `fv.sys`, MDUs in `fs.sys`)
//! connected by hierarchical dependencies down to an encrypted disk read
//! — and prints the thread timeline, the UI thread's Wait Graph, and the
//! propagation chain as the analyses see it.

use tracelens::model::{EventKind, ProcessId, ScenarioInstance, StackTable, TimeNs};
use tracelens::prelude::*;
use tracelens::sim::env::{sig, Env};
use tracelens::sim::{HwRequest, Machine, ProgramBuilder};
use tracelens_bench::BenchArgs;

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, sink) = args.telemetry_handle();
    let mut machine = Machine::new(0);
    let env = Env::install(&mut machine);
    let mut stacks = StackTable::new();

    // TC,W0 — Configuration Manager worker: holds the MDU lock behind an
    // encrypted read (disk service + se.sys decryption on TS,W0).
    let tc = machine.add_thread(
        ProcessId(3),
        ms(0),
        ProgramBuilder::new("cm!Worker")
            .call(sig::K_OPEN_FILE)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .request(HwRequest {
                device: env.disk,
                service: ms(500),
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: ms(80),
            })
            .release(env.mdu)
            .ret()
            .ret()
            .build()
            .expect("cm worker"),
    );
    // TA,W0 — AntiVirus worker: queues on the MDU lock.
    let ta = machine.add_thread(
        ProcessId(2),
        ms(1),
        ProgramBuilder::new("av!Worker")
            .call(sig::K_OPEN_FILE)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .compute(ms(2))
            .release(env.mdu)
            .ret()
            .ret()
            .build()
            .expect("av worker"),
    );
    // TB,W1 — browser worker: holds the File Table lock, queues on MDU.
    let tb_w1 = machine.add_thread(
        ProcessId(1),
        ms(2),
        ProgramBuilder::new("browser!Worker")
            .call(sig::K_CREATE_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .call(sig::FS_ACQUIRE_MDU)
            .acquire(env.mdu)
            .compute(ms(2))
            .release(env.mdu)
            .ret()
            .release(env.file_table)
            .ret()
            .ret()
            .build()
            .expect("browser worker 1"),
    );
    // TB,W0 — browser worker: queues on the File Table lock.
    let tb_w0 = machine.add_thread(
        ProcessId(1),
        ms(3),
        ProgramBuilder::new("browser!Worker")
            .call(sig::K_CREATE_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .compute(ms(2))
            .release(env.file_table)
            .ret()
            .ret()
            .build()
            .expect("browser worker 0"),
    );
    // TB,UI — the browser UI thread reacting to "create a new tab".
    let ui = machine.add_thread(
        ProcessId(1),
        ms(10),
        ProgramBuilder::new("browser!TabCreate")
            .compute(ms(20))
            .call(sig::K_OPEN_FILE)
            .call(sig::FV_QUERY_FILE_TABLE)
            .acquire(env.file_table)
            .compute(ms(2))
            .release(env.file_table)
            .ret()
            .ret()
            .compute(ms(40))
            .build()
            .expect("ui thread"),
    );

    let out = machine.run(&mut stacks).expect("simulation completes");

    println!("== F1: Figure 1 — cost propagation in BrowserTabCreate ==\n");
    println!("thread timeline (start → finish):");
    for (label, tid) in [
        ("TB,UI  browser UI", ui),
        ("TB,W0  browser worker (FileTable queuer)", tb_w0),
        ("TB,W1  browser worker (FileTable holder)", tb_w1),
        ("TA,W0  antivirus worker (MDU queuer)", ta),
        ("TC,W0  config-manager worker (MDU holder)", tc),
    ] {
        let (t0, t1) = out.span_of(tid).expect("thread simulated");
        println!("  {label:<45} {t0:>10} → {t1}");
    }
    let (t0, t1) = out.span_of(ui).unwrap();
    println!(
        "\nthe user perceives a {} delay creating the tab (paper: >800 ms).\n",
        t0.saturating_span_to(t1)
    );

    // Build the UI thread's Wait Graph and show the propagation chain.
    let instance = ScenarioInstance {
        trace: out.stream.id(),
        scenario: ScenarioName::new("BrowserTabCreate"),
        tid: ui,
        t0,
        t1,
    };
    let index = StreamIndex::new_traced(&out.stream, &telemetry);
    let graph = WaitGraph::build_traced(&out.stream, &index, &instance, &telemetry);
    println!("UI thread Wait Graph (depth-first; consecutive samples coalesced):");
    let mut pending: Option<(usize, String, TimeNs, u32)> = None;
    let flush = |p: &mut Option<(usize, String, TimeNs, u32)>| {
        if let Some((depth, line, total, count)) = p.take() {
            let times = if count > 1 {
                format!(" x{count}")
            } else {
                String::new()
            };
            println!("  {}{} [{}{}]", "  ".repeat(depth), line, total, times);
        }
    };
    for (depth, id) in graph.dfs() {
        let n = graph.node(id);
        let frame = stacks
            .frames(n.stack)
            .last()
            .and_then(|&s| stacks.symbols().resolve(s))
            .unwrap_or("?");
        let line = format!(
            "{} {} {}",
            match n.kind {
                tracelens::waitgraph::NodeKind::Running => "run ",
                tracelens::waitgraph::NodeKind::Hardware => "hw  ",
                _ => "wait",
            },
            n.tid,
            frame
        );
        match &mut pending {
            Some((d, l, total, count)) if *d == depth && *l == line => {
                *total += n.duration;
                *count += 1;
            }
            _ => {
                flush(&mut pending);
                pending = Some((depth, line, n.duration, 1));
            }
        }
    }
    flush(&mut pending);

    // Totals: how much of the delay is the propagated disk+decrypt cost?
    let hw: TimeNs = out
        .stream
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::HardwareService)
        .map(|e| e.cost)
        .sum();
    println!("\nhardware service total: {hw} — propagated through");
    println!("(1) se.sys → fs.sys (service-call return)");
    println!("(2,3) MDU lock handoffs: cm → av → browser worker");
    println!("(4) fs.sys → fv.sys (call return)");
    println!("(5,6) FileTable lock handoffs: worker → worker → UI");
    println!("\nGraphviz of the Wait Graph:\n");
    println!("{}", graph.to_dot(&stacks));
    args.write_telemetry(sink.as_deref());
}
