//! E7 (extension) — victim analysis: which applications suffer the
//! driver waiting.
//!
//! The paper's motivating case stresses that the incident hurt not just
//! the browser but "the other two applications along the propagation
//! path" (§2.2, §3.2). This experiment groups the impact analysis by the
//! initiating thread's *process*, showing how one component's delays
//! spread across victims.

use tracelens::prelude::*;
use tracelens_bench::{full_dataset_traced, pct, row, rule, BenchArgs};

fn process_label(pid: u32) -> &'static str {
    match pid {
        0 => "system",
        1 => "browser",
        2 => "antivirus",
        3 => "config-manager",
        4 => "application",
        5 => "backup",
        _ => "other",
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = full_dataset_traced(traces, seed, &telemetry);

    let by = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"))
        .with_telemetry(telemetry.clone())
        .analyze_by_process(&ds);
    println!("== E7: victim analysis — driver impact per process ==");
    let widths = [18, 10, 12, 10, 10, 10];
    row(
        &["process", "instances", "D_wait", "IA_wait", "IA_opt", "amp"],
        &widths,
    );
    rule(&widths);
    let mut rows: Vec<_> = by.into_iter().collect();
    rows.sort_by_key(|(_, r)| std::cmp::Reverse(r.d_wait));
    for (pid, r) in &rows {
        row(
            &[
                process_label(pid.0),
                &r.instances.to_string(),
                &r.d_wait.to_string(),
                &pct(r.ia_wait()),
                &pct(r.ia_opt()),
                &format!("{:.2}", r.wait_amplification()),
            ],
            &widths,
        );
    }
    println!();
    println!("shape: every process that runs scenarios inherits driver");
    println!("waiting — cost propagation does not respect process");
    println!("boundaries (the paper's six-thread, four-process incident).");
    args.write_telemetry(sink.as_deref());
}
