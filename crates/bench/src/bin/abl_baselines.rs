//! A3 — Baseline comparison on the Figure-1 workload.
//!
//! Runs the two single-aspect baselines (§6) and the causality analysis
//! on the same BrowserTabCreate data set and shows what each can and
//! cannot see of the fv → fs → se propagation chain:
//!
//! * the **call-graph profiler** attributes CPU (it finds `se.sys`
//!   decryption but none of the blocked time),
//! * the **lock-contention analyzer** finds the contended sites but each
//!   in isolation — it cannot say *why* the File Table holder was slow,
//! * the **causality analysis** emits one pattern naming the whole
//!   chain.

use tracelens::prelude::*;
use tracelens_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    let traces = traces.min(200);
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .telemetry(telemetry.clone())
        .build();

    println!("== A3: what each analysis sees of the Figure-1 chain ==\n");

    println!("--- gprof-style call-graph profile (top 8 by CPU) ---");
    let prof = CallGraphProfile::build(&ds);
    println!("{}", prof.render(&ds, 8));
    println!("note: blocked time is invisible; drivers barely register on CPU.\n");

    println!("--- single-lock contention analysis (top 8 sites) ---");
    let locks = LockContentionReport::build(&ds);
    println!("{}", locks.render(&ds, 8));
    println!("note: sites are ranked, but each in isolation — the analysis");
    println!("cannot connect the File Table wait to the MDU holder's disk read.\n");

    println!("--- StackMine-style costly callstacks (top 5) ---");
    let stacks_report = CostlyStackReport::build(&ds);
    println!("{}", stacks_report.render(&ds, 5));
    println!("note: within-thread view — it finds WHERE threads block, but");
    println!("the holder's identity and its own chain remain invisible.\n");

    println!("--- causality analysis (top 3 contrast patterns) ---");
    let report = CausalityAnalysis::default()
        .with_telemetry(telemetry.clone())
        .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
        .expect("causality analysis succeeds");
    for (i, p) in report.top(3).iter().enumerate() {
        println!("#{} avg={} (N={}):", i + 1, p.avg_cost(), p.n);
        println!("{}\n", p.tuple.render(&ds.stacks));
    }
    println!("the top pattern names the wait sites, the unwait (holder)");
    println!("sites, and the root running costs in one actionable tuple —");
    println!("the cross-lock, cross-dependency view the baselines lack.");
    args.write_telemetry(sink.as_deref());
}
