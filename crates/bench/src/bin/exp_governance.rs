//! R3 — Resource-governance sweep: memory budget vs. coverage.
//!
//! Under injected resource pressure (a [`MemFaultPlan`] inflating a
//! deterministic fraction of unit cost estimates 64×), the study runs
//! against a sweep of live-bytes budgets under both over-budget
//! policies:
//!
//! * **shed** — over-budget units are quarantined without running; the
//!   sweep reports how scenario coverage falls as the budget tightens,
//! * **degrade** — over-budget units run on a budget-bounded input
//!   slice; coverage stays full while the numbers describe less data.
//!
//! Every row must complete (governance is fail-operational) with every
//! unit accounted for: admitted + queued + degraded + shed = units.
//! The preamble measures governance overhead — a governed run whose
//! budget is finite but never constraining, against the plain
//! supervised pipeline — which CI gates at < 5%. Results land in
//! `BENCH_governance.json` (override with `TRACELENS_BENCH_OUT`).

use std::fmt::Write as _;
use std::time::Instant;
use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_names, BenchArgs};

/// Budgets swept, in MiB; `0` means unlimited (the governance-off row).
const BUDGETS_MB: [u64; 7] = [0, 64, 16, 8, 4, 2, 1];

/// A finite budget no estimate of this workload ever approaches: arms
/// the whole governance machinery without constraining anything.
const UNCONSTRAINED_MB: u64 = 1 << 20;

/// Default JSON artifact path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_governance.json";

fn main() {
    let args = BenchArgs::parse();
    let traces = args.traces.min(120); // 14 governed studies; keep the sweep snappy
    let seed = args.seed;
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = tracelens_bench::selected_dataset_traced(traces, seed, &telemetry);
    let names = selected_names();
    let pressure = MemFaultPlan::new(seed ^ 0x90BE)
        .with_rate(0.5)
        .with_factor(64);

    eprintln!("running ungoverned baseline study...");
    let baseline = Study::run_supervised_traced(&ds, &StudyConfig::default(), &names, &telemetry)
        .expect("baseline run completes");
    let baseline_ia = baseline.impact.ia_wait();
    eprintln!(
        "baseline: IA_wait {}, {} scenarios",
        pct(baseline_ia),
        baseline.scenarios.len()
    );

    // ---- Governance overhead: estimates + admission + reporting on a
    // budget that never constrains, against the plain supervised run.
    // Each sample times a small batch of runs so that single-run jitter
    // (the whole study is tens of milliseconds) does not dominate.
    const RUNS_PER_SAMPLE: u32 = 3;
    let best_of = |f: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..RUNS_PER_SAMPLE {
                    f();
                }
                t0.elapsed().as_secs_f64() / RUNS_PER_SAMPLE as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    let plain_wall = best_of(&|| {
        let _ = Study::run_supervised(&ds, &StudyConfig::default(), &names)
            .expect("plain supervised run");
    });
    let governed_cfg = StudyConfig {
        govern: GovernPolicy::with_budget_mb(UNCONSTRAINED_MB),
        ..StudyConfig::default()
    };
    let governed_wall = best_of(&|| {
        let study =
            Study::run_governed(&ds, &governed_cfg, &names).expect("unconstrained governed run");
        assert_eq!(study.governance.constrained(), 0, "budget must not bind");
    });
    let overhead = governed_wall / plain_wall - 1.0;
    eprintln!(
        "clean run: plain {plain_wall:.3}s, governed {governed_wall:.3}s \
         (governance overhead {:+.1}%)",
        overhead * 100.0
    );

    println!("== R3: budget sweep under 64x resource pressure (rate 0.5) ==\n");
    let widths = [8, 9, 9, 7, 9, 5, 10, 10, 12];
    row(
        &[
            "budget",
            "policy",
            "admitted",
            "queued",
            "degraded",
            "shed",
            "scenarios",
            "lost inst",
            "min retain",
        ],
        &widths,
    );
    rule(&widths);

    struct Sample {
        budget_mb: u64,
        action: &'static str,
        admitted: usize,
        queued: usize,
        degraded: usize,
        shed: usize,
        completed_scenarios: usize,
        lost_instances: usize,
        peak_estimated_bytes: u64,
        min_retain_per_mille: u32,
        ia_wait: f64,
    }
    let mut samples: Vec<Sample> = Vec::new();

    for budget_mb in BUDGETS_MB {
        for (action, label) in [
            (OverBudgetAction::Shed, "shed"),
            (OverBudgetAction::Degrade, "degrade"),
        ] {
            // The unlimited row is policy-independent; emit it once.
            if budget_mb == 0 && action == OverBudgetAction::Degrade {
                continue;
            }
            let cfg = StudyConfig {
                govern: GovernPolicy::with_budget_mb(budget_mb).on_over_budget(action),
                mem_faults: Some(pressure),
                ..StudyConfig::default()
            };
            let study = Study::run_governed_traced(&ds, &cfg, &names, &telemetry)
                .expect("governed run always completes");
            let gov = &study.governance;
            assert_eq!(
                gov.admitted + gov.queued + gov.degraded + gov.shed,
                names.len(),
                "budget {budget_mb} MiB / {label}: unit lost"
            );
            if budget_mb == 0 {
                assert!(!gov.is_governed(), "0 MiB must mean unlimited");
                assert_eq!(study.scenarios.len(), baseline.scenarios.len());
            }
            let ia = study.impact.ia_wait();
            // The smallest input slice any degraded unit ran on; 1000‰
            // means no unit was degraded on this row.
            let min_retain = gov
                .decisions
                .iter()
                .filter_map(|d| match &d.admission {
                    Admission::Degraded(deg) => Some(deg.retain_per_mille),
                    _ => None,
                })
                .min()
                .unwrap_or(1000);
            row(
                &[
                    &if budget_mb == 0 {
                        "inf".to_owned()
                    } else {
                        format!("{budget_mb} MiB")
                    },
                    if budget_mb == 0 { "-" } else { label },
                    &gov.admitted.to_string(),
                    &gov.queued.to_string(),
                    &gov.degraded.to_string(),
                    &gov.shed.to_string(),
                    &format!("{}/{}", study.scenarios.len(), names.len()),
                    &study.execution.lost_instances().to_string(),
                    &format!("{min_retain}‰"),
                ],
                &widths,
            );
            samples.push(Sample {
                budget_mb,
                action: if budget_mb == 0 { "none" } else { label },
                admitted: gov.admitted,
                queued: gov.queued,
                degraded: gov.degraded,
                shed: gov.shed,
                completed_scenarios: study.scenarios.len(),
                lost_instances: study.execution.lost_instances(),
                peak_estimated_bytes: gov.peak_estimated_bytes,
                min_retain_per_mille: min_retain,
                ia_wait: ia,
            });
        }
    }

    println!();
    println!("every row completed a full study: over-budget units are queued,");
    println!("degraded, or shed — never fatal. See tracelens-pool::governed_supervised_map.");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"governance\",");
    let _ = writeln!(json, "  \"traces\": {traces},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"instances\": {},", ds.instances.len());
    let _ = writeln!(json, "  \"pressure\": \"{pressure}\",");
    let _ = writeln!(json, "  \"baseline_ia_wait\": {baseline_ia:.6},");
    let _ = writeln!(json, "  \"plain_wall_s\": {plain_wall:.6},");
    let _ = writeln!(json, "  \"governed_wall_s\": {governed_wall:.6},");
    let _ = writeln!(json, "  \"governance_overhead\": {overhead:.4},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"budget_mb\": {}, \"action\": \"{}\", \"admitted\": {}, \
             \"queued\": {}, \"degraded\": {}, \"shed\": {}, \
             \"completed_scenarios\": {}, \"lost_instances\": {}, \
             \"peak_estimated_bytes\": {}, \"min_retain_per_mille\": {}, \
             \"ia_wait\": {:.6} }}{comma}",
            s.budget_mb,
            s.action,
            s.admitted,
            s.queued,
            s.degraded,
            s.shed,
            s.completed_scenarios,
            s.lost_instances,
            s.peak_estimated_bytes,
            s.min_retain_per_mille,
            s.ia_wait
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    args.write_telemetry(sink.as_deref());
}
