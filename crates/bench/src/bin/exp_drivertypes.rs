//! E6 (extension) — impact analysis on different scopes.
//!
//! §2.3: "The analyst may conduct impact analysis on different scopes to
//! realize performance impacts of different components." This experiment
//! scopes the impact analysis to each driver *type* separately,
//! producing a ranked view of which driver categories block the system
//! most — the step an analyst takes between the global §5.1 numbers and
//! picking a component set for causality analysis.

use tracelens::prelude::*;
use tracelens_bench::{full_dataset_traced, pct, row, rule, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = full_dataset_traced(traces, seed, &telemetry);

    println!("== E6: impact by driver type (components scoped per row) ==");
    let widths = [26, 10, 10, 10, 10];
    row(
        &["Driver type", "IA_wait", "IA_run", "IA_opt", "amp"],
        &widths,
    );
    rule(&widths);

    let mut rows: Vec<(DriverType, ImpactReport)> = DriverType::ALL
        .iter()
        .map(|&ty| {
            let filter = ComponentFilter::names(ty.known_modules().iter().copied());
            let scoped = ImpactAnalyzer::new(filter).with_telemetry(telemetry.clone());
            (ty, scoped.analyze(&ds))
        })
        .collect();
    rows.sort_by_key(|(_, r)| std::cmp::Reverse(r.d_wait));
    for (ty, r) in &rows {
        row(
            &[
                ty.label(),
                &pct(r.ia_wait()),
                &pct(r.ia_run()),
                &pct(r.ia_opt()),
                &format!("{:.2}", r.wait_amplification()),
            ],
            &widths,
        );
    }
    rule(&widths);
    let all = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"))
        .with_telemetry(telemetry.clone())
        .analyze(&ds);
    row(
        &[
            "all drivers (*.sys)",
            &pct(all.ia_wait()),
            &pct(all.ia_run()),
            &pct(all.ia_opt()),
            &format!("{:.2}", all.wait_amplification()),
        ],
        &widths,
    );
    println!();
    println!("expected shape: file-system + filter drivers lead; the sum of");
    println!("scoped IA_wait values exceeds the *.sys total because nested");
    println!("waits across types are each top-level within their own scope.");
    args.write_telemetry(sink.as_deref());
}
