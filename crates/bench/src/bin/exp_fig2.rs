//! F2 — Figure 2: an Aggregated Wait Graph for device drivers.
//!
//! Aggregates the slow class of a BrowserTabCreate workload and renders
//! the AWG outline; the fv → fs → se/disk aggregated path of the paper's
//! Figure 2 appears with its `C`/`N` annotations, and the top contrast
//! pattern is the Signature Set Tuple of §2.3.

use tracelens::causality::{split_classes, Aggregator};
use tracelens::prelude::*;
use tracelens::waitgraph::{StreamIndex, WaitGraph};
use tracelens_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    let traces = traces.min(120); // the figure needs a sample, not a census
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .telemetry(telemetry.clone())
        .build();
    let name = ScenarioName::new("BrowserTabCreate");
    let split = split_classes(&ds, &name).expect("scenario defined");
    eprintln!(
        "classes: {} fast / {} slow / {} margin",
        split.fast.len(),
        split.slow.len(),
        split.margin.len()
    );

    let filter = ComponentFilter::suffix(".sys");
    let mut agg = Aggregator::new(&ds.stacks, &filter);
    for instance in &split.slow {
        let stream = ds.stream_of(instance).expect("stream exists");
        let index = StreamIndex::new_traced(stream, &telemetry);
        agg.add_graph(&WaitGraph::build_traced(
            stream, &index, instance, &telemetry,
        ));
    }
    let awg = agg.finish();

    println!("== F2: Figure 2 — Aggregated Wait Graph (slow class) ==\n");
    println!(
        "aggregated {} wait graphs; {} nodes; reduced (direct-hw) time: {}\n",
        awg.source_graphs(),
        awg.node_count(),
        awg.reduced_time()
    );
    println!("{}", awg.render(&ds.stacks));

    if std::env::args().any(|a| a == "dot") {
        println!("Graphviz:\n{}", awg.to_dot(&ds.stacks));
    }

    // The §2.3 pattern, recovered by mining.
    let report = CausalityAnalysis::default()
        .with_telemetry(telemetry.clone())
        .analyze(&ds, &name)
        .expect("causality analysis succeeds");
    println!("top contrast pattern (the §2.3 Signature Set Tuple):\n");
    if let Some(p) = report.patterns.first() {
        println!("{}", p.tuple.render(&ds.stacks));
        println!("\nP.C = {}, P.N = {}, avg = {}", p.c, p.n, p.avg_cost());
    }
    args.write_telemetry(sink.as_deref());
}
