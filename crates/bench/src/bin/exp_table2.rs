//! E3 — Table 2: per-scenario Driver Cost, impactful-time coverage (ITC),
//! and total-time coverage (TTC) of the discovered contrast patterns.
//!
//! Paper averages: driver cost 54.2 %, ITC 24.9 %, TTC 36.0 %; shape:
//! ITC ≤ TTC everywhere, with BrowserTabSwitch lowest (7.8 % / 17.5 %)
//! because most of its driver cost is direct hardware service.

use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_dataset_traced, selected_names, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = selected_dataset_traced(traces, seed, &telemetry);
    let study = Study::run_traced(&ds, &StudyConfig::default(), &selected_names(), &telemetry);

    let widths = [22, 12, 10, 10];
    println!("== E3: Table 2 — Impactful-Time and Total-Time Coverages ==");
    row(&["Scenario (Tslow)", "DriverCost", "ITC", "TTC"], &widths);
    rule(&widths);
    let (mut dc_sum, mut itc_sum, mut ttc_sum, mut n) = (0.0, 0.0, 0.0, 0usize);
    for name in selected_names() {
        let s = &study.scenarios[&name];
        let driver_cost = s.slow_impact.component_cost_share();
        match &s.causality {
            Ok(report) => {
                dc_sum += driver_cost;
                itc_sum += report.itc();
                ttc_sum += report.ttc();
                n += 1;
                row(
                    &[
                        name.as_str(),
                        &pct(driver_cost),
                        &pct(report.itc()),
                        &pct(report.ttc()),
                    ],
                    &widths,
                );
            }
            Err(e) => row(
                &[name.as_str(), &pct(driver_cost), "-", &format!("({e})")],
                &widths,
            ),
        }
    }
    rule(&widths);
    if n > 0 {
        row(
            &[
                "Average",
                &pct(dc_sum / n as f64),
                &pct(itc_sum / n as f64),
                &pct(ttc_sum / n as f64),
            ],
            &widths,
        );
    }
    println!();
    println!("paper averages: DriverCost 54.2%, ITC 24.9%, TTC 36.0%");
    args.write_telemetry(sink.as_deref());
}
