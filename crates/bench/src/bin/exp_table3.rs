//! E4 — Table 3: pattern counts and execution-time coverage of the top
//! 10 / 20 / 30 % ranked contrast patterns.
//!
//! Paper shape: strongly concave ranking curves — on average the top
//! 10 % of patterns cover 47.9 % of pattern time, top 20 % cover 80.1 %,
//! top 30 % cover 95.9 %.

use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, selected_dataset_traced, selected_names, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = selected_dataset_traced(traces, seed, &telemetry);
    let analysis = CausalityAnalysis::default().with_telemetry(telemetry.clone());

    let widths = [22, 10, 8, 8, 8];
    println!("== E4: Table 3 — Coverages by Ranking ==");
    row(
        &["Scenario (Tslow)", "#Patterns", "10%", "20%", "30%"],
        &widths,
    );
    rule(&widths);
    let mut sums = (0usize, 0.0, 0.0, 0.0, 0usize);
    for name in selected_names() {
        match analysis.analyze(&ds, &name) {
            Ok(report) => {
                let (c10, c20, c30) = (
                    report.coverage_top_fraction(0.10),
                    report.coverage_top_fraction(0.20),
                    report.coverage_top_fraction(0.30),
                );
                sums.0 += report.patterns.len();
                sums.1 += c10;
                sums.2 += c20;
                sums.3 += c30;
                sums.4 += 1;
                row(
                    &[
                        name.as_str(),
                        &report.patterns.len().to_string(),
                        &pct(c10),
                        &pct(c20),
                        &pct(c30),
                    ],
                    &widths,
                );
            }
            Err(e) => row(&[name.as_str(), &format!("({e})"), "-", "-", "-"], &widths),
        }
    }
    rule(&widths);
    if sums.4 > 0 {
        let n = sums.4 as f64;
        row(
            &[
                "Average",
                &(sums.0 / sums.4).to_string(),
                &pct(sums.1 / n),
                &pct(sums.2 / n),
                &pct(sums.3 / n),
            ],
            &widths,
        );
    }
    println!();
    println!("paper averages: 2822 patterns, 47.9% / 80.1% / 95.9%");
    println!("(pattern counts scale with trace diversity; the synthetic");
    println!(" workload yields fewer distinct patterns at the same shape)");
    args.write_telemetry(sink.as_deref());
}
