//! A1 — Ablation: segment bound `k` vs. mining output and cost.
//!
//! The paper fixes `k = 5`. This sweep shows why: small `k` misses
//! long-chain contrasts (lower coverage); large `k` multiplies
//! meta-patterns (more work) without adding coverage, because longer
//! segments are combinations of the bounded ones (§4.2.3).

use std::time::Instant;
use tracelens::causality::{CausalityAnalysis, CausalityConfig};
use tracelens::prelude::*;
use tracelens_bench::{pct, row, rule, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    let traces = traces.min(200);
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = DatasetBuilder::new(seed)
        .traces(traces)
        .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
        .telemetry(telemetry.clone())
        .build();
    let name = ScenarioName::new("BrowserTabCreate");

    let widths = [4, 12, 12, 10, 10, 10, 12];
    println!("== A1: segment-bound sweep (BrowserTabCreate) ==");
    row(
        &[
            "k",
            "slow metas",
            "contrasts",
            "patterns",
            "ITC",
            "TTC",
            "mine time",
        ],
        &widths,
    );
    rule(&widths);
    for k in 1..=7 {
        let analysis = CausalityAnalysis::new(CausalityConfig {
            segment_bound: k,
            ..CausalityConfig::default()
        })
        .with_telemetry(telemetry.clone());
        let t = Instant::now();
        let report = analysis.analyze(&ds, &name).expect("analysis succeeds");
        let elapsed = t.elapsed();
        row(
            &[
                &k.to_string(),
                &report.stats.slow_metas.to_string(),
                &report.stats.contrast_metas.to_string(),
                &report.patterns.len().to_string(),
                &pct(report.itc()),
                &pct(report.ttc()),
                &format!("{elapsed:.2?}"),
            ],
            &widths,
        );
    }
    println!();
    println!("expected shape: meta-pattern count grows with k; coverage");
    println!("saturates near k=5 (the paper's setting).");
    args.write_telemetry(sink.as_deref());
}
