//! E5 — Table 4: driver types involved in the top-10 contrast patterns
//! of each scenario.
//!
//! Paper shape: file-system + filter drivers dominate most scenarios
//! (AppAccessControl 9 + 9), network drivers dominate MenuDisplay
//! (7 of 10), and AppNonResponsive shows the graphics/fs/se hard-fault
//! composition.

use tracelens::prelude::*;
use tracelens_bench::{row, rule, selected_dataset_traced, selected_names, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = selected_dataset_traced(traces, seed, &telemetry);
    let analysis = CausalityAnalysis::default().with_telemetry(telemetry.clone());

    let types = DriverType::ALL;
    let mut widths = vec![22usize];
    widths.extend(types.iter().map(|t| t.label().len().clamp(4, 12)));

    println!("== E5: Table 4 — Top-10 Patterns Categorized by Driver Types ==");
    let mut header: Vec<String> = vec!["Scenario".into()];
    header.extend(types.iter().map(|t| shorten(t.label())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    row(&header_refs, &widths);
    rule(&widths);

    for name in selected_names() {
        match analysis.analyze(&ds, &name) {
            Ok(report) => {
                let hist = report.driver_type_histogram(&ds.stacks, 10);
                let mut cells: Vec<String> = vec![name.as_str().to_owned()];
                for t in types {
                    let c = hist.get(&t).copied().unwrap_or(0);
                    cells.push(if c == 0 { "-".into() } else { c.to_string() });
                }
                let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
                row(&refs, &widths);
            }
            Err(e) => {
                let cells = [name.as_str().to_owned(), format!("({e})")];
                let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
                row(&refs, &widths);
            }
        }
    }
    println!();
    println!("paper shape: FileSystem+Filter dominate most rows;");
    println!("Network dominates MenuDisplay (7/10); Graphics appears in");
    println!("AppNonResponsive via the hard-fault case.");
    args.write_telemetry(sink.as_deref());
}

fn shorten(label: &str) -> String {
    label.chars().take(12).collect()
}
