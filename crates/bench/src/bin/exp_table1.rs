//! E2 — Table 1: selected scenarios, instance counts, and contrast-class
//! sizes.
//!
//! Paper shape: 17,612 instances across the eight scenarios (we default
//! to ≈ 1/10 scale), with per-scenario fast/slow splits such as
//! BrowserTabCreate 2491 → 597 fast / 1601 slow.

use tracelens::causality::split_classes;
use tracelens_bench::{row, rule, selected_dataset_traced, selected_names, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = selected_dataset_traced(traces, seed, &telemetry);

    let widths = [22, 12, 12, 12, 12];
    println!("== E2: Table 1 — Selected Scenarios ==");
    row(
        &[
            "Scenario",
            "#Instances",
            "in {I}fast",
            "in {I}slow",
            "margin",
        ],
        &widths,
    );
    rule(&widths);
    let (mut ti, mut tf, mut ts, mut tm) = (0, 0, 0, 0);
    for name in selected_names() {
        let split = split_classes(&ds, &name).expect("selected scenario defined");
        ti += split.total();
        tf += split.fast.len();
        ts += split.slow.len();
        tm += split.margin.len();
        row(
            &[
                name.as_str(),
                &split.total().to_string(),
                &split.fast.len().to_string(),
                &split.slow.len().to_string(),
                &split.margin.len().to_string(),
            ],
            &widths,
        );
    }
    rule(&widths);
    row(
        &[
            "Total",
            &ti.to_string(),
            &tf.to_string(),
            &ts.to_string(),
            &tm.to_string(),
        ],
        &widths,
    );
    println!();
    println!("paper totals: 17612 instances, 7426 fast, 6738 slow (margin not reported)");
    args.write_telemetry(sink.as_deref());
}
