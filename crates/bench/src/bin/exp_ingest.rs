//! I1 — trace-store ingest throughput: serial text parse vs.
//! sharded-parallel text parse vs. `.tlb` binary-cache load, over the
//! selected-scenario corpus (600 traces by default, the Table 1–4
//! workload).
//!
//! The paper's evaluation ingests ~19,500 real ETW traces; at that
//! scale the analyzers starve behind a serial parser, so the trace
//! store (PR 8) adds the two fast paths this experiment quantifies.
//! Every mode's result is verified byte-identical (via `write_text`) to
//! the corpus before its throughput counts, and two gates are enforced
//! in-process:
//!
//! * the binary load must beat the serial text parse outright, and
//! * stack/symbol interning must not dominate the serial parse (the
//!   satellite check for the `StackTable::intern` fix: interning is
//!   bounded below half the parse wall).
//!
//! Results land in `BENCH_ingest.json` (override with
//! `TRACELENS_BENCH_OUT`):
//!
//! ```text
//! TRACELENS_BENCH_OUT=/tmp/i.json \
//!   cargo run --release -p tracelens-bench --bin exp_ingest -- 600 2014
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tracelens::model::{fingerprint_bytes, StackId};
use tracelens::prelude::*;
use tracelens_bench::{row, rule, selected_dataset, BenchArgs};

/// Wall-time samples per mode; the minimum is reported.
const RUNS: usize = 5;

/// Default JSON artifact path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_ingest.json";

struct ModeSample {
    mode: &'static str,
    wall_s: f64,
    events_per_s: f64,
    mb_per_s: f64,
    speedup_vs_serial: f64,
}

/// Minimum wall time over [`RUNS`] runs of `f`, plus one result.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("RUNS >= 1"))
}

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let jobs = Pool::new(0).jobs();
    eprintln!("generating {traces} traces (seed {seed}); ingest pool uses {jobs} jobs...");
    let ds = selected_dataset(traces, seed);
    let mut text = Vec::new();
    ds.write_text(&mut text).expect("serialize corpus");
    let events = ds.total_events();
    let mb = text.len() as f64 / 1e6;
    eprintln!(
        "corpus: {} traces / {events} events / {:.1} MB of text",
        ds.streams.len(),
        mb
    );

    let verify = |parsed: &Dataset, mode: &str| {
        let mut back = Vec::new();
        parsed.write_text(&mut back).expect("serialize");
        assert_eq!(back, text, "{mode}: ingest result diverged from the corpus");
    };

    // Mode 1 — serial text parse (the reference semantics).
    let (serial_wall, parsed) = best_of(|| Dataset::read_text_bytes(&text).expect("clean corpus"));
    verify(&parsed, "text-serial");

    // Mode 2 — sharded-parallel text parse on the worker pool.
    let pool = Pool::new(0);
    let telemetry = Telemetry::noop();
    let (parallel_wall, (parsed, source)) =
        best_of(|| tracelens::store::ingest_bytes(&text, &pool, &telemetry).expect("clean corpus"));
    verify(&parsed, "text-parallel");
    if pool.is_parallel() {
        assert_eq!(
            source,
            IngestSource::TextParallel,
            "multi-trace corpus must take the sharded path"
        );
    }

    // Mode 3 — `.tlb` binary columnar load (pack once, read many).
    let image = ds.to_binary(fingerprint_bytes(&text));
    let (binary_wall, (parsed, _)) = best_of(|| Dataset::read_binary(&image).expect("fresh image"));
    verify(&parsed, "binary");

    // Satellite micro-assertion: replay exactly the interning the text
    // parse performs (every frame string and stack of the corpus, once)
    // and bound it below half the serial parse wall — interning must
    // not be the top ingest cost.
    let resolved: Vec<Vec<&str>> = (0..ds.stacks.len())
        .map(|i| ds.stacks.resolve_frames(StackId(i as u32)))
        .collect();
    let (intern_wall, table) = best_of(|| {
        let mut t = StackTable::new();
        let mut frames = Vec::new();
        for stack in &resolved {
            frames.clear();
            for f in stack {
                frames.push(t.intern_frame(f));
            }
            t.intern(&frames);
        }
        t
    });
    assert_eq!(table.len(), ds.stacks.len(), "intern replay is faithful");
    assert!(
        intern_wall < serial_wall * 0.5,
        "interning ({intern_wall:.4}s) dominates the serial parse ({serial_wall:.4}s)"
    );

    assert!(
        binary_wall < serial_wall,
        "binary load ({binary_wall:.4}s) must beat the serial text parse ({serial_wall:.4}s)"
    );

    let sample = |mode: &'static str, wall: f64, bytes: usize| ModeSample {
        mode,
        wall_s: wall,
        events_per_s: events as f64 / wall,
        mb_per_s: bytes as f64 / 1e6 / wall,
        speedup_vs_serial: serial_wall / wall,
    };
    let samples = [
        sample("text-serial", serial_wall, text.len()),
        sample("text-parallel", parallel_wall, text.len()),
        sample("binary", binary_wall, image.len()),
    ];

    println!("== I1: ingest throughput — {traces} traces, {events} events ==\n");
    let widths = [14, 10, 13, 10, 9];
    row(&["mode", "wall", "events/s", "MB/s", "speedup"], &widths);
    rule(&widths);
    for s in &samples {
        row(
            &[
                s.mode,
                &format!("{:.4}s", s.wall_s),
                &format!("{:.0}", s.events_per_s),
                &format!("{:.1}", s.mb_per_s),
                &format!("{:.2}x", s.speedup_vs_serial),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "interning replay: {intern_wall:.4}s ({:.0}% of the serial parse)",
        100.0 * intern_wall / serial_wall
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"ingest_throughput\",");
    let _ = writeln!(json, "  \"traces\": {traces},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(json, "  \"text_bytes\": {},", text.len());
    let _ = writeln!(json, "  \"binary_bytes\": {},", image.len());
    let _ = writeln!(json, "  \"intern_wall_s\": {intern_wall:.6},");
    let _ = writeln!(
        json,
        "  \"intern_fraction_of_serial\": {:.4},",
        intern_wall / serial_wall
    );
    let _ = writeln!(json, "  \"modes\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"wall_s\": {:.6}, \"events_per_s\": {:.0}, \
             \"mb_per_s\": {:.2}, \"speedup_vs_serial\": {:.3} }}{comma}",
            s.mode, s.wall_s, s.events_per_s, s.mb_per_s, s.speedup_vs_serial
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
