//! E-scaling — full-pipeline thread-scaling: `Study::run` over the
//! selected-scenario corpus at 1, 2, 4 and 8 worker threads.
//!
//! For every job count the run records wall time, the trace-store
//! ingest wall time and RSS high-water mark (measured separately so the
//! JSON keeps ingest cost apart from analysis cost), per-stage *busy*
//! time (summed across workers, so it can exceed wall time once the
//! pool fans out), pool task/batch counters, the process RSS high-water
//! mark (`VmHWM`, monotonic across runs), and the speedup against the
//! sequential run — and asserts the rendered Markdown report is
//! byte-identical to the `jobs=1` report, so the scaling numbers are
//! only ever about *speed*.
//!
//! Results land in `BENCH_pipeline.json` (override the path with
//! `TRACELENS_BENCH_OUT`), hand-rolled JSON in the house style:
//!
//! ```text
//! TRACELENS_BENCH_OUT=/tmp/b.json \
//!   cargo run --release -p tracelens-bench --bin exp_scaling -- 600 2014
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tracelens::prelude::*;
use tracelens_bench::{selected_dataset, selected_names, BenchArgs};

/// Job counts exercised, ascending; the first is the baseline.
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Pipeline stages whose busy time the report breaks out.
const STAGES: [&str; 6] = [
    stage::WAITGRAPH,
    stage::IMPACT,
    stage::CLASSES,
    stage::AGGREGATE,
    stage::SEGMENTS,
    stage::CONTRAST,
];

/// Default output path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_pipeline.json";

struct RunSample {
    jobs: usize,
    wall_s: f64,
    speedup: f64,
    ingest_wall_s: f64,
    ingest_peak_rss_kb: Option<u64>,
    peak_rss_kb: Option<u64>,
    stage_busy_s: Vec<(&'static str, f64)>,
    pool_tasks: u64,
    pool_batches: u64,
    report_identical: bool,
}

/// The process resident-set high-water mark in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("generating {traces} traces (seed {seed}); {cores} cores available...");
    let ds = selected_dataset(traces, seed);
    let names = selected_names();
    let mut text = Vec::new();
    ds.write_text(&mut text).expect("serialize corpus");

    let mut baseline_md: Option<String> = None;
    let mut baseline_wall = 0.0f64;
    let mut samples = Vec::new();
    for jobs in JOB_COUNTS {
        let (telemetry, sink) = CollectingSink::telemetry();
        // Ingest cost is measured separately from the analysis pipeline
        // so BENCH_pipeline.json keeps the two apart.
        let t0 = Instant::now();
        let (ingested, _) = tracelens::store::ingest_bytes(&text, &Pool::new(jobs), &telemetry)
            .expect("corpus reparses");
        let ingest_wall_s = t0.elapsed().as_secs_f64();
        let ingest_peak_rss_kb = peak_rss_kb();
        assert_eq!(
            ingested.total_events(),
            ds.total_events(),
            "jobs={jobs}: ingest dropped events"
        );
        drop(ingested);
        let config = StudyConfig {
            jobs,
            ..StudyConfig::default()
        };
        let t0 = Instant::now();
        let study = Study::run_traced(&ds, &config, &names, &telemetry);
        let wall_s = t0.elapsed().as_secs_f64();
        let md = tracelens::render_markdown(&study, &ds, &tracelens::ReportOptions::default());
        let report_identical = match &baseline_md {
            None => {
                baseline_md = Some(md);
                baseline_wall = wall_s;
                true
            }
            Some(base) => *base == md,
        };
        assert!(
            report_identical,
            "jobs={jobs}: report diverged from the sequential run"
        );
        let report = sink.report();
        let ns = |name: &str| report.total_ns(name) as f64 / 1e9;
        samples.push(RunSample {
            jobs,
            wall_s,
            speedup: baseline_wall / wall_s,
            ingest_wall_s,
            ingest_peak_rss_kb,
            peak_rss_kb: peak_rss_kb(),
            stage_busy_s: STAGES.iter().map(|&s| (s, ns(s))).collect(),
            pool_tasks: counter(&report, "pool.tasks"),
            pool_batches: counter(&report, "pool.batches"),
            report_identical,
        });
        eprintln!(
            "jobs={jobs}: ingest {ingest_wall_s:.3}s, analysis {wall_s:.3}s (speedup {:.2}x)",
            baseline_wall / wall_s
        );
    }

    let json = render_json(&ds, traces, seed, cores, &samples);
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
}

fn counter(report: &RunReport, name: &str) -> u64 {
    report.metrics.counters.get(name).copied().unwrap_or(0)
}

fn render_json(
    ds: &Dataset,
    traces: usize,
    seed: u64,
    cores: usize,
    samples: &[RunSample],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pipeline_scaling\",");
    let _ = writeln!(out, "  \"traces\": {traces},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"instances\": {},", ds.instances.len());
    let _ = writeln!(out, "  \"events\": {},", ds.total_events());
    let _ = writeln!(out, "  \"runs\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"jobs\": {},", s.jobs);
        let _ = writeln!(out, "      \"wall_s\": {:.6},", s.wall_s);
        let _ = writeln!(out, "      \"speedup\": {:.3},", s.speedup);
        let _ = writeln!(out, "      \"ingest_wall_s\": {:.6},", s.ingest_wall_s);
        match s.ingest_peak_rss_kb {
            Some(kb) => {
                let _ = writeln!(out, "      \"ingest_peak_rss_kb\": {kb},");
            }
            None => {
                let _ = writeln!(out, "      \"ingest_peak_rss_kb\": null,");
            }
        }
        match s.peak_rss_kb {
            Some(kb) => {
                let _ = writeln!(out, "      \"peak_rss_kb\": {kb},");
            }
            None => {
                let _ = writeln!(out, "      \"peak_rss_kb\": null,");
            }
        }
        let _ = writeln!(out, "      \"pool_tasks\": {},", s.pool_tasks);
        let _ = writeln!(out, "      \"pool_batches\": {},", s.pool_batches);
        let _ = writeln!(out, "      \"stage_busy_s\": {{");
        for (j, (name, busy)) in s.stage_busy_s.iter().enumerate() {
            let comma = if j + 1 < s.stage_busy_s.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "        \"{name}\": {busy:.6}{comma}");
        }
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"report_identical\": {}", s.report_identical);
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
