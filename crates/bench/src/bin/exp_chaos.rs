//! R4 — Chaos-campaign throughput and efficacy.
//!
//! Two campaigns over composite fault configurations sampled across
//! every fault plane (see `tracelens-chaos`):
//!
//! * **clean** — the pipeline as shipped: every oracle must pass on
//!   every sampled configuration, and the campaign's wall clock gives
//!   the configs-per-second throughput of the harness itself,
//! * **injected** — the same campaign with a planted accounting bug
//!   (`--inject-known-bug` in the CLI): the campaign must detect it,
//!   and the minimizer must shrink the failing configuration to its
//!   essential planes.
//!
//! The table reports per-run oracle evidence; the JSON artifact lands
//! in `BENCH_chaos.json` (override with `TRACELENS_BENCH_OUT`) with
//! `clean_violations` (gated at 0) and `injected_violations_found`
//! (gated at > 0).

use std::fmt::Write as _;
use std::time::Instant;
use tracelens_bench::{row, rule, BenchArgs};
use tracelens_chaos::{run_campaign, sample_campaign, CampaignOptions, FaultPlane};
use tracelens_obs::Telemetry;

/// Configurations sampled by the clean campaign.
const RUNS: usize = 40;

/// Default JSON artifact path (repo root when run via `cargo run`).
const DEFAULT_OUT: &str = "BENCH_chaos.json";

fn main() {
    let args = BenchArgs::parse();
    // Positional `traces` sets the per-configuration corpus size here;
    // the paper-scale default is far more than a fault campaign needs.
    let traces = args.traces.clamp(4, 32).min(12);
    let seed = args.seed;
    let (telemetry, sink) = args.telemetry_handle();

    eprintln!("running clean campaign: {RUNS} configs, {traces} traces each (seed {seed})...");
    let opts = CampaignOptions {
        seed,
        runs: RUNS,
        traces,
        ..CampaignOptions::default()
    };
    let t0 = Instant::now();
    let report = run_campaign(&opts, &telemetry);
    let wall_s = t0.elapsed().as_secs_f64();
    let runs_per_s = RUNS as f64 / wall_s;
    eprintln!(
        "clean campaign: {} oracle checks, {} violations, {wall_s:.2}s ({runs_per_s:.1} configs/s)",
        report.checks(),
        report.violations()
    );

    println!("== R4: chaos campaign, {RUNS} composite fault configs ==\n");
    let widths = [4, 34, 7, 9, 9];
    row(&["run", "planes", "checks", "degraded", "verdict"], &widths);
    rule(&widths);
    for (i, rec) in report.records.iter().enumerate() {
        row(
            &[
                &i.to_string(),
                &rec.config.plane_tag(),
                &rec.checks.to_string(),
                &rec.degraded.len().to_string(),
                if rec.violations.is_empty() {
                    "ok"
                } else {
                    "FAIL"
                },
            ],
            &widths,
        );
    }
    println!();
    println!(
        "oracle checks: {}, violations: {} (gated at 0 in CI)",
        report.checks(),
        report.violations()
    );

    // ---- Efficacy: the same harness must catch a planted accounting
    // bug and minimize the failing config to its essential planes.
    let configs = sample_campaign(seed, 64, traces, &FaultPlane::ALL);
    let first = configs
        .iter()
        .position(|c| c.corruption_active() && c.exec_active())
        .expect("64 sampled configs include a corruption+exec pair");
    eprintln!(
        "running injected campaign: planted bug needs corruption+exec (first at run {first})..."
    );
    let injected_opts = CampaignOptions {
        seed,
        runs: first + 1,
        traces,
        inject_known_bug: true,
        ..CampaignOptions::default()
    };
    let injected = run_campaign(&injected_opts, &Telemetry::noop());
    let found = injected.violations();
    let minimized = injected.minimized.as_ref();
    let (minimize_steps, minimized_planes) = minimized
        .map(|m| (m.steps, m.config.active_planes().len()))
        .unwrap_or((0, 0));
    println!(
        "injected campaign: planted bug {} after {} runs; minimized to {} plane(s) in {} steps",
        if found > 0 { "detected" } else { "MISSED" },
        injected.records.len(),
        minimized_planes,
        minimize_steps
    );
    if let Some(m) = minimized {
        println!(
            "minimal repro: {} ({} traces) violating {}",
            m.config.plane_tag(),
            m.config.traces,
            m.oracle
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"chaos\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"runs\": {RUNS},");
    let _ = writeln!(json, "  \"traces_per_run\": {traces},");
    let _ = writeln!(json, "  \"wall_s\": {wall_s:.6},");
    let _ = writeln!(json, "  \"runs_per_s\": {runs_per_s:.3},");
    let _ = writeln!(json, "  \"oracle_checks\": {},", report.checks());
    let _ = writeln!(json, "  \"clean_violations\": {},", report.violations());
    let _ = writeln!(json, "  \"injected_runs\": {},", injected.records.len());
    let _ = writeln!(json, "  \"injected_violations_found\": {found},");
    let _ = writeln!(json, "  \"minimize_steps\": {minimize_steps},");
    let _ = writeln!(json, "  \"minimized_active_planes\": {minimized_planes}");
    let _ = writeln!(json, "}}");
    let out = std::env::var("TRACELENS_BENCH_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    args.write_telemetry(sink.as_deref());
}
