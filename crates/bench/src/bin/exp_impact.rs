//! E1 — §5.1 impact analysis on device drivers over the full data set.
//!
//! Paper reference values: `IA_wait ≈ 36.4 %`, `IA_run ≈ 1.6 %`,
//! `IA_opt ≈ 26 %`, `D_wait / D_waitdist ≈ 3.5`.

use tracelens::prelude::*;
use tracelens_bench::{full_dataset_traced, pct, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (traces, seed) = (args.traces, args.seed);
    let (telemetry, sink) = args.telemetry_handle();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = full_dataset_traced(traces, seed, &telemetry);
    eprintln!(
        "dataset: {} traces, {} instances, {} events",
        ds.streams.len(),
        ds.instances.len(),
        ds.total_events()
    );

    let report = ImpactAnalyzer::new(ComponentFilter::suffix(".sys"))
        .with_telemetry(telemetry.clone())
        .analyze(&ds);

    println!("== E1: Impact analysis on device drivers (components = *.sys) ==");
    println!("{report}");
    println!();
    println!("{:<22}{:>12}{:>12}", "metric", "paper", "measured");
    println!(
        "{:<22}{:>12}{:>12}",
        "IA_wait",
        "36.4%",
        pct(report.ia_wait())
    );
    println!("{:<22}{:>12}{:>12}", "IA_run", "1.6%", pct(report.ia_run()));
    println!(
        "{:<22}{:>12}{:>12}",
        "IA_opt",
        "26.0%",
        pct(report.ia_opt())
    );
    println!(
        "{:<22}{:>12}{:>12.2}",
        "Dwait/Dwaitdist",
        "3.5",
        report.wait_amplification()
    );
    args.write_telemetry(sink.as_deref());
}
