//! E1 — §5.1 impact analysis on device drivers over the full data set.
//!
//! Paper reference values: `IA_wait ≈ 36.4 %`, `IA_run ≈ 1.6 %`,
//! `IA_opt ≈ 26 %`, `D_wait / D_waitdist ≈ 3.5`.

use tracelens::prelude::*;
use tracelens_bench::{cli_args, full_dataset, pct};

fn main() {
    let (traces, seed) = cli_args();
    eprintln!("generating {traces} traces (seed {seed})...");
    let ds = full_dataset(traces, seed);
    eprintln!(
        "dataset: {} traces, {} instances, {} events",
        ds.streams.len(),
        ds.instances.len(),
        ds.total_events()
    );

    let report = ImpactAnalyzer::new(ComponentFilter::suffix(".sys")).analyze(&ds);

    println!("== E1: Impact analysis on device drivers (components = *.sys) ==");
    println!("{report}");
    println!();
    println!("{:<22}{:>12}{:>12}", "metric", "paper", "measured");
    println!("{:<22}{:>12}{:>12}", "IA_wait", "36.4%", pct(report.ia_wait()));
    println!("{:<22}{:>12}{:>12}", "IA_run", "1.6%", pct(report.ia_run()));
    println!("{:<22}{:>12}{:>12}", "IA_opt", "26.0%", pct(report.ia_opt()));
    println!(
        "{:<22}{:>12}{:>12.2}",
        "Dwait/Dwaitdist", "3.5", report.wait_amplification()
    );
}
