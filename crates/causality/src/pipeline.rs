//! The end-to-end causality analysis and its report.

use crate::aggregate::Aggregator;
use crate::classes::split_classes;
use crate::contrast::{mine_contrasts_pooled, ContrastPattern, MiningStats};
use crate::DEFAULT_SEGMENT_BOUND;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use tracelens_model::{
    ComponentFilter, Dataset, DriverType, ScenarioInstance, ScenarioName, Signature, StackTable,
    Thresholds, TimeNs,
};
use tracelens_obs::{stage, Telemetry};
use tracelens_pool::Pool;
use tracelens_waitgraph::{StreamIndex, WaitGraph};

/// Configuration of a causality analysis run.
#[derive(Debug, Clone)]
pub struct CausalityConfig {
    /// The components under analysis (`*.sys` for device drivers).
    pub components: ComponentFilter,
    /// Maximum path-segment length `k` for meta-pattern enumeration.
    pub segment_bound: usize,
    /// Whether to apply the non-optimizable (wait→hardware) reduction;
    /// `true` reproduces the paper, `false` supports the ablation.
    pub reduce: bool,
}

impl Default for CausalityConfig {
    fn default() -> Self {
        CausalityConfig {
            components: ComponentFilter::suffix(".sys"),
            segment_bound: DEFAULT_SEGMENT_BOUND,
            reduce: true,
        }
    }
}

/// Failures of [`CausalityAnalysis::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalityError {
    /// The scenario is not defined in the data set.
    UnknownScenario(ScenarioName),
    /// One contrast class has no instances, so there is nothing to
    /// contrast against.
    EmptyClass {
        /// `"fast"` or `"slow"`.
        class: &'static str,
        /// The scenario analyzed.
        scenario: ScenarioName,
    },
}

impl fmt::Display for CausalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalityError::UnknownScenario(s) => {
                write!(f, "scenario {s} is not defined in the data set")
            }
            CausalityError::EmptyClass { class, scenario } => {
                write!(
                    f,
                    "the {class} contrast class of scenario {scenario} is empty"
                )
            }
        }
    }
}

impl Error for CausalityError {}

/// Output of one causality run over a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalityReport {
    /// The scenario analyzed.
    pub scenario: ScenarioName,
    /// Thresholds used for classification.
    pub thresholds: Thresholds,
    /// Fast-class instance count.
    pub fast_instances: usize,
    /// Slow-class instance count.
    pub slow_instances: usize,
    /// Margin (excluded) instance count.
    pub margin_instances: usize,
    /// Discovered contrast patterns, ranked by average cost (highest
    /// first).
    pub patterns: Vec<ContrastPattern>,
    /// Mining diagnostics.
    pub stats: MiningStats,
    /// Post-reduction total root time of the slow AWG — the coverable
    /// scope of the mined patterns.
    pub slow_scope_time: TimeNs,
    /// Time pruned from the slow AWG as non-optimizable direct hardware
    /// service.
    pub slow_reduced_time: TimeNs,
}

impl CausalityReport {
    /// Total slow-class driver time: the coverable scope plus the pruned
    /// direct-hardware portion — the denominator of ITC and TTC.
    pub fn slow_driver_time(&self) -> TimeNs {
        self.slow_scope_time + self.slow_reduced_time
    }

    /// Impactful-time coverage: total cost of high-impact patterns (those
    /// with an execution above `T_slow`) over the slow-class driver time.
    pub fn itc(&self) -> f64 {
        let hi: TimeNs = self
            .patterns
            .iter()
            .filter(|p| p.is_high_impact(self.thresholds.slow()))
            .map(|p| p.c)
            .sum();
        hi.ratio(self.slow_driver_time())
    }

    /// Total-time coverage: total cost of all patterns over the
    /// slow-class driver time.
    pub fn ttc(&self) -> f64 {
        let all: TimeNs = self.patterns.iter().map(|p| p.c).sum();
        all.ratio(self.slow_driver_time())
    }

    /// Fraction of the slow-class driver time that was pruned as
    /// non-optimizable direct hardware service (66.6 % for
    /// BrowserTabSwitch in the paper).
    pub fn reduced_fraction(&self) -> f64 {
        self.slow_reduced_time.ratio(self.slow_driver_time())
    }

    /// Execution-time coverage of the top `frac` (0..=1] of the ranked
    /// patterns, over the total cost of all discovered patterns — the
    /// measurement behind the paper's Table 3.
    pub fn coverage_top_fraction(&self, frac: f64) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        let take =
            ((self.patterns.len() as f64 * frac).ceil() as usize).clamp(1, self.patterns.len());
        let top: TimeNs = self.patterns.iter().take(take).map(|p| p.c).sum();
        let all: TimeNs = self.patterns.iter().map(|p| p.c).sum();
        top.ratio(all)
    }

    /// The top `n` ranked patterns.
    pub fn top(&self, n: usize) -> &[ContrastPattern] {
        &self.patterns[..n.min(self.patterns.len())]
    }

    /// Counts, for the top `n` patterns, how many contain at least one
    /// signature of each driver type — the rows of the paper's Table 4.
    pub fn driver_type_histogram(
        &self,
        stacks: &StackTable,
        n: usize,
    ) -> BTreeMap<DriverType, usize> {
        let mut hist = BTreeMap::new();
        for p in self.top(n) {
            let mut seen = std::collections::BTreeSet::new();
            for sym in p.tuple.all_symbols() {
                let Some(text) = stacks.symbols().resolve(sym) else {
                    continue;
                };
                if let Some(ty) = Signature::module_of(text).and_then(DriverType::classify) {
                    seen.insert(ty);
                }
            }
            for ty in seen {
                *hist.entry(ty).or_insert(0) += 1;
            }
        }
        hist
    }
}

/// A hook run at the top of [`CausalityAnalysis::analyze`] with the
/// scenario under analysis — the seam execution-fault injection uses to
/// provoke panics *inside* the analyzer, so supervisor tests exercise a
/// failure that genuinely originates in this crate.
pub type AnalysisProbe = std::sync::Arc<dyn Fn(&ScenarioName) + Send + Sync>;

/// The causality analysis driver.
#[derive(Clone)]
pub struct CausalityAnalysis {
    config: CausalityConfig,
    telemetry: Telemetry,
    pool: Pool,
    probe: Option<AnalysisProbe>,
}

impl std::fmt::Debug for CausalityAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CausalityAnalysis")
            .field("config", &self.config)
            .field("telemetry", &self.telemetry)
            .field("pool", &self.pool)
            .field("probe", &self.probe.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl Default for CausalityAnalysis {
    /// Default configuration, no telemetry, sequential execution.
    fn default() -> Self {
        CausalityAnalysis::new(CausalityConfig::default())
    }
}

impl CausalityAnalysis {
    /// Creates an analysis with the given configuration.
    pub fn new(config: CausalityConfig) -> Self {
        CausalityAnalysis {
            config,
            telemetry: Telemetry::noop(),
            pool: Pool::sequential(),
            probe: None,
        }
    }

    /// Attaches a telemetry handle; [`CausalityAnalysis::analyze`] then
    /// reports `classes`/`waitgraph`/`aggregate`/`segments`/`contrast`
    /// stage spans and mining counters through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a thread pool; per-instance Wait-Graph construction and
    /// the fast/slow meta-pattern enumerations then fan out over its
    /// workers. Aggregation order is unchanged (graphs are consumed in
    /// instance order), so reports are identical to the sequential path.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches an [`AnalysisProbe`], invoked at the top of every
    /// [`CausalityAnalysis::analyze`] call. Used by execution-fault
    /// injection; a probe that panics makes the analysis panic as if an
    /// internal invariant had failed.
    pub fn with_probe(mut self, probe: AnalysisProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CausalityConfig {
        &self.config
    }

    /// Runs the full pipeline for one scenario: classify → aggregate →
    /// mine → rank.
    ///
    /// # Errors
    ///
    /// [`CausalityError::UnknownScenario`] if the data set does not
    /// define `scenario`; [`CausalityError::EmptyClass`] if either
    /// contrast class is empty.
    pub fn analyze(
        &self,
        dataset: &Dataset,
        scenario: &ScenarioName,
    ) -> Result<CausalityReport, CausalityError> {
        if let Some(probe) = &self.probe {
            probe(scenario);
        }
        let split = {
            let _span = self.telemetry.span(stage::CLASSES);
            split_classes(dataset, scenario).ok_or(CausalityError::UnknownScenario(*scenario))?
        };
        if self.telemetry.enabled() {
            self.telemetry
                .count("classes.fast", split.fast.len() as u64);
            self.telemetry
                .count("classes.slow", split.slow.len() as u64);
            self.telemetry
                .count("classes.margin", split.margin.len() as u64);
        }
        if split.fast.is_empty() {
            return Err(CausalityError::EmptyClass {
                class: "fast",
                scenario: *scenario,
            });
        }
        if split.slow.is_empty() {
            return Err(CausalityError::EmptyClass {
                class: "slow",
                scenario: *scenario,
            });
        }

        let mut fast_agg = Aggregator::new(&dataset.stacks, &self.config.components);
        let mut slow_agg = Aggregator::new(&dataset.stacks, &self.config.components);
        {
            let _span = self.telemetry.span(stage::WAITGRAPH);
            self.aggregate_instances(dataset, &split.fast, &mut fast_agg);
            self.aggregate_instances(dataset, &split.slow, &mut slow_agg);
        }
        let (fast_awg, slow_awg) = {
            let _span = self.telemetry.span(stage::AGGREGATE);
            if self.config.reduce {
                (fast_agg.finish(), slow_agg.finish())
            } else {
                (fast_agg.finish_unreduced(), slow_agg.finish_unreduced())
            }
        };
        if self.telemetry.enabled() {
            self.telemetry
                .count("aggregate.fast_nodes", fast_awg.node_count() as u64);
            self.telemetry
                .count("aggregate.slow_nodes", slow_awg.node_count() as u64);
        }

        let (patterns, stats) = mine_contrasts_pooled(
            &fast_awg,
            &slow_awg,
            split.thresholds,
            self.config.segment_bound,
            &self.telemetry,
            &self.pool,
        );

        Ok(CausalityReport {
            scenario: *scenario,
            thresholds: split.thresholds,
            fast_instances: split.fast.len(),
            slow_instances: split.slow.len(),
            margin_instances: split.margin.len(),
            patterns,
            stats,
            slow_scope_time: slow_awg.total_root_time(),
            slow_reduced_time: slow_awg.reduced_time(),
        })
    }

    /// Builds and aggregates the Wait Graphs of `instances`, grouping by
    /// stream so each stream's index is built once.
    ///
    /// Graph construction fans out over the analysis pool; aggregation
    /// stays sequential in instance order (the AWG trie is insertion-
    /// order-sensitive for node ids), so the aggregate is byte-identical
    /// to a fully sequential run.
    fn aggregate_instances(
        &self,
        dataset: &Dataset,
        instances: &[&ScenarioInstance],
        agg: &mut Aggregator<'_>,
    ) {
        let mut by_trace: BTreeMap<u32, Vec<&ScenarioInstance>> = BTreeMap::new();
        for &i in instances {
            by_trace.entry(i.trace.0).or_default().push(i);
        }
        for (trace, group) in by_trace {
            let Some(stream) = dataset.streams.get(trace as usize) else {
                continue;
            };
            let index = StreamIndex::new_traced(stream, &self.telemetry);
            let graphs = self.pool.map(&group, |_, &instance| {
                WaitGraph::build_traced(stream, &index, instance, &self.telemetry)
            });
            for (graph, instance) in graphs.iter().zip(&group) {
                agg.add_graph_tagged(graph, (instance.trace, instance.tid));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    fn dataset(seed: u64, traces: usize, scenario: &str) -> Dataset {
        DatasetBuilder::new(seed)
            .traces(traces)
            .mix(ScenarioMix::Only(vec![scenario.into()]))
            .build()
    }

    #[test]
    fn analyze_browser_tab_create_finds_patterns() {
        let ds = dataset(42, 60, "BrowserTabCreate");
        let report = CausalityAnalysis::new(CausalityConfig::default())
            .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
            .expect("analysis succeeds");
        assert!(report.fast_instances > 0);
        assert!(report.slow_instances > 0);
        assert!(!report.patterns.is_empty(), "patterns discovered");
        // Ranked by average cost.
        for w in report.patterns.windows(2) {
            assert!(w[0].avg_cost() >= w[1].avg_cost());
        }
        // Coverages are sane and ordered.
        let itc = report.itc();
        let ttc = report.ttc();
        assert!(itc >= 0.0 && itc <= ttc, "itc={itc} ttc={ttc}");
        assert!(ttc <= 1.5, "ttc={ttc}"); // child costs unclipped, may pass 1
        assert!(report.coverage_top_fraction(1.0) > 0.999);
        assert!(report.coverage_top_fraction(0.1) <= report.coverage_top_fraction(0.3) + 1e-12);
    }

    #[test]
    fn patterns_carry_example_instances() {
        let ds = dataset(42, 60, "BrowserTabCreate");
        let report = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
            .unwrap();
        let with_examples = report
            .patterns
            .iter()
            .filter(|p| !p.examples.is_empty())
            .count();
        assert!(with_examples > 0, "patterns should carry drill-down tags");
        // Every example refers to a real slow instance of the scenario.
        let th = report.thresholds;
        for p in &report.patterns {
            for &(trace, tid) in &p.examples {
                let hit = ds.instances.iter().find(|i| {
                    i.trace == trace && i.tid == tid && i.scenario.as_str() == "BrowserTabCreate"
                });
                let inst = hit.expect("example references a known instance");
                assert_eq!(th.classify(inst.duration()), Some(false), "must be slow");
            }
        }
    }

    #[test]
    fn unknown_scenario_errors() {
        let ds = dataset(1, 5, "BrowserTabCreate");
        let err = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("Nope"))
            .unwrap_err();
        assert!(matches!(err, CausalityError::UnknownScenario(_)));
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn figure1_chain_is_a_top_pattern() {
        // On a BrowserTabCreate-only workload the fv→fs→se chain must be
        // recovered among the top patterns.
        let ds = dataset(7, 80, "BrowserTabCreate");
        let report = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))
            .unwrap();
        let fv = ds.stacks.symbols().lookup("fv.sys!QueryFileTable");
        let se = ds.stacks.symbols().lookup("se.sys!ReadDecrypt");
        let (fv, se) = (fv.expect("fv interned"), se.expect("se interned"));
        let found = report
            .top(10)
            .iter()
            .any(|p| p.tuple.wait.contains(&fv) && p.tuple.running.contains(&se));
        assert!(
            found,
            "expected the Figure-1 chain among the top-10 patterns; got:\n{}",
            report
                .top(10)
                .iter()
                .map(|p| format!(
                    "avg={} n={}\n{}\n",
                    p.avg_cost(),
                    p.n,
                    p.tuple.render(&ds.stacks)
                ))
                .collect::<String>()
        );
    }

    #[test]
    fn reduction_ablation_increases_scope() {
        let ds = dataset(21, 60, "BrowserTabSwitch");
        let name = ScenarioName::new("BrowserTabSwitch");
        let with = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
        let without = CausalityAnalysis::new(CausalityConfig {
            reduce: false,
            ..CausalityConfig::default()
        })
        .analyze(&ds, &name)
        .unwrap();
        assert_eq!(without.slow_reduced_time, TimeNs::ZERO);
        assert!(without.slow_scope_time >= with.slow_scope_time);
        assert!(
            with.slow_reduced_time > TimeNs::ZERO,
            "tab switch has direct hw reads to prune"
        );
    }

    #[test]
    fn driver_type_histogram_sees_expected_types() {
        let ds = dataset(13, 70, "MenuDisplay");
        let report = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("MenuDisplay"))
            .unwrap();
        let hist = report.driver_type_histogram(&ds.stacks, 10);
        assert!(
            hist.contains_key(&DriverType::Network),
            "MenuDisplay is network-dominated: {hist:?}"
        );
    }
}
