//! # tracelens-causality
//!
//! Causality analysis (paper §4): discovers behavioral patterns that are
//! likely to cause observed performance impacts, via contrast data mining
//! between a *fast* and a *slow* class of scenario instances.
//!
//! The pipeline:
//!
//! 1. **Classify** instances into contrast classes by the scenario's
//!    developer thresholds (`T_fast`, `T_slow`) — [`split_classes`].
//! 2. **Abstract** each class's Wait Graphs into an
//!    [`AggregatedWaitGraph`] (Algorithm 1): eliminate component-irrelevant
//!    roots, merge wait/unwait pairs into waiting nodes, aggregate paths
//!    by common signature prefix, and prune non-optimizable
//!    wait→hardware roots.
//! 3. **Mine** contrasts: enumerate meta-patterns ([`SignatureSetTuple`]s
//!    from path segments bounded by `k`), select contrast meta-patterns
//!    (slow-only, or common with average cost ratio above
//!    `T_slow / T_fast`), lift them to full-path contrast patterns, merge
//!    and rank by average cost `P.C / P.N`.
//!
//! ```
//! use tracelens_causality::{CausalityAnalysis, CausalityConfig};
//! use tracelens_model::ScenarioName;
//! use tracelens_sim::{DatasetBuilder, ScenarioMix};
//!
//! let ds = DatasetBuilder::new(11)
//!     .traces(60)
//!     .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
//!     .build();
//! let report = CausalityAnalysis::new(CausalityConfig::default())
//!     .analyze(&ds, &ScenarioName::new("BrowserTabCreate"))?;
//! assert!(!report.patterns.is_empty());
//! # Ok::<(), tracelens_causality::CausalityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod awg;
mod classes;
mod contrast;
mod drilldown;
mod pipeline;
mod regress;
mod segments;
mod triage;
mod tuple;

pub use aggregate::Aggregator;
pub use awg::{AggregatedWaitGraph, AwgId, AwgKey, AwgNode, InstanceTag, MAX_EXAMPLES};
pub use classes::{split_classes, ClassSplit};
pub use contrast::{
    mine_contrasts, mine_contrasts_pooled, mine_contrasts_traced, ContrastPattern, MiningStats,
};
pub use drilldown::{locate_pattern, PatternSite};
pub use pipeline::{
    AnalysisProbe, CausalityAnalysis, CausalityConfig, CausalityError, CausalityReport,
};
pub use regress::{find_regressions, Regression, RegressionConfig};
pub use segments::{enumerate_meta_patterns, MetaPatternTable};
pub use triage::Triage;
pub use tuple::SignatureSetTuple;

/// Default bound on path-segment length for meta-pattern enumeration;
/// the paper uses 5 in all experiments (§5.2.1).
pub const DEFAULT_SEGMENT_BOUND: usize = 5;
