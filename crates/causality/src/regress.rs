//! Regression detection across data sets.
//!
//! Contrast data mining needs only two classes with a performance gap —
//! nothing restricts them to fast/slow *within* one data set. This
//! module points the same machinery across *builds* (or deployments, or
//! weeks): the baseline data set plays the fast class, the candidate
//! data set the slow class, and the mined contrasts are the behaviors
//! that appeared or got drastically more expensive — performance
//! regressions, in the paper's own vocabulary.
//!
//! Because the two data sets have independent stack tables, patterns are
//! compared and reported by their *rendered signature text*, which is
//! stable across interners.

use crate::aggregate::Aggregator;
use crate::classes::split_classes;
use crate::segments::enumerate_meta_patterns;
use crate::tuple::SignatureSetTuple;
use std::collections::BTreeSet;
use std::collections::HashMap;
use tracelens_model::{ComponentFilter, Dataset, ScenarioName, StackTable, TimeNs};
use tracelens_waitgraph::{StreamIndex, WaitGraph};

/// One regressed behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Wait signatures (rendered), sorted.
    pub wait: Vec<String>,
    /// Unwait signatures (rendered), sorted.
    pub unwait: Vec<String>,
    /// Running signatures (rendered), sorted.
    pub running: Vec<String>,
    /// Average cost in the baseline (`None` if the behavior is new).
    pub baseline_avg: Option<TimeNs>,
    /// Average cost in the candidate.
    pub candidate_avg: TimeNs,
    /// Occurrences in the candidate.
    pub candidate_n: u64,
}

impl Regression {
    /// The cost growth factor (`f64::INFINITY` for new behaviors).
    pub fn factor(&self) -> f64 {
        match self.baseline_avg {
            None => f64::INFINITY,
            Some(b) if b.as_nanos() == 0 => f64::INFINITY,
            Some(b) => self.candidate_avg.as_nanos() as f64 / b.as_nanos() as f64,
        }
    }

    /// Whether the behavior is absent from the baseline.
    pub fn is_new(&self) -> bool {
        self.baseline_avg.is_none()
    }

    /// Renders the three-line tuple.
    pub fn render(&self) -> String {
        format!(
            "wait    : {{{}}}\nunwait  : {{{}}}\nrunning : {{{}}}",
            self.wait.join(", "),
            self.unwait.join(", "),
            self.running.join(", ")
        )
    }
}

/// Configuration for [`find_regressions`].
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Components under analysis.
    pub components: ComponentFilter,
    /// Segment bound `k`.
    pub segment_bound: usize,
    /// Minimum growth factor for a common behavior to count as regressed.
    pub min_factor: f64,
    /// Minimum candidate average cost (filters noise).
    pub min_avg: TimeNs,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            components: ComponentFilter::suffix(".sys"),
            segment_bound: crate::DEFAULT_SEGMENT_BOUND,
            min_factor: 2.0,
            min_avg: TimeNs::from_millis(5),
        }
    }
}

/// Finds regressed behaviors of `scenario` between two data sets
/// (typically: the previous build's traces vs. the current build's).
///
/// Only *slow-class* instances of each data set are compared — both
/// corpora contain healthy runs, and comparing the pathological tails is
/// what surfaces what changed. If a data set has no slow instances, its
/// whole instance population is used instead.
///
/// Results are sorted by candidate average cost, highest first.
pub fn find_regressions(
    baseline: &Dataset,
    candidate: &Dataset,
    scenario: &ScenarioName,
    config: &RegressionConfig,
) -> Vec<Regression> {
    let base_metas = rendered_metas(baseline, scenario, config);
    let cand_metas = rendered_metas(candidate, scenario, config);

    let mut out = Vec::new();
    for (key, (c_avg, c_n)) in &cand_metas {
        if *c_avg < config.min_avg {
            continue;
        }
        let baseline_avg = base_metas.get(key).map(|&(avg, _)| avg);
        let regressed = match baseline_avg {
            None => true,
            Some(b) => {
                b.as_nanos() == 0
                    || c_avg.as_nanos() as f64 / b.as_nanos() as f64 > config.min_factor
            }
        };
        if regressed {
            out.push(Regression {
                wait: key.0.iter().cloned().collect(),
                unwait: key.1.iter().cloned().collect(),
                running: key.2.iter().cloned().collect(),
                baseline_avg,
                candidate_avg: *c_avg,
                candidate_n: *c_n,
            });
        }
    }
    out.sort_by(|a, b| {
        b.candidate_avg
            .cmp(&a.candidate_avg)
            .then_with(|| a.wait.cmp(&b.wait))
    });
    out
}

type RenderedKey = (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>);

/// Enumerates the scenario's slow-class meta-patterns keyed by rendered
/// signature text: `(avg cost, occurrences)` per tuple.
fn rendered_metas(
    dataset: &Dataset,
    scenario: &ScenarioName,
    config: &RegressionConfig,
) -> HashMap<RenderedKey, (TimeNs, u64)> {
    let mut metas = HashMap::new();
    let Some(split) = split_classes(dataset, scenario) else {
        return metas;
    };
    let instances: Vec<_> = if split.slow.is_empty() {
        dataset.instances_of(scenario).collect()
    } else {
        split.slow
    };
    let mut agg = Aggregator::new(&dataset.stacks, &config.components);
    for instance in instances {
        let Some(stream) = dataset.stream_of(instance) else {
            continue;
        };
        let index = StreamIndex::new(stream);
        agg.add_graph(&WaitGraph::build(stream, &index, instance));
    }
    let awg = agg.finish();
    for (tuple, m) in enumerate_meta_patterns(&awg, config.segment_bound) {
        let key = render_key(&tuple, &dataset.stacks);
        let entry = metas.entry(key).or_insert((TimeNs::ZERO, 0u64));
        // Merge same-text tuples conservatively: keep the larger average.
        if m.avg() > entry.0 {
            entry.0 = m.avg();
        }
        entry.1 += m.n;
    }
    metas
}

fn render_key(tuple: &SignatureSetTuple, stacks: &StackTable) -> RenderedKey {
    let render = |set: &std::collections::BTreeSet<tracelens_model::Symbol>| {
        set.iter()
            .filter_map(|&s| stacks.symbols().resolve(s).map(str::to_owned))
            .collect::<BTreeSet<String>>()
    };
    (
        render(&tuple.wait),
        render(&tuple.unwait),
        render(&tuple.running),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    fn dataset(seed: u64, scenario: &str) -> Dataset {
        DatasetBuilder::new(seed)
            .traces(40)
            .mix(ScenarioMix::Only(vec![scenario.into()]))
            .build()
    }

    #[test]
    fn identical_datasets_have_no_regressions() {
        let a = dataset(5, "BrowserTabCreate");
        let b = dataset(5, "BrowserTabCreate");
        let regs = find_regressions(
            &a,
            &b,
            &ScenarioName::new("BrowserTabCreate"),
            &RegressionConfig::default(),
        );
        assert!(
            regs.is_empty(),
            "identical corpora: {} regressions",
            regs.len()
        );
    }

    #[test]
    fn new_problem_class_is_detected() {
        // Baseline: MenuDisplay (network problems). Candidate: the same
        // scenario *plus* an injected population with BrowserTabCreate's
        // filesystem chains — emulated by comparing MenuDisplay against
        // BrowserTabCreate under the BrowserTabCreate scenario name...
        // Simplest honest setup: different seeds draw different problem
        // mixes; a seed whose candidate hits chains the baseline never
        // saw must flag them as new.
        let baseline = dataset(11, "AppAccessControl");
        let candidate = dataset(12, "AppAccessControl");
        let regs = find_regressions(
            &baseline,
            &candidate,
            &ScenarioName::new("AppAccessControl"),
            &RegressionConfig::default(),
        );
        // Same generator ⇒ same behavior families; any detected entries
        // must at least be well-formed and sorted.
        for w in regs.windows(2) {
            assert!(w[0].candidate_avg >= w[1].candidate_avg);
        }
        for r in &regs {
            assert!(r.candidate_avg >= RegressionConfig::default().min_avg);
            assert!(r.factor() > 2.0 || r.is_new());
            assert!(!r.render().is_empty());
        }
    }

    #[test]
    fn cross_scenario_comparison_flags_new_chains() {
        // Pretend the "new build" changed MenuDisplay to hit filesystem
        // chains: compare MenuDisplay (baseline) against a tab-create
        // workload relabeled as the same scenario. MenuDisplay itself
        // issues quick `fv.sys` file-table queries, so those tuples are
        // NOT new — but the encrypted-read chains (`fs.sys!Read` waiting
        // behind `se.sys!ReadDecrypt`) exist only in the tab-create
        // workload and must be flagged as new.
        let baseline = dataset(21, "MenuDisplay");
        let mut candidate = dataset(22, "BrowserTabCreate");
        for i in &mut candidate.instances {
            i.scenario = ScenarioName::new("MenuDisplay");
        }
        candidate.scenarios[0].name = ScenarioName::new("MenuDisplay");
        let regs = find_regressions(
            &baseline,
            &candidate,
            &ScenarioName::new("MenuDisplay"),
            &RegressionConfig::default(),
        );
        assert!(!regs.is_empty(), "expected new behaviors");
        let text: String = regs.iter().map(|r| r.render()).collect();
        assert!(
            text.contains("se.sys!ReadDecrypt"),
            "encrypted-read chains must be flagged: {text}"
        );
        assert!(
            regs.iter()
                .any(|r| r.is_new() && r.wait.iter().any(|w| w.contains("fs.sys!Read"))),
            "fs.sys!Read waits must be flagged as new"
        );
        assert!(regs.iter().any(|r| r.is_new()));
    }
}
