//! The Signature Set Tuple pattern representation (Definition 5).

use crate::awg::{AggregatedWaitGraph, AwgId, AwgKey};
use std::collections::BTreeSet;
use tracelens_model::{StackTable, Symbol};

/// A Signature Set Tuple `⟨⋃v.w, ⋃v.u, ⋃v.r⟩`: wait signatures, unwait
/// signatures, and running signatures (hardware dummy signatures join the
/// running set) accumulated over a path segment of an Aggregated Wait
/// Graph.
///
/// Sets deliberately forget ordering, so the two possible interleavings
/// of "two drivers contend a resource held by a third" collapse into one
/// pattern (§4.1).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignatureSetTuple {
    /// Wait signatures (functions whose callers got suspended).
    pub wait: BTreeSet<Symbol>,
    /// Unwait signatures (functions that signalled suspended threads).
    pub unwait: BTreeSet<Symbol>,
    /// Running signatures, plus hardware dummy signatures.
    pub running: BTreeSet<Symbol>,
}

impl SignatureSetTuple {
    /// Builds the tuple of a path segment given as AWG node ids
    /// (root-most first).
    pub fn of_segment(awg: &AggregatedWaitGraph, segment: &[AwgId]) -> SignatureSetTuple {
        let mut t = SignatureSetTuple::default();
        for &id in segment {
            match awg.node(id).key {
                AwgKey::Waiting { w, u } => {
                    t.wait.insert(w);
                    if let Some(u) = u {
                        t.unwait.insert(u);
                    }
                }
                AwgKey::Running { r } => {
                    t.running.insert(r);
                }
                AwgKey::Hardware { h } => {
                    t.running.insert(h);
                }
            }
        }
        t
    }

    /// Whether `self` contains `meta` (component-wise subset) — the test
    /// used when lifting contrast meta-patterns to full-path contrast
    /// patterns (§4.2.3).
    pub fn contains(&self, meta: &SignatureSetTuple) -> bool {
        meta.wait.is_subset(&self.wait)
            && meta.unwait.is_subset(&self.unwait)
            && meta.running.is_subset(&self.running)
    }

    /// Whether all three sets are empty.
    pub fn is_empty(&self) -> bool {
        self.wait.is_empty() && self.unwait.is_empty() && self.running.is_empty()
    }

    /// All symbols across the three sets (deduplicated).
    pub fn all_symbols(&self) -> BTreeSet<Symbol> {
        self.wait
            .iter()
            .chain(self.unwait.iter())
            .chain(self.running.iter())
            .copied()
            .collect()
    }

    /// Renders the tuple in the paper's three-line notation.
    pub fn render(&self, stacks: &StackTable) -> String {
        let line = |set: &BTreeSet<Symbol>| {
            let mut names: Vec<&str> = set
                .iter()
                .filter_map(|&s| stacks.symbols().resolve(s))
                .collect();
            names.sort_unstable();
            names.join(", ")
        };
        format!(
            "wait    : {{{}}}\nunwait  : {{{}}}\nrunning : {{{}}}",
            line(&self.wait),
            line(&self.unwait),
            line(&self.running)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(w: &[u32], u: &[u32], r: &[u32]) -> SignatureSetTuple {
        SignatureSetTuple {
            wait: w.iter().map(|&x| Symbol(x)).collect(),
            unwait: u.iter().map(|&x| Symbol(x)).collect(),
            running: r.iter().map(|&x| Symbol(x)).collect(),
        }
    }

    #[test]
    fn containment_is_componentwise_subset() {
        let big = tuple(&[1, 2], &[1, 2], &[3, 4]);
        assert!(big.contains(&tuple(&[1], &[], &[4])));
        assert!(big.contains(&big.clone()));
        assert!(!big.contains(&tuple(&[9], &[], &[])));
        assert!(!big.contains(&tuple(&[], &[], &[5])));
        assert!(big.contains(&SignatureSetTuple::default()));
    }

    #[test]
    fn empty_and_symbols() {
        assert!(SignatureSetTuple::default().is_empty());
        let t = tuple(&[1], &[2], &[1, 3]);
        assert!(!t.is_empty());
        let all = t.all_symbols();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn render_shows_three_lines() {
        let mut stacks = StackTable::new();
        let a = stacks.intern_frame("fv.sys!QueryFileTable");
        let b = stacks.intern_frame("se.sys!ReadDecrypt");
        let t = SignatureSetTuple {
            wait: [a].into_iter().collect(),
            unwait: [a].into_iter().collect(),
            running: [b].into_iter().collect(),
        };
        let text = t.render(&stacks);
        assert!(text.contains("wait    : {fv.sys!QueryFileTable}"));
        assert!(text.contains("running : {se.sys!ReadDecrypt}"));
        assert_eq!(text.lines().count(), 3);
    }
}
