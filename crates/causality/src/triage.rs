//! Triage of discovered patterns: suppressing known by-design behaviors.
//!
//! §5.2.5 observes false positives "in some special circumstances": some
//! drivers are *designed* to block (the Disk Protection driver halts all
//! I/O when the machine is in motion), so their patterns are expected,
//! not problems — "we need to incorporate such knowledge to filter out
//! some known and exceptional cases". [`Triage`] carries that knowledge:
//! a list of modules whose involvement marks a pattern as by-design.

use crate::contrast::ContrastPattern;
use crate::tuple::SignatureSetTuple;
use tracelens_model::{Signature, StackTable};

/// Knowledge base of by-design blocking behaviors.
///
/// ```
/// use tracelens_causality::Triage;
/// let triage = Triage::new().by_design_module("dp.sys");
/// assert!(triage.is_known_module("dp.sys"));
/// assert!(!triage.is_known_module("fs.sys"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triage {
    by_design: Vec<String>,
}

impl Triage {
    /// An empty knowledge base (suppresses nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a module's blocking behavior as by-design (e.g. `dp.sys`,
    /// whose whole purpose is to halt disk I/O).
    pub fn by_design_module(mut self, module: &str) -> Self {
        self.by_design.push(module.to_owned());
        self
    }

    /// Whether `module` is registered as by-design.
    pub fn is_known_module(&self, module: &str) -> bool {
        self.by_design.iter().any(|m| m == module)
    }

    /// Whether a tuple involves any by-design module.
    pub fn is_by_design(&self, tuple: &SignatureSetTuple, stacks: &StackTable) -> bool {
        tuple.all_symbols().into_iter().any(|sym| {
            stacks
                .symbols()
                .resolve(sym)
                .and_then(Signature::module_of)
                .is_some_and(|m| self.is_known_module(m))
        })
    }

    /// Splits ranked patterns into `(actionable, by_design)`, both in
    /// their original rank order.
    pub fn split<'a>(
        &self,
        patterns: &'a [ContrastPattern],
        stacks: &StackTable,
    ) -> (Vec<&'a ContrastPattern>, Vec<&'a ContrastPattern>) {
        patterns
            .iter()
            .partition(|p| !self.is_by_design(&p.tuple, stacks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CausalityAnalysis;
    use tracelens_model::ScenarioName;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    #[test]
    fn empty_triage_suppresses_nothing() {
        let ds = DatasetBuilder::new(12)
            .traces(40)
            .mix(ScenarioMix::Only(vec!["MenuDisplay".into()]))
            .build();
        let report = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("MenuDisplay"))
            .unwrap();
        let (actionable, by_design) = Triage::new().split(&report.patterns, &ds.stacks);
        assert_eq!(actionable.len(), report.patterns.len());
        assert!(by_design.is_empty());
    }

    #[test]
    fn disk_protection_patterns_are_triaged_out() {
        // MenuDisplay injects dp.sys halts; marking dp.sys as by-design
        // must move exactly those patterns to the suppressed bucket.
        let ds = DatasetBuilder::new(12)
            .traces(60)
            .mix(ScenarioMix::Only(vec!["MenuDisplay".into()]))
            .build();
        let report = CausalityAnalysis::default()
            .analyze(&ds, &ScenarioName::new("MenuDisplay"))
            .unwrap();
        let triage = Triage::new().by_design_module("dp.sys");
        let (actionable, by_design) = triage.split(&report.patterns, &ds.stacks);
        assert_eq!(
            actionable.len() + by_design.len(),
            report.patterns.len(),
            "partition is exact"
        );
        assert!(
            !by_design.is_empty(),
            "dp.sys patterns exist in MenuDisplay and must be caught"
        );
        for p in &actionable {
            assert!(!triage.is_by_design(&p.tuple, &ds.stacks));
        }
        for p in &by_design {
            assert!(triage.is_by_design(&p.tuple, &ds.stacks));
        }
        // Rank order is preserved within each bucket.
        for w in actionable.windows(2) {
            assert!(w[0].avg_cost() >= w[1].avg_cost());
        }
    }

    #[test]
    fn module_registry() {
        let t = Triage::new()
            .by_design_module("dp.sys")
            .by_design_module("bk.sys");
        assert!(t.is_known_module("dp.sys"));
        assert!(t.is_known_module("bk.sys"));
        assert!(!t.is_known_module("se.sys"));
    }
}
