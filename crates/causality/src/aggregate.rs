//! Algorithm 1: aggregating Wait Graphs into an Aggregated Wait Graph.

use crate::awg::{AggregatedWaitGraph, AwgId, AwgKey, AwgNode, InstanceTag, MAX_EXAMPLES};
use tracelens_model::{ComponentFilter, FilterView, StackTable, Symbol, TimeNs};
use tracelens_waitgraph::{NodeId, NodeKind, WaitGraph};

/// Builds an [`AggregatedWaitGraph`] from many Wait Graphs of the same
/// scenario class (paper Algorithm 1).
///
/// Per source graph:
/// 1. *Eliminate component-irrelevant roots*: roots whose callstack holds
///    no signature of the chosen components are dropped and their
///    children promoted, repeatedly, until all roots are relevant.
/// 2. *Merge wait/unwait pairs*: each wait node becomes a waiting node
///    keyed by its wait and unwait signatures (the Wait Graph already
///    carries the pairing).
/// 3. *Aggregate by common signature prefix*: the source tree is merged
///    into the AWG trie; two nodes coincide exactly when their key paths
///    from the root are equal.
///
/// After all graphs are added, [`Aggregator::finish`] applies the
/// *non-optimizable reduction*: root waiting nodes pointing to a single
/// hardware-service leaf are pruned (direct hardware interaction without
/// cost propagation — nothing a developer can optimize).
#[derive(Debug)]
pub struct Aggregator<'a> {
    stacks: &'a StackTable,
    view: FilterView,
    awg: AggregatedWaitGraph,
    current_tag: Option<InstanceTag>,
}

impl<'a> Aggregator<'a> {
    /// Creates an aggregator for the chosen components.
    ///
    /// The filter is precomputed into a [`FilterView`] up front, so the
    /// per-node signature lookups during aggregation are array indexes
    /// rather than glob matches.
    pub fn new(stacks: &'a StackTable, filter: &ComponentFilter) -> Self {
        Aggregator {
            stacks,
            view: stacks.filter_view(filter),
            awg: AggregatedWaitGraph::default(),
            current_tag: None,
        }
    }

    /// Adds one Wait Graph (one scenario instance) to the aggregate,
    /// recording `tag` as an example on every aggregated node it touches
    /// (up to [`MAX_EXAMPLES`] per node).
    pub fn add_graph_tagged(&mut self, graph: &WaitGraph, tag: InstanceTag) {
        self.current_tag = Some(tag);
        self.add_graph(graph);
        self.current_tag = None;
    }

    /// Adds one Wait Graph (one scenario instance) to the aggregate.
    pub fn add_graph(&mut self, graph: &WaitGraph) {
        self.awg.source_graphs += 1;
        let mut relevant_roots = Vec::new();
        for &r in graph.roots() {
            self.collect_relevant_roots(graph, r, &mut relevant_roots);
        }
        self.insert_children(None, graph, &relevant_roots);
    }

    /// Seals the aggregate *without* the non-optimizable reduction
    /// (ablation support; the paper always reduces).
    pub fn finish_unreduced(self) -> AggregatedWaitGraph {
        self.awg
    }

    /// Seals the aggregate, applying the non-optimizable reduction.
    pub fn finish(mut self) -> AggregatedWaitGraph {
        let mut kept = Vec::new();
        let mut reduced = TimeNs::ZERO;
        for &root in &self.awg.roots {
            let node = self.awg.node(root);
            let prune = node.key.is_waiting()
                && node.children.len() == 1
                && self.awg.node(node.children[0]).key.is_hardware()
                && self.awg.node(node.children[0]).is_leaf();
            if prune {
                reduced += node.c;
            } else {
                kept.push(root);
            }
        }
        self.awg.roots = kept;
        self.awg.reduced_time = reduced;
        self.awg
    }

    /// Descends through component-irrelevant roots, collecting the first
    /// relevant node on each path (Algorithm 1, lines 3–8).
    fn collect_relevant_roots(&self, graph: &WaitGraph, id: NodeId, out: &mut Vec<NodeId>) {
        let node = graph.node(id);
        if self.view.contains_component(node.stack) {
            out.push(id);
        } else {
            for &c in &node.children {
                self.collect_relevant_roots(graph, c, out);
            }
        }
    }

    /// The node's characterizing signature: the topmost component
    /// signature on the stack if present, otherwise the innermost frame.
    fn signature_of(&self, stack: tracelens_model::StackId) -> Option<Symbol> {
        self.view
            .top_component_symbol(stack)
            .or_else(|| self.stacks.frames(stack).last().copied())
    }

    fn key_of(&self, graph: &WaitGraph, id: NodeId) -> Option<AwgKey> {
        let node = graph.node(id);
        match node.kind {
            NodeKind::Running => Some(AwgKey::Running {
                r: self.signature_of(node.stack)?,
            }),
            NodeKind::Hardware => Some(AwgKey::Hardware {
                h: self.stacks.frames(node.stack).last().copied()?,
            }),
            NodeKind::Wait { unwait_stack, .. } => Some(AwgKey::Waiting {
                w: self.signature_of(node.stack)?,
                u: self.signature_of(unwait_stack),
            }),
            NodeKind::UnpairedWait => Some(AwgKey::Waiting {
                w: self.signature_of(node.stack)?,
                u: None,
            }),
        }
    }

    /// Inserts a sibling list under `parent`, coalescing runs of
    /// consecutive running (or hardware) nodes with the same signature
    /// into a single aggregated execution — the "aggregated running in
    /// the same signature function" of the paper's Figure 2. Without
    /// this, every 1 ms CPU sample would count as one occurrence,
    /// flooding `v.N` and flattening the ranking's average costs.
    fn insert_children(&mut self, parent: Option<AwgId>, graph: &WaitGraph, ids: &[NodeId]) {
        let mut i = 0;
        while i < ids.len() {
            let id = ids[i];
            let Some(key) = self.key_of(graph, id) else {
                i += 1;
                continue;
            };
            let node = graph.node(id);
            if matches!(node.kind, NodeKind::Running) {
                // Coalesce the maximal run of equal-signature samples.
                let mut duration = node.duration;
                let mut j = i + 1;
                while j < ids.len() {
                    let next = graph.node(ids[j]);
                    if matches!(next.kind, NodeKind::Running)
                        && self.key_of(graph, ids[j]) == Some(key)
                    {
                        duration += next.duration;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let awg_id = self.find_or_create(parent, key);
                self.record(awg_id, duration);
                i = j;
            } else {
                let awg_id = self.find_or_create(parent, key);
                self.record(awg_id, node.duration);
                let children = node.children.clone();
                self.insert_children(Some(awg_id), graph, &children);
                i += 1;
            }
        }
    }

    fn record(&mut self, awg_id: AwgId, duration: TimeNs) {
        let slot = &mut self.awg.nodes[awg_id.0 as usize];
        slot.c += duration;
        slot.n += 1;
        slot.c_max = slot.c_max.max(duration);
        if let Some(tag) = self.current_tag {
            if slot.examples.len() < MAX_EXAMPLES && !slot.examples.contains(&tag) {
                slot.examples.push(tag);
            }
        }
    }

    fn find_or_create(&mut self, parent: Option<AwgId>, key: AwgKey) -> AwgId {
        let siblings: &[AwgId] = match parent {
            Some(p) => &self.awg.node(p).children,
            None => &self.awg.roots,
        };
        if let Some(&found) = siblings.iter().find(|&&s| self.awg.node(s).key == key) {
            return found;
        }
        let id = AwgId(self.awg.nodes.len() as u32);
        self.awg.nodes.push(AwgNode {
            key,
            parent,
            children: Vec::new(),
            c: TimeNs::ZERO,
            n: 0,
            c_max: TimeNs::ZERO,
            examples: Vec::new(),
        });
        match parent {
            Some(p) => self.awg.nodes[p.0 as usize].children.push(id),
            None => self.awg.roots.push(id),
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{
        ScenarioInstance, ScenarioName, ThreadId, TimeNs, TraceId, TraceStreamBuilder,
    };
    use tracelens_waitgraph::StreamIndex;

    fn filter() -> ComponentFilter {
        ComponentFilter::suffix(".sys")
    }

    /// Stream: T1 app-running (irrelevant root), then T1 waits in fv.sys,
    /// unwaited by T2 which runs in se.sys during the wait.
    fn one_graph(stacks: &mut StackTable) -> (WaitGraph, WaitGraph) {
        let app = stacks.intern_symbols(&["app!Main"]);
        let fv =
            stacks.intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let se = stacks.intern_symbols(&["w!W", "se.sys!ReadDecrypt"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), app);
        b.push_wait(ThreadId(1), TimeNs(10), TimeNs::ZERO, fv);
        b.push_running(ThreadId(2), TimeNs(10), TimeNs(30), se);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(40), se);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let inst = |t0: u64| ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("S"),
            tid: ThreadId(1),
            t0: TimeNs(t0),
            t1: TimeNs(50),
        };
        (
            WaitGraph::build(&stream, &idx, &inst(0)),
            WaitGraph::build(&stream, &idx, &inst(0)),
        )
    }

    #[test]
    fn aggregates_two_identical_graphs() {
        let mut stacks = StackTable::new();
        let (g1, g2) = one_graph(&mut stacks);
        let f = filter();
        let mut agg = Aggregator::new(&stacks, &f);
        agg.add_graph(&g1);
        agg.add_graph(&g2);
        let awg = agg.finish();
        assert_eq!(awg.source_graphs(), 2);
        // App-running root eliminated; one waiting root with N=2.
        assert_eq!(awg.roots().len(), 1);
        let root = awg.node(awg.roots()[0]);
        assert!(root.key.is_waiting());
        assert_eq!(root.n, 2);
        assert_eq!(root.c, TimeNs(60)); // 30 + 30
        assert_eq!(root.c_max, TimeNs(30));
        // One running child, also merged.
        assert_eq!(root.children.len(), 1);
        let child = awg.node(root.children[0]);
        assert_eq!(child.n, 2);
        assert_eq!(child.c, TimeNs(60));
    }

    #[test]
    fn irrelevant_roots_promote_children() {
        // T1 waits on an APP-level lock (no driver frame); the holder T2
        // waits in fs.sys. The app wait root must be eliminated and the
        // fs.sys wait promoted to a root.
        let mut stacks = StackTable::new();
        let app_wait = stacks.intern_symbols(&["app!Main", "kernel!AcquireLock"]);
        let fs_wait = stacks.intern_symbols(&["app!W", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let run = stacks.intern_symbols(&["w!W", "se.sys!ReadDecrypt"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, app_wait);
        b.push_wait(ThreadId(2), TimeNs(0), TimeNs::ZERO, fs_wait);
        b.push_running(ThreadId(3), TimeNs(0), TimeNs(50), run);
        b.push_unwait(ThreadId(3), ThreadId(2), TimeNs(50), run);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(55), fs_wait);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let wg = WaitGraph::build(
            &stream,
            &idx,
            &ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("S"),
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(60),
            },
        );
        let f = filter();
        let mut agg = Aggregator::new(&stacks, &f);
        agg.add_graph(&wg);
        let awg = agg.finish();
        assert_eq!(awg.roots().len(), 1);
        let root = awg.node(awg.roots()[0]);
        match root.key {
            AwgKey::Waiting { w, .. } => {
                assert_eq!(
                    stacks.symbols().resolve(w),
                    Some("fs.sys!AcquireMDU"),
                    "promoted root must be the driver wait"
                );
            }
            other => panic!("expected waiting root, got {other:?}"),
        }
    }

    #[test]
    fn reduction_prunes_direct_hardware_roots() {
        // T1 waits in fs.sys; a hardware event alone serves it: the
        // classic direct-read pattern, pruned by the reduction.
        let mut stacks = StackTable::new();
        let fs = stacks.intern_symbols(&["app!Main", "fs.sys!Read", "kernel!WaitForObject"]);
        let hw = stacks.intern_symbols(&["kernel!Worker", "DiskService!Transfer"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, fs);
        b.push_hardware(ThreadId(2), TimeNs(0), TimeNs(30), hw);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(30), hw);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let wg = WaitGraph::build(
            &stream,
            &idx,
            &ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("S"),
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(40),
            },
        );
        let f = filter();
        let mut agg = Aggregator::new(&stacks, &f);
        agg.add_graph(&wg);
        let awg = agg.finish();
        assert!(awg.is_empty(), "direct hw root must be pruned");
        assert_eq!(awg.reduced_time(), TimeNs(30));
    }

    #[test]
    fn propagating_hardware_roots_survive_reduction() {
        // Same as above, but the device worker also runs decryption:
        // two leaves under the wait, so the root is kept.
        let mut stacks = StackTable::new();
        let fs = stacks.intern_symbols(&["app!Main", "fs.sys!Read", "kernel!WaitForObject"]);
        let hw = stacks.intern_symbols(&["kernel!Worker", "DiskService!Transfer"]);
        let se = stacks.intern_symbols(&["kernel!Worker", "se.sys!ReadDecrypt"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, fs);
        b.push_hardware(ThreadId(2), TimeNs(0), TimeNs(30), hw);
        b.push_running(ThreadId(2), TimeNs(30), TimeNs(5), se);
        b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(35), se);
        let stream = b.finish().unwrap();
        let idx = StreamIndex::new(&stream);
        let wg = WaitGraph::build(
            &stream,
            &idx,
            &ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("S"),
                tid: ThreadId(1),
                t0: TimeNs(0),
                t1: TimeNs(40),
            },
        );
        let f = filter();
        let mut agg = Aggregator::new(&stacks, &f);
        agg.add_graph(&wg);
        let awg = agg.finish();
        assert_eq!(awg.roots().len(), 1);
        assert_eq!(awg.reduced_time(), TimeNs::ZERO);
        let root = awg.node(awg.roots()[0]);
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn different_prefixes_do_not_merge() {
        // Two graphs whose roots differ (fv vs fs waits) but share an
        // identical running child signature: the children must remain
        // separate trie nodes because their prefixes differ.
        let mut stacks = StackTable::new();
        let fv =
            stacks.intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let fs = stacks.intern_symbols(&["app!Main", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let se = stacks.intern_symbols(&["w!W", "se.sys!ReadDecrypt"]);
        let mk = |wait_stack| {
            let mut b = TraceStreamBuilder::new(0);
            b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, wait_stack);
            b.push_running(ThreadId(2), TimeNs(0), TimeNs(20), se);
            b.push_unwait(ThreadId(2), ThreadId(1), TimeNs(20), se);
            let stream = b.finish().unwrap();
            let idx = StreamIndex::new(&stream);
            WaitGraph::build(
                &stream,
                &idx,
                &ScenarioInstance {
                    trace: TraceId(0),
                    scenario: ScenarioName::new("S"),
                    tid: ThreadId(1),
                    t0: TimeNs(0),
                    t1: TimeNs(30),
                },
            )
        };
        let g1 = mk(fv);
        let g2 = mk(fs);
        let f = filter();
        let mut agg = Aggregator::new(&stacks, &f);
        agg.add_graph(&g1);
        agg.add_graph(&g2);
        let awg = agg.finish();
        assert_eq!(awg.roots().len(), 2);
        assert_eq!(awg.node_count(), 4);
    }
}
