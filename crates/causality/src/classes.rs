//! Contrast-class classification (§4.2.1).

use tracelens_model::{Dataset, ScenarioInstance, ScenarioName, Thresholds};

/// The two contrast classes of one scenario's instances. Instances whose
/// duration falls between the thresholds belong to neither class and are
/// excluded from mining (the margin keeps the classes unambiguous).
#[derive(Debug, Clone)]
pub struct ClassSplit<'a> {
    /// Instances faster than `T_fast`.
    pub fast: Vec<&'a ScenarioInstance>,
    /// Instances slower than `T_slow`.
    pub slow: Vec<&'a ScenarioInstance>,
    /// Instances in the margin (excluded).
    pub margin: Vec<&'a ScenarioInstance>,
    /// The thresholds used.
    pub thresholds: Thresholds,
}

impl ClassSplit<'_> {
    /// Total instances considered (fast + slow + margin).
    pub fn total(&self) -> usize {
        self.fast.len() + self.slow.len() + self.margin.len()
    }
}

/// Splits `scenario`'s instances in `dataset` into contrast classes using
/// the scenario's developer thresholds. Returns `None` if the scenario is
/// not defined in the data set.
pub fn split_classes<'a>(dataset: &'a Dataset, scenario: &ScenarioName) -> Option<ClassSplit<'a>> {
    let thresholds = dataset.scenario(scenario)?.thresholds;
    let mut split = ClassSplit {
        fast: Vec::new(),
        slow: Vec::new(),
        margin: Vec::new(),
        thresholds,
    };
    for instance in dataset.instances_of(scenario) {
        match thresholds.classify(instance.duration()) {
            Some(true) => split.fast.push(instance),
            Some(false) => split.slow.push(instance),
            None => split.margin.push(instance),
        }
    }
    Some(split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{Scenario, ThreadId, TimeNs, TraceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.scenarios.push(Scenario::new(
            ScenarioName::new("S"),
            Thresholds::new(TimeNs(100), TimeNs(200)),
        ));
        for (tid, dur) in [(1u32, 50u64), (2, 150), (3, 300), (4, 40), (5, 400)] {
            ds.instances.push(ScenarioInstance {
                trace: TraceId(0),
                scenario: ScenarioName::new("S"),
                tid: ThreadId(tid),
                t0: TimeNs(0),
                t1: TimeNs(dur),
            });
        }
        // An instance of another scenario: must be ignored.
        ds.instances.push(ScenarioInstance {
            trace: TraceId(0),
            scenario: ScenarioName::new("Other"),
            tid: ThreadId(9),
            t0: TimeNs(0),
            t1: TimeNs(999),
        });
        ds
    }

    #[test]
    fn splits_into_three_buckets() {
        let ds = dataset();
        let split = split_classes(&ds, &ScenarioName::new("S")).unwrap();
        assert_eq!(split.fast.len(), 2);
        assert_eq!(split.slow.len(), 2);
        assert_eq!(split.margin.len(), 1);
        assert_eq!(split.total(), 5);
    }

    #[test]
    fn unknown_scenario_is_none() {
        let ds = dataset();
        assert!(split_classes(&ds, &ScenarioName::new("Nope")).is_none());
    }
}
