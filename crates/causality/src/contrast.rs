//! Contrast mining: meta-pattern contrasts and contrast patterns
//! (§4.2.3).

use crate::awg::{AggregatedWaitGraph, InstanceTag, MAX_EXAMPLES};
use crate::segments::{enumerate_meta_patterns, MetaPatternTable};
use crate::tuple::SignatureSetTuple;
use std::collections::HashMap;
use tracelens_model::{Thresholds, TimeNs};
use tracelens_pool::Pool;

/// A discovered contrast pattern: a full-path Signature Set Tuple from
/// the slow class containing at least one contrast meta-pattern, with
/// merged metrics over all paths sharing the tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContrastPattern {
    /// The pattern.
    pub tuple: SignatureSetTuple,
    /// Total cost `P.C` (sum of end-node costs of the merged paths).
    pub c: TimeNs,
    /// Occurrences `P.N`.
    pub n: u64,
    /// Maximum single-execution duration of the pattern: the largest
    /// single duration of *any node on the merged paths* (in practice
    /// the root wait of the chain), used by the §5.2.1 high-impact rule.
    pub c_max: TimeNs,
    /// Up to a few example instances exhibiting the pattern (trace id +
    /// initiating thread), for direct drill-down.
    pub examples: Vec<InstanceTag>,
}

impl ContrastPattern {
    /// Average execution cost `P.C / P.N`, the ranking key.
    pub fn avg_cost(&self) -> TimeNs {
        if self.n == 0 {
            TimeNs::ZERO
        } else {
            self.c / self.n
        }
    }

    /// The automated high-impact rule of §5.2.1: at least one execution
    /// exceeded `T_slow`.
    pub fn is_high_impact(&self, t_slow: TimeNs) -> bool {
        self.c_max > t_slow
    }
}

/// Diagnostics of one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Meta-patterns enumerated from the fast class.
    pub fast_metas: usize,
    /// Meta-patterns enumerated from the slow class.
    pub slow_metas: usize,
    /// Meta-patterns selected as contrasts.
    pub contrast_metas: usize,
    /// Full slow-class paths examined.
    pub slow_paths: usize,
    /// Slow-class leaves skipped as zero-cost (pruned before tuple
    /// construction).
    pub zero_cost_pruned: usize,
    /// Distinct contrast patterns after tuple merging — `patterns.len()`
    /// of the accompanying result, kept here so diagnostics travel as
    /// one value.
    pub patterns: usize,
}

/// Mines ranked contrast patterns between the two class AWGs.
///
/// Criteria (two, per the paper):
/// 1. a slow-class meta-pattern absent from the fast class is a contrast;
/// 2. a meta-pattern common to both classes is a contrast when its
///    average-cost ratio exceeds the threshold ratio:
///    `(Ps.C/Ps.N) / (Pf.C/Pf.N) > T_slow / T_fast`.
///
/// Full root→leaf paths of the slow AWG whose tuples contain any contrast
/// meta-pattern become contrast patterns; identical tuples merge their
/// `P.C`/`P.N`, and the result is ranked by average cost, highest first.
pub fn mine_contrasts(
    fast: &AggregatedWaitGraph,
    slow: &AggregatedWaitGraph,
    thresholds: Thresholds,
    k: usize,
) -> (Vec<ContrastPattern>, MiningStats) {
    mine_contrasts_traced(fast, slow, thresholds, k, &tracelens_obs::Telemetry::noop())
}

/// [`mine_contrasts`] with telemetry: reports `segments` and `contrast`
/// stage spans plus mining counters through `telemetry`. With a disabled
/// handle this is exactly `mine_contrasts`.
pub fn mine_contrasts_traced(
    fast: &AggregatedWaitGraph,
    slow: &AggregatedWaitGraph,
    thresholds: Thresholds,
    k: usize,
    telemetry: &tracelens_obs::Telemetry,
) -> (Vec<ContrastPattern>, MiningStats) {
    mine_contrasts_pooled(fast, slow, thresholds, k, telemetry, &Pool::sequential())
}

/// [`mine_contrasts_traced`] with a thread pool: the fast- and slow-class
/// meta-pattern enumerations are independent, so they run as a parallel
/// pair on `pool`. Each class's table is produced whole on one worker and
/// the contrast selection is sorted, so the result is identical to the
/// sequential path.
pub fn mine_contrasts_pooled(
    fast: &AggregatedWaitGraph,
    slow: &AggregatedWaitGraph,
    thresholds: Thresholds,
    k: usize,
    telemetry: &tracelens_obs::Telemetry,
    pool: &Pool,
) -> (Vec<ContrastPattern>, MiningStats) {
    let (fast_metas, slow_metas) = {
        let _span = telemetry.span(tracelens_obs::stage::SEGMENTS);
        pool.join(
            || enumerate_meta_patterns(fast, k),
            || enumerate_meta_patterns(slow, k),
        )
    };
    let _span = telemetry.span(tracelens_obs::stage::CONTRAST);
    let contrast_metas = select_contrast_metas(&fast_metas, &slow_metas, thresholds);
    let mut stats = MiningStats {
        fast_metas: fast_metas.len(),
        slow_metas: slow_metas.len(),
        contrast_metas: contrast_metas.len(),
        slow_paths: 0,
        zero_cost_pruned: 0,
        patterns: 0,
    };

    // Lift to full paths of the slow AWG.
    let mut merged: HashMap<SignatureSetTuple, ContrastPattern> = HashMap::new();
    for id in slow.preorder() {
        if !slow.node(id).is_leaf() {
            continue;
        }
        stats.slow_paths += 1;
        if slow.node(id).c == TimeNs::ZERO {
            // Zero-cost paths (e.g. same-timestamp lock handoffs) carry
            // no impact and would only clutter the ranking.
            stats.zero_cost_pruned += 1;
            continue;
        }
        let path = slow.path_to(id);
        let tuple = SignatureSetTuple::of_segment(slow, &path);
        if !contrast_metas.iter().any(|m| tuple.contains(m)) {
            continue;
        }
        let end = slow.node(id);
        let path_c_max = path
            .iter()
            .map(|&n| slow.node(n).c_max)
            .max()
            .unwrap_or(TimeNs::ZERO);
        let entry = merged.entry(tuple.clone()).or_insert(ContrastPattern {
            tuple,
            c: TimeNs::ZERO,
            n: 0,
            c_max: TimeNs::ZERO,
            examples: Vec::new(),
        });
        entry.c += end.c;
        entry.n += end.n;
        entry.c_max = entry.c_max.max(path_c_max);
        for &tag in &end.examples {
            if entry.examples.len() >= MAX_EXAMPLES {
                break;
            }
            if !entry.examples.contains(&tag) {
                entry.examples.push(tag);
            }
        }
    }

    let mut patterns: Vec<ContrastPattern> = merged.into_values().collect();
    patterns.sort_by(|a, b| {
        b.avg_cost()
            .cmp(&a.avg_cost())
            .then_with(|| b.c.cmp(&a.c))
            .then_with(|| a.tuple.cmp(&b.tuple))
    });
    stats.patterns = patterns.len();
    if telemetry.enabled() {
        telemetry.count("segments.fast_metas", stats.fast_metas as u64);
        telemetry.count("segments.slow_metas", stats.slow_metas as u64);
        telemetry.count("contrast.metas", stats.contrast_metas as u64);
        telemetry.count("contrast.slow_paths", stats.slow_paths as u64);
        telemetry.count("contrast.zero_cost_pruned", stats.zero_cost_pruned as u64);
        telemetry.count("contrast.patterns", stats.patterns as u64);
    }
    (patterns, stats)
}

/// Applies the two contrast criteria over the class meta-pattern tables.
///
/// The result is sorted by tuple (interned-symbol order) so downstream
/// consumers never observe the `HashMap` iteration order of the tables.
fn select_contrast_metas(
    fast: &MetaPatternTable,
    slow: &MetaPatternTable,
    thresholds: Thresholds,
) -> Vec<SignatureSetTuple> {
    let ratio_bound = thresholds.contrast_ratio();
    let mut out = Vec::new();
    for (tuple, sm) in slow {
        match fast.get(tuple) {
            None => out.push(tuple.clone()),
            Some(fm) => {
                let slow_avg = sm.avg().as_nanos() as f64;
                let fast_avg = fm.avg().as_nanos() as f64;
                if fast_avg > 0.0 && slow_avg / fast_avg > ratio_bound {
                    out.push(tuple.clone());
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awg::{AwgId, AwgKey, AwgNode};
    use tracelens_model::Symbol;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn thresholds() -> Thresholds {
        Thresholds::new(ms(300), ms(500))
    }

    /// Builds an AWG with a single chain of the given (key, c_ms, n).
    fn chain(entries: &[(AwgKey, u64, u64)]) -> AggregatedWaitGraph {
        let mut g = AggregatedWaitGraph::default();
        for (i, &(key, c, n)) in entries.iter().enumerate() {
            g.nodes.push(AwgNode {
                key,
                parent: if i == 0 {
                    None
                } else {
                    Some(AwgId(i as u32 - 1))
                },
                children: Vec::new(),
                c: ms(c),
                n,
                c_max: ms(c.checked_div(n).unwrap_or(0)),
                examples: Vec::new(),
            });
            if i > 0 {
                g.nodes[i - 1].children.push(AwgId(i as u32));
            }
        }
        if !entries.is_empty() {
            g.roots.push(AwgId(0));
        }
        g.source_graphs = 1;
        g
    }

    fn wkey(w: u32, u: u32) -> AwgKey {
        AwgKey::Waiting {
            w: Symbol(w),
            u: Some(Symbol(u)),
        }
    }

    fn rkey(r: u32) -> AwgKey {
        AwgKey::Running { r: Symbol(r) }
    }

    #[test]
    fn slow_only_chain_is_discovered() {
        // Fast class: short app-ish chain; slow class: the fv→fs→se chain.
        let fast = chain(&[(wkey(0, 1), 50, 5), (rkey(2), 20, 5)]);
        let slow = chain(&[
            (wkey(10, 11), 3000, 5),
            (wkey(12, 13), 2800, 5),
            (rkey(14), 2000, 5),
        ]);
        let (patterns, stats) = mine_contrasts(&fast, &slow, thresholds(), 5);
        assert!(stats.contrast_metas > 0);
        assert_eq!(stats.slow_paths, 1);
        assert_eq!(patterns.len(), 1);
        let p = &patterns[0];
        assert_eq!(p.n, 5);
        assert_eq!(p.c, ms(2000), "P.C is the end node's cost");
        assert_eq!(p.avg_cost(), ms(400));
        // c_max is the root wait's largest single execution (600 ms).
        assert_eq!(p.c_max, ms(600));
        assert!(p.is_high_impact(ms(500)));
        assert!(!p.is_high_impact(ms(700)));
        assert_eq!(p.tuple.wait.len(), 2);
        assert_eq!(p.tuple.unwait.len(), 2);
        assert_eq!(p.tuple.running.len(), 1);
    }

    #[test]
    fn common_pattern_below_ratio_is_not_contrast() {
        // Same chain in both classes, slow only slightly worse than fast:
        // ratio 1.2 < Tslow/Tfast (5/3) → no contrast.
        let fast = chain(&[(wkey(0, 1), 100, 10), (rkey(2), 50, 10)]);
        let slow = chain(&[(wkey(0, 1), 120, 10), (rkey(2), 60, 10)]);
        let (patterns, stats) = mine_contrasts(&fast, &slow, thresholds(), 5);
        assert_eq!(stats.contrast_metas, 0);
        assert!(patterns.is_empty());
    }

    #[test]
    fn common_pattern_above_ratio_is_contrast() {
        // Same chain, but 10× average cost in the slow class.
        let fast = chain(&[(wkey(0, 1), 100, 10), (rkey(2), 50, 10)]);
        let slow = chain(&[(wkey(0, 1), 1000, 10), (rkey(2), 500, 10)]);
        let (patterns, stats) = mine_contrasts(&fast, &slow, thresholds(), 5);
        assert!(stats.contrast_metas > 0);
        assert_eq!(patterns.len(), 1);
    }

    #[test]
    fn ranking_is_by_average_cost() {
        let fast = chain(&[]);
        // Two slow chains with distinct signatures and different averages.
        let mut slow = chain(&[(wkey(0, 1), 1000, 10), (rkey(2), 600, 10)]); // avg 60
        let base = slow.nodes.len() as u32;
        slow.nodes.push(AwgNode {
            key: wkey(20, 21),
            parent: None,
            children: vec![AwgId(base + 1)],
            c: ms(900),
            n: 3,
            c_max: ms(300),
            examples: Vec::new(),
        });
        slow.nodes.push(AwgNode {
            key: rkey(22),
            parent: Some(AwgId(base)),
            children: Vec::new(),
            c: ms(600),
            n: 3,
            c_max: ms(200),
            examples: Vec::new(),
        });
        slow.roots.push(AwgId(base));
        let (patterns, _) = mine_contrasts(&fast, &slow, thresholds(), 5);
        assert_eq!(patterns.len(), 2);
        assert!(patterns[0].avg_cost() >= patterns[1].avg_cost());
        assert_eq!(patterns[0].avg_cost(), ms(200));
    }

    #[test]
    fn empty_classes_yield_no_patterns() {
        let (patterns, stats) = mine_contrasts(&chain(&[]), &chain(&[]), thresholds(), 5);
        assert!(patterns.is_empty());
        assert_eq!(stats.slow_paths, 0);
    }

    #[test]
    fn identical_path_tuples_merge() {
        // Two slow roots with the same signatures in different orders
        // would merge; here emulate by two identical chains under
        // different parents — the trie already merges those, so instead
        // check a root with two leaf children of the same signature...
        // which also merges in the trie. The merge in mine_contrasts is
        // therefore exercised by paths whose *sets* coincide though their
        // sequences differ:
        //   root A: wait(1,2) -> wait(3,4) -> run(5)
        //   root B: wait(3,4) -> wait(1,2) -> run(5)
        let mut slow = chain(&[
            (wkey(1, 2), 1000, 2),
            (wkey(3, 4), 900, 2),
            (rkey(5), 800, 2),
        ]);
        let b0 = slow.nodes.len() as u32;
        for (i, &(key, c, n)) in [
            (wkey(3, 4), 1000u64, 2u64),
            (wkey(1, 2), 900, 2),
            (rkey(5), 700, 2),
        ]
        .iter()
        .enumerate()
        {
            slow.nodes.push(AwgNode {
                key,
                parent: if i == 0 {
                    None
                } else {
                    Some(AwgId(b0 + i as u32 - 1))
                },
                children: Vec::new(),
                c: ms(c),
                n,
                c_max: ms(c / n),
                examples: Vec::new(),
            });
            if i > 0 {
                let parent = b0 + i as u32 - 1;
                slow.nodes[parent as usize]
                    .children
                    .push(AwgId(b0 + i as u32));
            }
        }
        slow.roots.push(AwgId(b0));
        let fast = chain(&[]);
        let (patterns, stats) = mine_contrasts(&fast, &slow, thresholds(), 5);
        assert_eq!(stats.slow_paths, 2);
        assert_eq!(patterns.len(), 1, "order-insensitive tuples merge");
        assert_eq!(patterns[0].n, 4);
        assert_eq!(patterns[0].c, ms(1500));
    }
}
