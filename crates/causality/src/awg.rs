//! The Aggregated Wait Graph (Definitions 2 and 3).

use std::fmt;
use tracelens_model::{StackTable, Symbol, ThreadId, TimeNs, TraceId};

/// Identity of a scenario instance that contributed to an aggregated
/// node: its trace and initiating thread.
pub type InstanceTag = (TraceId, ThreadId);

/// How many example instances each aggregated node retains.
pub const MAX_EXAMPLES: usize = 3;

/// Handle to a node within an [`AggregatedWaitGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AwgId(pub u32);

impl fmt::Debug for AwgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The signature key of an aggregated node: two Wait-Graph nodes merge
/// into the same aggregated node exactly when their keys — and their
/// ancestors' key sequences — are equal (common-signature-prefix merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AwgKey {
    /// A waiting node: merged wait/unwait pair with wait signature `w`
    /// and unwait signature `u` (`None` when the unwait was unobserved).
    Waiting {
        /// Wait signature (`v.w`).
        w: Symbol,
        /// Paired unwait signature (`v.u`).
        u: Option<Symbol>,
    },
    /// A running node with signature `v.r`.
    Running {
        /// Running signature.
        r: Symbol,
    },
    /// A hardware-service node with dummy signature `v.h`.
    Hardware {
        /// Hardware dummy signature.
        h: Symbol,
    },
}

impl AwgKey {
    /// Whether this is a waiting node key.
    pub fn is_waiting(&self) -> bool {
        matches!(self, AwgKey::Waiting { .. })
    }

    /// Whether this is a hardware node key.
    pub fn is_hardware(&self) -> bool {
        matches!(self, AwgKey::Hardware { .. })
    }
}

/// One aggregated node (Definition 3): a signature key plus the
/// performance metric `v.C` (total duration), occurrence counter `v.N`,
/// and — an extension used by the high-impact rule of §5.2.1 — the
/// maximum single-execution duration `v.Cmax`.
#[derive(Debug, Clone)]
pub struct AwgNode {
    /// Signature key.
    pub key: AwgKey,
    /// Parent node (`None` for roots).
    pub parent: Option<AwgId>,
    /// Child nodes.
    pub children: Vec<AwgId>,
    /// Total duration over all merged source nodes (`v.C`).
    pub c: TimeNs,
    /// Number of merged source nodes (`v.N`).
    pub n: u64,
    /// Maximum single source-node duration.
    pub c_max: TimeNs,
    /// Up to [`MAX_EXAMPLES`] example instances that contributed to this
    /// node — direct pointers for drill-down.
    pub examples: Vec<InstanceTag>,
}

impl AwgNode {
    /// Average duration per occurrence, `v.C / v.N`.
    pub fn avg(&self) -> TimeNs {
        if self.n == 0 {
            TimeNs::ZERO
        } else {
            self.c / self.n
        }
    }

    /// Whether the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An Aggregated Wait Graph: a forest (trie keyed by [`AwgKey`]) whose
/// inner nodes are waiting nodes and whose leaves are running or
/// hardware nodes (Definition 2). Built by [`crate::Aggregator`].
#[derive(Debug, Clone, Default)]
pub struct AggregatedWaitGraph {
    pub(crate) nodes: Vec<AwgNode>,
    pub(crate) roots: Vec<AwgId>,
    pub(crate) reduced_time: TimeNs,
    pub(crate) source_graphs: usize,
}

impl AggregatedWaitGraph {
    /// Root node ids.
    pub fn roots(&self) -> &[AwgId] {
        &self.roots
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: AwgId) -> &AwgNode {
        &self.nodes[id.0 as usize]
    }

    /// All live node ids, in pre-order from the roots.
    pub fn preorder(&self) -> Vec<AwgId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<AwgId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of live (reachable) nodes.
    pub fn node_count(&self) -> usize {
        self.preorder().len()
    }

    /// Whether the graph has no roots.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Number of Wait Graphs aggregated into this AWG.
    pub fn source_graphs(&self) -> usize {
        self.source_graphs
    }

    /// Total duration pruned by the non-optimizable reduction (the direct
    /// wait→hardware roots; the paper's §5.2.2 reports 66.6 % of
    /// BrowserTabSwitch driver cost removed this way).
    pub fn reduced_time(&self) -> TimeNs {
        self.reduced_time
    }

    /// Total duration of the current roots — the scope the mined patterns
    /// can cover (post-reduction).
    pub fn total_root_time(&self) -> TimeNs {
        self.roots.iter().map(|&r| self.node(r).c).sum()
    }

    /// The key sequence from the root down to `id` (inclusive).
    pub fn path_to(&self, id: AwgId) -> Vec<AwgId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Renders the graph in Graphviz DOT syntax: waiting nodes as
    /// ellipses (`w → u`), running nodes as boxes, hardware nodes as
    /// hexagons, each annotated with `C` and `N`.
    pub fn to_dot(&self, stacks: &StackTable) -> String {
        use std::fmt::Write as _;
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let resolve = |s: Symbol| stacks.symbols().resolve(s).unwrap_or("?").to_owned();
        let mut out = String::from("digraph awg {\n  rankdir=TB;\n  node [fontsize=10];\n");
        for id in self.preorder() {
            let node = self.node(id);
            let (label, shape) = match node.key {
                AwgKey::Waiting { w, u } => (
                    format!(
                        "{} →\\n{}",
                        esc(&resolve(w)),
                        u.map(|u| esc(&resolve(u)))
                            .unwrap_or_else(|| "<unpaired>".to_owned())
                    ),
                    "ellipse",
                ),
                AwgKey::Running { r } => (esc(&resolve(r)), "box"),
                AwgKey::Hardware { h } => (esc(&resolve(h)), "hexagon"),
            };
            let _ = writeln!(
                out,
                "  a{} [label=\"{}\\nC={} N={}\",shape={}];",
                id.0, label, node.c, node.n, shape
            );
            for &c in &node.children {
                let _ = writeln!(out, "  a{} -> a{};", id.0, c.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable outline of the graph (for examples and
    /// the Figure-2 reproduction): one line per node, indented by depth,
    /// showing the key signatures, total cost, and occurrence count.
    pub fn render(&self, stacks: &StackTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(usize, AwgId)> = self.roots.iter().rev().map(|&r| (0, r)).collect();
        while let Some((depth, id)) = stack.pop() {
            let node = self.node(id);
            let resolve = |s: Symbol| stacks.symbols().resolve(s).unwrap_or("?").to_owned();
            let label = match node.key {
                AwgKey::Waiting { w, u } => format!(
                    "wait {} -> {}",
                    resolve(w),
                    u.map(resolve).unwrap_or_else(|| "<unpaired>".to_owned())
                ),
                AwgKey::Running { r } => format!("run  {}", resolve(r)),
                AwgKey::Hardware { h } => format!("hw   {}", resolve(h)),
            };
            let _ = writeln!(
                out,
                "{}{} [C={} N={}]",
                "  ".repeat(depth),
                label,
                node.c,
                node.n
            );
            for &c in node.children.iter().rev() {
                stack.push((depth + 1, c));
            }
        }
        out
    }
}

impl tracelens_model::HeapSize for AwgNode {
    fn heap_size(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<AwgId>()
            + self.examples.capacity() * std::mem::size_of::<InstanceTag>()
    }
}

impl tracelens_model::HeapSize for AggregatedWaitGraph {
    fn heap_size(&self) -> usize {
        self.nodes.heap_size() + self.roots.capacity() * std::mem::size_of::<AwgId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(key: AwgKey, parent: Option<AwgId>, c: u64, n: u64) -> AwgNode {
        AwgNode {
            key,
            parent,
            children: Vec::new(),
            c: TimeNs(c),
            n,
            c_max: TimeNs(c),
            examples: Vec::new(),
        }
    }

    #[test]
    fn path_and_preorder() {
        let mut g = AggregatedWaitGraph::default();
        let w = AwgKey::Waiting {
            w: Symbol(0),
            u: Some(Symbol(1)),
        };
        let r = AwgKey::Running { r: Symbol(2) };
        g.nodes.push(node(w, None, 100, 2)); // a0
        g.nodes.push(node(r, Some(AwgId(0)), 40, 2)); // a1
        g.nodes[0].children.push(AwgId(1));
        g.roots.push(AwgId(0));
        assert_eq!(g.preorder(), vec![AwgId(0), AwgId(1)]);
        assert_eq!(g.path_to(AwgId(1)), vec![AwgId(0), AwgId(1)]);
        assert_eq!(g.node(AwgId(0)).avg(), TimeNs(50));
        assert!(g.node(AwgId(1)).is_leaf());
        assert_eq!(g.total_root_time(), TimeNs(100));
        assert_eq!(g.node_count(), 2);
        assert!(!g.is_empty());
        assert!(w.is_waiting() && !w.is_hardware());
    }

    #[test]
    fn avg_of_zero_occurrences_is_zero() {
        let n = node(AwgKey::Running { r: Symbol(0) }, None, 10, 0);
        assert_eq!(n.avg(), TimeNs::ZERO);
    }

    #[test]
    fn dot_export_is_wellformed() {
        let mut stacks = tracelens_model::StackTable::new();
        let w = stacks.intern_frame("fv.sys!QueryFileTable");
        let u = stacks.intern_frame("fs.sys!AcquireMDU");
        let r = stacks.intern_frame("se.sys!ReadDecrypt");
        let mut g = AggregatedWaitGraph::default();
        g.nodes
            .push(node(AwgKey::Waiting { w, u: Some(u) }, None, 100, 2));
        g.nodes
            .push(node(AwgKey::Running { r }, Some(AwgId(0)), 40, 2));
        g.nodes[0].children.push(AwgId(1));
        g.roots.push(AwgId(0));
        let dot = g.to_dot(&stacks);
        assert!(dot.starts_with("digraph awg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("fv.sys!QueryFileTable"));
        assert!(dot.contains("se.sys!ReadDecrypt"));
        assert!(dot.contains("a0 -> a1;"));
        assert!(dot.contains("N=2"));
    }
}
