//! Pattern drill-down: from a mined pattern back to concrete incidents.
//!
//! The paper's analysts use a discovered pattern in two ways (§2.3): as
//! a clue for similar future cases, and as a guide "to realize the
//! concrete performance incident by investigating a specific trace
//! stream". This module implements the second: given a
//! [`SignatureSetTuple`], find the scenario instances whose Wait Graphs
//! actually exhibit it, with the concrete chain duration per incident.

use crate::aggregate::Aggregator;
use crate::tuple::SignatureSetTuple;
use tracelens_model::{ComponentFilter, Dataset, ScenarioInstance, ScenarioName, TimeNs};
use tracelens_waitgraph::{StreamIndex, WaitGraph};

/// One concrete occurrence of a pattern in a scenario instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSite {
    /// The instance exhibiting the pattern.
    pub instance: ScenarioInstance,
    /// Duration of the chain's root node in this instance — the concrete
    /// delay the pattern explains here.
    pub root_duration: TimeNs,
    /// The exact tuple of the matching path (a superset of the queried
    /// pattern: the incident may involve additional signatures).
    pub tuple: SignatureSetTuple,
}

/// Finds the instances of `scenario` whose Wait Graphs contain `pattern`
/// (component-wise containment on some root→leaf path), sorted by root
/// duration, longest first.
///
/// Each instance is reported at most once, with its longest matching
/// chain. `filter` selects the components under analysis, as in the
/// mining run that produced the pattern.
pub fn locate_pattern(
    dataset: &Dataset,
    scenario: &ScenarioName,
    pattern: &SignatureSetTuple,
    filter: &ComponentFilter,
) -> Vec<PatternSite> {
    let mut sites = Vec::new();
    for stream in &dataset.streams {
        let instances: Vec<&ScenarioInstance> = dataset
            .instances
            .iter()
            .filter(|i| i.trace == stream.id() && &i.scenario == scenario)
            .collect();
        if instances.is_empty() {
            continue;
        }
        let index = StreamIndex::new(stream);
        for instance in instances {
            let graph = WaitGraph::build(stream, &index, instance);
            // Aggregate this single graph to reuse the path/tuple logic.
            let mut agg = Aggregator::new(&dataset.stacks, filter);
            agg.add_graph(&graph);
            let awg = agg.finish_unreduced();
            let mut best: Option<(TimeNs, SignatureSetTuple)> = None;
            for id in awg.preorder() {
                if !awg.node(id).is_leaf() {
                    continue;
                }
                let path = awg.path_to(id);
                let tuple = SignatureSetTuple::of_segment(&awg, &path);
                if !tuple.contains(pattern) {
                    continue;
                }
                let root = awg.node(path[0]);
                if best.as_ref().map(|(d, _)| root.c > *d).unwrap_or(true) {
                    best = Some((root.c, tuple));
                }
            }
            if let Some((root_duration, tuple)) = best {
                sites.push(PatternSite {
                    instance: (*instance).clone(),
                    root_duration,
                    tuple,
                });
            }
        }
    }
    sites.sort_by(|a, b| {
        b.root_duration
            .cmp(&a.root_duration)
            .then_with(|| a.instance.trace.cmp(&b.instance.trace))
            .then_with(|| a.instance.tid.cmp(&b.instance.tid))
    });
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CausalityAnalysis;
    use tracelens_sim::{DatasetBuilder, ScenarioMix};

    fn dataset() -> Dataset {
        DatasetBuilder::new(321)
            .traces(50)
            .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
            .build()
    }

    #[test]
    fn top_pattern_locates_slow_instances() {
        let ds = dataset();
        let name = ScenarioName::new("BrowserTabCreate");
        let report = CausalityAnalysis::default().analyze(&ds, &name).unwrap();
        let top = report.patterns.first().expect("patterns found");
        let filter = ComponentFilter::suffix(".sys");
        let sites = locate_pattern(&ds, &name, &top.tuple, &filter);
        assert!(!sites.is_empty(), "top pattern must be locatable");
        // Sites are sorted by root duration, longest first.
        for w in sites.windows(2) {
            assert!(w[0].root_duration >= w[1].root_duration);
        }
        // Each site's tuple contains the queried pattern.
        for s in &sites {
            assert!(s.tuple.contains(&top.tuple));
            assert_eq!(s.instance.scenario, name);
        }
        // Occurrence counts line up: N merged occurrences came from at
        // most N distinct instances (each contributes ≥ 1).
        assert!(sites.len() as u64 <= top.n.max(1) * 2);
    }

    #[test]
    fn nonexistent_pattern_finds_nothing() {
        let ds = dataset();
        let name = ScenarioName::new("BrowserTabCreate");
        // A pattern with a fresh, never-interned symbol cannot match.
        let mut tuple = SignatureSetTuple::default();
        tuple.wait.insert(tracelens_model::Symbol(u32::MAX - 1));
        let filter = ComponentFilter::suffix(".sys");
        assert!(locate_pattern(&ds, &name, &tuple, &filter).is_empty());
    }

    #[test]
    fn empty_pattern_matches_everything_with_driver_chains() {
        let ds = dataset();
        let name = ScenarioName::new("BrowserTabCreate");
        let filter = ComponentFilter::suffix(".sys");
        let sites = locate_pattern(&ds, &name, &SignatureSetTuple::default(), &filter);
        // Every instance with at least one driver-relevant node matches.
        assert!(!sites.is_empty());
        let count = ds.instances_of(&name).count();
        assert!(sites.len() <= count);
    }
}
