//! Meta-pattern enumeration over bounded path segments (§4.2.3).

use crate::awg::{AggregatedWaitGraph, AwgId};
use crate::tuple::SignatureSetTuple;
use std::collections::HashMap;
use tracelens_model::TimeNs;

/// Aggregated metrics of one meta-pattern: the summed `P.C` and `P.N`
/// over all path segments sharing the pattern (Definition 5), plus the
/// maximum single-execution duration of any contributing end node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaMetrics {
    /// Total duration (`P.C`, summed over same-pattern segments).
    pub c: TimeNs,
    /// Total occurrences (`P.N`).
    pub n: u64,
    /// Maximum single execution duration among contributing end nodes.
    pub c_max: TimeNs,
}

impl MetaMetrics {
    /// Average cost `P.C / P.N`.
    pub fn avg(&self) -> TimeNs {
        if self.n == 0 {
            TimeNs::ZERO
        } else {
            self.c / self.n
        }
    }
}

/// The meta-patterns of one contrast class: tuple → aggregated metrics.
pub type MetaPatternTable = HashMap<SignatureSetTuple, MetaMetrics>;

/// Enumerates all path segments of length `1..=k` in `awg` and collects
/// their Signature Set Tuples as meta-patterns.
///
/// A segment is identified by its end node and its length: because the
/// AWG is a trie, the upward walk from each node yields every segment
/// ending there, so enumeration is `O(nodes × k)`. A segment's metric is
/// its end node's (`S.C := v.C`, `S.N := v.N`); segments producing the
/// same tuple aggregate their metrics.
pub fn enumerate_meta_patterns(awg: &AggregatedWaitGraph, k: usize) -> MetaPatternTable {
    assert!(k >= 1, "segment bound k must be at least 1");
    let mut table = MetaPatternTable::new();
    for end in awg.preorder() {
        let end_node = awg.node(end);
        // Walk up to k ancestors, extending the segment one node at a time.
        let mut segment: Vec<AwgId> = vec![end];
        let mut cur = end;
        for _ in 0..k {
            let tuple = SignatureSetTuple::of_segment(awg, &segment);
            let m = table.entry(tuple).or_default();
            m.c += end_node.c;
            m.n += end_node.n;
            m.c_max = m.c_max.max(end_node.c_max);
            match awg.node(cur).parent {
                Some(p) => {
                    segment.insert(0, p);
                    cur = p;
                }
                None => break,
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awg::{AwgKey, AwgNode};
    use tracelens_model::Symbol;

    /// Hand-built AWG: waiting(w0,u1) -> waiting(w2,u3) -> running(r4).
    fn chain() -> AggregatedWaitGraph {
        let mut g = AggregatedWaitGraph::default();
        let keys = [
            AwgKey::Waiting {
                w: Symbol(0),
                u: Some(Symbol(1)),
            },
            AwgKey::Waiting {
                w: Symbol(2),
                u: Some(Symbol(3)),
            },
            AwgKey::Running { r: Symbol(4) },
        ];
        for (i, key) in keys.into_iter().enumerate() {
            g.nodes.push(AwgNode {
                key,
                parent: if i == 0 {
                    None
                } else {
                    Some(AwgId(i as u32 - 1))
                },
                children: Vec::new(),
                c: TimeNs(100 * (i as u64 + 1)),
                n: i as u64 + 1,
                c_max: TimeNs(60),
                examples: Vec::new(),
            });
            if i > 0 {
                g.nodes[i - 1].children.push(AwgId(i as u32));
            }
        }
        g.roots.push(AwgId(0));
        g
    }

    #[test]
    fn counts_segments_up_to_k() {
        let g = chain();
        // k=1: three singleton segments → three distinct tuples.
        let t1 = enumerate_meta_patterns(&g, 1);
        assert_eq!(t1.len(), 3);
        // k=2: + [0,1], [1,2] → five.
        let t2 = enumerate_meta_patterns(&g, 2);
        assert_eq!(t2.len(), 5);
        // k=3: + [0,1,2] → six.
        let t3 = enumerate_meta_patterns(&g, 3);
        assert_eq!(t3.len(), 6);
        // k larger than depth changes nothing.
        let t9 = enumerate_meta_patterns(&g, 9);
        assert_eq!(t9.len(), 6);
    }

    #[test]
    fn metrics_come_from_end_node() {
        let g = chain();
        let table = enumerate_meta_patterns(&g, 3);
        // The full-chain tuple ends at the running node (c=300, n=3).
        let full = SignatureSetTuple::of_segment(&g, &[AwgId(0), AwgId(1), AwgId(2)]);
        let m = table.get(&full).expect("full-chain tuple present");
        assert_eq!(m.c, TimeNs(300));
        assert_eq!(m.n, 3);
        assert_eq!(m.avg(), TimeNs(100));
        assert_eq!(m.c_max, TimeNs(60));
    }

    #[test]
    fn same_tuple_segments_aggregate() {
        // Two sibling running nodes with the SAME signature under one
        // waiting root: the [root, child] segments produce one tuple with
        // aggregated C/N... they would be the same trie node by
        // construction, so emulate with different parents instead:
        // root1(w0,u1)->run(r9), root2(w0,u1)... identical keys at root
        // level also merge. Use two roots with different keys but
        // segments of length 1 on equal running signatures.
        let mut g = AggregatedWaitGraph::default();
        g.nodes.push(AwgNode {
            key: AwgKey::Waiting {
                w: Symbol(0),
                u: Some(Symbol(1)),
            },
            parent: None,
            children: vec![AwgId(1)],
            c: TimeNs(10),
            n: 1,
            c_max: TimeNs(10),
            examples: Vec::new(),
        });
        g.nodes.push(AwgNode {
            key: AwgKey::Running { r: Symbol(9) },
            parent: Some(AwgId(0)),
            children: Vec::new(),
            c: TimeNs(5),
            n: 1,
            c_max: TimeNs(5),
            examples: Vec::new(),
        });
        g.nodes.push(AwgNode {
            key: AwgKey::Waiting {
                w: Symbol(2),
                u: Some(Symbol(3)),
            },
            parent: None,
            children: vec![AwgId(3)],
            c: TimeNs(20),
            n: 2,
            c_max: TimeNs(15),
            examples: Vec::new(),
        });
        g.nodes.push(AwgNode {
            key: AwgKey::Running { r: Symbol(9) },
            parent: Some(AwgId(2)),
            children: Vec::new(),
            c: TimeNs(7),
            n: 2,
            c_max: TimeNs(6),
            examples: Vec::new(),
        });
        g.roots = vec![AwgId(0), AwgId(2)];
        let table = enumerate_meta_patterns(&g, 1);
        // Three distinct singleton tuples: two waits + one running (merged).
        assert_eq!(table.len(), 3);
        let run_tuple = SignatureSetTuple {
            running: [Symbol(9)].into_iter().collect(),
            ..Default::default()
        };
        let m = table.get(&run_tuple).unwrap();
        assert_eq!(m.c, TimeNs(12));
        assert_eq!(m.n, 3);
        assert_eq!(m.c_max, TimeNs(6));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let g = chain();
        let _ = enumerate_meta_patterns(&g, 0);
    }
}
