//! Property-based tests for the causality machinery: tuple algebra,
//! segment enumeration bounds, and mining postconditions on randomized
//! workloads.

use proptest::prelude::*;
use tracelens_causality::{
    enumerate_meta_patterns, split_classes, CausalityAnalysis, CausalityConfig, SignatureSetTuple,
};
use tracelens_model::{ScenarioName, Symbol, TimeNs};
use tracelens_sim::{DatasetBuilder, ScenarioMix};

fn tuple_strategy() -> impl Strategy<Value = SignatureSetTuple> {
    (
        prop::collection::btree_set(0u32..12, 0..4),
        prop::collection::btree_set(0u32..12, 0..4),
        prop::collection::btree_set(0u32..12, 0..4),
    )
        .prop_map(|(w, u, r)| SignatureSetTuple {
            wait: w.into_iter().map(Symbol).collect(),
            unwait: u.into_iter().map(Symbol).collect(),
            running: r.into_iter().map(Symbol).collect(),
        })
}

proptest! {
    #[test]
    fn containment_is_a_partial_order(
        a in tuple_strategy(),
        b in tuple_strategy(),
        c in tuple_strategy(),
    ) {
        // Reflexive.
        prop_assert!(a.contains(&a));
        // Transitive.
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c));
        }
        // Antisymmetric (up to equality).
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(&a, &b);
        }
        // Empty tuple is the bottom element.
        prop_assert!(a.contains(&SignatureSetTuple::default()));
    }

    #[test]
    fn all_symbols_unions_the_sets(a in tuple_strategy()) {
        let all = a.all_symbols();
        for s in a.wait.iter().chain(&a.unwait).chain(&a.running) {
            prop_assert!(all.contains(s));
        }
        prop_assert!(all.len() <= a.wait.len() + a.unwait.len() + a.running.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mining_postconditions_on_random_workloads(seed in 0u64..1000) {
        let ds = DatasetBuilder::new(seed)
            .traces(25)
            .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
            .build();
        let name = ScenarioName::new("BrowserTabCreate");
        let Ok(report) = CausalityAnalysis::default().analyze(&ds, &name) else {
            return Ok(()); // tiny sample produced an empty class — fine
        };
        // Class sizes agree with an independent split.
        let split = split_classes(&ds, &name).unwrap();
        prop_assert_eq!(report.fast_instances, split.fast.len());
        prop_assert_eq!(report.slow_instances, split.slow.len());
        // Ranking is sorted; counters are positive; tuples nonempty.
        for w in report.patterns.windows(2) {
            prop_assert!(w[0].avg_cost() >= w[1].avg_cost());
        }
        for p in &report.patterns {
            prop_assert!(p.n > 0);
            prop_assert!(p.c > TimeNs::ZERO);
            prop_assert!(!p.tuple.is_empty());
        }
        // Coverage identities.
        prop_assert!(report.itc() <= report.ttc() + 1e-12);
        prop_assert!(report.ttc() <= 1.5); // child costs unclipped, may pass 1
        prop_assert!(report.reduced_fraction() <= 1.0 + 1e-9);
        // Coverage is monotone in the rank fraction.
        let mut prev = 0.0f64;
        for i in 1..=10 {
            let c = report.coverage_top_fraction(i as f64 / 10.0);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    #[test]
    fn segment_tables_grow_monotonically_in_k(seed in 0u64..500) {
        let ds = DatasetBuilder::new(seed)
            .traces(15)
            .mix(ScenarioMix::Only(vec!["AppAccessControl".into()]))
            .build();
        let name = ScenarioName::new("AppAccessControl");
        let Some(split) = split_classes(&ds, &name) else { return Ok(()); };
        if split.slow.is_empty() {
            return Ok(());
        }
        // Build the slow AWG directly.
        let filter = tracelens_model::ComponentFilter::suffix(".sys");
        let mut agg = tracelens_causality::Aggregator::new(&ds.stacks, &filter);
        for i in &split.slow {
            let stream = ds.stream_of(i).unwrap();
            let index = tracelens_waitgraph::StreamIndex::new(stream);
            agg.add_graph(&tracelens_waitgraph::WaitGraph::build(stream, &index, i));
        }
        let awg = agg.finish();
        let nodes = awg.node_count();
        let mut prev = 0usize;
        for k in 1..=6 {
            let table = enumerate_meta_patterns(&awg, k);
            prop_assert!(table.len() >= prev, "k={k}");
            // Upper bound: one tuple per (node, length) pair.
            prop_assert!(table.len() <= nodes * k);
            prev = table.len();
        }
    }

    #[test]
    fn reduction_conserves_scope_time(seed in 0u64..500) {
        let ds = DatasetBuilder::new(seed)
            .traces(20)
            .mix(ScenarioMix::Only(vec!["BrowserTabSwitch".into()]))
            .build();
        let name = ScenarioName::new("BrowserTabSwitch");
        let with = CausalityAnalysis::default().analyze(&ds, &name);
        let without = CausalityAnalysis::new(CausalityConfig {
            reduce: false,
            ..CausalityConfig::default()
        })
        .analyze(&ds, &name);
        if let (Ok(w), Ok(wo)) = (with, without) {
            prop_assert_eq!(
                w.slow_scope_time + w.slow_reduced_time,
                wo.slow_scope_time
            );
            prop_assert_eq!(wo.slow_reduced_time, TimeNs::ZERO);
        }
    }
}
