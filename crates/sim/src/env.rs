//! The canonical simulated driver ecosystem.
//!
//! [`Env`] registers, on a [`Machine`], the shared kernel locks and
//! hardware devices that the eight scenario generators contend over, and
//! names the driver modules/functions used on callstacks. Driver module
//! names follow the taxonomy of
//! [`tracelens_model::DriverType::classify`]: `fs.sys`, `fv.sys`,
//! `av.sys`, `net.sys`, `se.sys`, `dp.sys`, `graphics.sys`, `bk.sys`,
//! `iocache.sys`, `mouse.sys`, `acpi.sys`.

use crate::engine::{DeviceSpec, Machine};
use crate::program::{DeviceId, LockId};

/// Well-known driver function signatures used by the scenario generators.
///
/// Centralizing them keeps callstacks consistent across scenarios so the
/// causality analysis can aggregate behaviors by signature.
pub mod sig {
    /// File-system driver: acquires a Meta Data Unit lock.
    pub const FS_ACQUIRE_MDU: &str = "fs.sys!AcquireMDU";
    /// File-system driver: reads file data.
    pub const FS_READ: &str = "fs.sys!Read";
    /// File-system driver: writes file data.
    pub const FS_WRITE: &str = "fs.sys!Write";
    /// File-virtualization filter driver: queries the File Table.
    pub const FV_QUERY_FILE_TABLE: &str = "fv.sys!QueryFileTable";
    /// Anti-virus filter driver: inspects an application request.
    pub const AV_INSPECT: &str = "av.sys!InspectRequest";
    /// Anti-virus filter driver: scans file contents.
    pub const AV_SCAN: &str = "av.sys!ScanFile";
    /// Network driver: sends a request.
    pub const NET_SEND: &str = "net.sys!Send";
    /// Network driver: receives a response.
    pub const NET_RECEIVE: &str = "net.sys!Receive";
    /// Network driver: resolves a name.
    pub const NET_QUERY_DNS: &str = "net.sys!QueryDns";
    /// Storage-encryption driver: reads and decrypts.
    pub const SE_READ_DECRYPT: &str = "se.sys!ReadDecrypt";
    /// Storage-encryption driver: encrypts and writes.
    pub const SE_WRITE_ENCRYPT: &str = "se.sys!WriteEncrypt";
    /// Disk-protection driver: halts I/O while motion is detected.
    pub const DP_HALT_IO: &str = "dp.sys!HaltIo";
    /// Graphics driver: acquires GPU resources.
    pub const GFX_ACQUIRE_GPU: &str = "graphics.sys!AcquireGpu";
    /// Graphics driver: initializes an internal structure (the hard-fault
    /// site of the paper's §5.2.4 case).
    pub const GFX_INIT_STRUCT: &str = "graphics.sys!InitStruct";
    /// Graphics driver: renders.
    pub const GFX_RENDER: &str = "graphics.sys!Render";
    /// Backup driver: snapshots a storage region.
    pub const BK_SNAPSHOT: &str = "bk.sys!SnapshotRegion";
    /// I/O-cache driver: looks up the block cache.
    pub const IOC_LOOKUP: &str = "iocache.sys!LookupCache";
    /// I/O-cache driver: flushes the block cache.
    pub const IOC_FLUSH: &str = "iocache.sys!FlushCache";
    /// Mouse driver: processes input.
    pub const MOUSE_INPUT: &str = "mouse.sys!ProcessInput";
    /// ACPI driver: performs a power transition.
    pub const ACPI_POWER: &str = "acpi.sys!PowerTransition";
    /// Kernel: opens a file (non-driver frame).
    pub const K_OPEN_FILE: &str = "kernel!OpenFile";
    /// Kernel: creates a file (non-driver frame).
    pub const K_CREATE_FILE: &str = "kernel!CreateFile";
    /// Kernel: dispatches an I/O request to a driver stack.
    pub const K_CALL_DRIVER: &str = "kernel!IoCallDriver";
}

/// Shared lock and device handles registered on a machine.
#[derive(Debug, Clone, Copy)]
pub struct Env {
    /// File Table lock of the virtualization filter (`fv.sys`).
    pub file_table: LockId,
    /// Meta Data Unit lock of the file system (`fs.sys`).
    pub mdu: LockId,
    /// Anti-virus inspection database lock (`av.sys`).
    pub av_db: LockId,
    /// Network request queue lock (`net.sys`).
    pub net_queue: LockId,
    /// GPU resource lock (`graphics.sys`).
    pub gpu_res: LockId,
    /// Block-cache lock (`iocache.sys`).
    pub cache: LockId,
    /// An application-level (non-driver) lock, for app-only contention.
    pub app: LockId,
    /// The disk device.
    pub disk: DeviceId,
    /// The network device.
    pub net: DeviceId,
    /// The GPU device.
    pub gpu: DeviceId,
}

impl Env {
    /// Registers the standard locks and devices on `machine`.
    pub fn install(machine: &mut Machine) -> Env {
        Env {
            file_table: machine.add_lock(),
            mdu: machine.add_lock(),
            av_db: machine.add_lock(),
            net_queue: machine.add_lock(),
            gpu_res: machine.add_lock(),
            cache: machine.add_lock(),
            app: machine.add_lock(),
            disk: machine.add_device(DeviceSpec::new("disk", "DiskService!Transfer")),
            net: machine.add_device(DeviceSpec::new("network", "NetworkService!Transfer")),
            gpu: machine.add_device(DeviceSpec::new("gpu", "GpuService!Render")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::DriverType;

    #[test]
    fn install_registers_distinct_handles() {
        let mut m = Machine::new(0);
        let env = Env::install(&mut m);
        let locks = [
            env.file_table,
            env.mdu,
            env.av_db,
            env.net_queue,
            env.gpu_res,
            env.cache,
            env.app,
        ];
        let distinct: std::collections::HashSet<_> = locks.iter().collect();
        assert_eq!(distinct.len(), locks.len());
        assert_ne!(env.disk, env.net);
        assert_ne!(env.net, env.gpu);
    }

    #[test]
    fn signature_modules_classify_as_expected() {
        for (s, ty) in [
            (sig::FS_ACQUIRE_MDU, DriverType::FileSystemGeneralStorage),
            (sig::FV_QUERY_FILE_TABLE, DriverType::FileSystemFilter),
            (sig::AV_SCAN, DriverType::FileSystemFilter),
            (sig::NET_SEND, DriverType::Network),
            (sig::SE_READ_DECRYPT, DriverType::StorageEncryption),
            (sig::DP_HALT_IO, DriverType::DiskProtection),
            (sig::GFX_ACQUIRE_GPU, DriverType::Graphics),
            (sig::BK_SNAPSHOT, DriverType::StorageBackup),
            (sig::IOC_LOOKUP, DriverType::IoCache),
            (sig::MOUSE_INPUT, DriverType::Mouse),
            (sig::ACPI_POWER, DriverType::Acpi),
        ] {
            let module = tracelens_model::Signature::module_of(s).unwrap();
            assert_eq!(DriverType::classify(module), Some(ty), "module {module}");
        }
    }

    #[test]
    fn kernel_frames_are_not_drivers() {
        for s in [sig::K_OPEN_FILE, sig::K_CREATE_FILE, sig::K_CALL_DRIVER] {
            let module = tracelens_model::Signature::module_of(s).unwrap();
            assert_eq!(DriverType::classify(module), None);
        }
    }
}
